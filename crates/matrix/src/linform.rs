//! Formal linear forms `Σ λ_v · x_v` over a fixed set of variables.
//!
//! The Lemma 5/6 argument of the paper treats the entries of `B` as *formal
//! coefficients*: the coefficient of `a_{ij'}` inside the computed `c_{ij}`
//! is a linear form in the `b` entries, and it is "correct" exactly when that
//! form is identically `b_{j'j}`. This module provides the exact formal
//! arithmetic needed to decide that identity.

use crate::rational::Rational;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A linear form over `nvars` formal variables with [`Rational`] coefficients,
/// stored densely (variable counts here are tiny: `n₀²` or `b`).
#[derive(Clone, PartialEq, Eq)]
pub struct LinForm {
    coeffs: Vec<Rational>,
}

impl LinForm {
    /// The zero form over `nvars` variables.
    pub fn zero(nvars: usize) -> LinForm {
        LinForm {
            coeffs: vec![Rational::ZERO; nvars],
        }
    }

    /// The single variable `x_v` over `nvars` variables.
    ///
    /// # Panics
    /// Panics if `v >= nvars`.
    pub fn variable(nvars: usize, v: usize) -> LinForm {
        assert!(v < nvars, "variable index out of range");
        let mut f = LinForm::zero(nvars);
        f.coeffs[v] = Rational::ONE;
        f
    }

    /// Builds a form from an explicit coefficient vector.
    pub fn from_coeffs(coeffs: Vec<Rational>) -> LinForm {
        LinForm { coeffs }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient of variable `v`.
    pub fn coeff(&self, v: usize) -> Rational {
        self.coeffs[v]
    }

    /// Whether the form is identically zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero())
    }

    /// Whether the form is exactly the single variable `x_v`.
    pub fn is_variable(&self, v: usize) -> bool {
        self.coeffs
            .iter()
            .enumerate()
            .all(|(i, c)| if i == v { c.is_one() } else { c.is_zero() })
    }

    /// Evaluates the form at a concrete assignment.
    ///
    /// # Panics
    /// Panics if `values.len() != nvars`.
    pub fn eval(&self, values: &[Rational]) -> Rational {
        assert_eq!(values.len(), self.nvars(), "assignment length mismatch");
        self.coeffs.iter().zip(values).map(|(&c, &v)| c * v).sum()
    }

    /// Adds `scale · x_v` to the form in place.
    pub fn add_term(&mut self, v: usize, scale: Rational) {
        self.coeffs[v] += scale;
    }
}

impl Add for &LinForm {
    type Output = LinForm;
    fn add(self, rhs: &LinForm) -> LinForm {
        assert_eq!(self.nvars(), rhs.nvars(), "variable-count mismatch");
        LinForm {
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &LinForm {
    type Output = LinForm;
    fn sub(self, rhs: &LinForm) -> LinForm {
        self + &(-rhs)
    }
}

impl Neg for &LinForm {
    type Output = LinForm;
    fn neg(self) -> LinForm {
        LinForm {
            coeffs: self.coeffs.iter().map(|&c| -c).collect(),
        }
    }
}

impl Mul<Rational> for &LinForm {
    type Output = LinForm;
    fn mul(self, s: Rational) -> LinForm {
        LinForm {
            coeffs: self.coeffs.iter().map(|&c| c * s).collect(),
        }
    }
}

impl AddAssign<&LinForm> for LinForm {
    fn add_assign(&mut self, rhs: &LinForm) {
        assert_eq!(self.nvars(), rhs.nvars(), "variable-count mismatch");
        for (a, &b) in self.coeffs.iter_mut().zip(&rhs.coeffs) {
            *a += b;
        }
    }
}

impl fmt::Debug for LinForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{c}·x{i}")?;
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::integer(n)
    }

    #[test]
    fn variables_and_zero() {
        let x1 = LinForm::variable(3, 1);
        assert!(x1.is_variable(1));
        assert!(!x1.is_variable(0));
        assert!(!x1.is_zero());
        assert!(LinForm::zero(3).is_zero());
    }

    #[test]
    fn arithmetic() {
        let x0 = LinForm::variable(2, 0);
        let x1 = LinForm::variable(2, 1);
        let f = &(&x0 + &x1) - &x1; // = x0
        assert!(f.is_variable(0));
        let g = &x0 * r(3);
        assert_eq!(g.coeff(0), r(3));
    }

    #[test]
    fn eval() {
        let mut f = LinForm::zero(3);
        f.add_term(0, r(2));
        f.add_term(2, r(-1));
        assert_eq!(f.eval(&[r(5), r(100), r(3)]), r(7));
    }

    #[test]
    fn cancellation_detected() {
        let x = LinForm::variable(2, 0);
        let diff = &x - &x;
        assert!(diff.is_zero());
    }

    #[test]
    #[should_panic(expected = "variable-count mismatch")]
    fn mismatched_vars_panics() {
        let _ = &LinForm::zero(2) + &LinForm::zero(3);
    }

    #[test]
    fn debug_format() {
        let mut f = LinForm::zero(2);
        f.add_term(1, Rational::new(-1, 2));
        assert_eq!(format!("{f:?}"), "-1/2·x1");
        assert_eq!(format!("{:?}", LinForm::zero(1)), "0");
    }
}
