//! Block-partitioning helpers for recursive (Strassen-like) algorithms.
//!
//! A Strassen-like algorithm for an `n₀^r × n₀^r` matrix views it as an
//! `n₀ × n₀` grid of `n₀^{r-1} × n₀^{r-1}` blocks and recurses. The paper
//! indexes block positions `x ∈ [a]` with `a = n₀²`; this module provides
//! the same flattening (`x = block_row · n₀ + block_col`) used consistently
//! across the workspace, plus mixed-radix helpers for the full recursive
//! index `(x₁, …, x_r) ∈ [a]^r` of a single matrix entry.

use crate::dense::Matrix;
use crate::scalar::Scalar;

/// Splits `m` into an `n0 × n0` grid of equal square blocks, returned in
/// row-major block order (block `x = br·n0 + bc`).
///
/// # Panics
/// Panics if `m` is not square or its side is not divisible by `n0`.
pub fn split_blocks<T: Scalar>(m: &Matrix<T>, n0: usize) -> Vec<Matrix<T>> {
    assert!(m.is_square(), "split_blocks requires a square matrix");
    assert_eq!(
        m.rows() % n0,
        0,
        "side {} not divisible by n0={n0}",
        m.rows()
    );
    let s = m.rows() / n0;
    let mut blocks = Vec::with_capacity(n0 * n0);
    for br in 0..n0 {
        for bc in 0..n0 {
            blocks.push(m.block(br * s, bc * s, s, s));
        }
    }
    blocks
}

/// Inverse of [`split_blocks`]: assembles `n0²` equal square blocks (row-major
/// block order) back into one matrix.
///
/// # Panics
/// Panics if the number or shapes of the blocks are inconsistent.
pub fn join_blocks<T: Scalar>(blocks: &[Matrix<T>], n0: usize) -> Matrix<T> {
    assert_eq!(blocks.len(), n0 * n0, "expected n0² blocks");
    let s = blocks[0].rows();
    assert!(
        blocks.iter().all(|b| b.rows() == s && b.cols() == s),
        "all blocks must be square with equal side"
    );
    let mut m = Matrix::zeros(n0 * s, n0 * s);
    for br in 0..n0 {
        for bc in 0..n0 {
            m.set_block(br * s, bc * s, &blocks[br * n0 + bc]);
        }
    }
    m
}

/// Decomposes an entry position `(row, col)` of an `n₀^r`-sided matrix into
/// its per-level block coordinates `x₁..x_r`, coarsest level first, where
/// each `x_t = block_row_t · n₀ + block_col_t ∈ [n₀²]`.
pub fn entry_to_digits(row: usize, col: usize, n0: usize, r: usize) -> Vec<usize> {
    let mut digits = vec![0; r];
    let (mut row, mut col) = (row, col);
    for t in (0..r).rev() {
        digits[t] = (row % n0) * n0 + (col % n0);
        row /= n0;
        col /= n0;
    }
    digits
}

/// Inverse of [`entry_to_digits`].
pub fn digits_to_entry(digits: &[usize], n0: usize) -> (usize, usize) {
    let mut row = 0;
    let mut col = 0;
    for &x in digits {
        row = row * n0 + x / n0;
        col = col * n0 + x % n0;
    }
    (row, col)
}

/// `n₀^r`, the matrix side after `r` recursion levels.
pub fn side(n0: usize, r: usize) -> usize {
    n0.pow(r as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_join_roundtrip() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as i64);
        for n0 in [1usize, 2, 3, 6] {
            let blocks = split_blocks(&m, n0);
            assert_eq!(blocks.len(), n0 * n0);
            assert!(join_blocks(&blocks, n0).exactly_equals(&m), "n0={n0}");
        }
    }

    #[test]
    fn split_block_contents() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as i64);
        let blocks = split_blocks(&m, 2);
        // Block 3 = bottom-right.
        assert_eq!(blocks[3].as_slice(), &[10, 11, 14, 15]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn split_requires_divisibility() {
        let m: Matrix<i64> = Matrix::zeros(5, 5);
        let _ = split_blocks(&m, 2);
    }

    #[test]
    fn digit_roundtrip() {
        let (n0, r) = (2, 3);
        let n = side(n0, r);
        for row in 0..n {
            for col in 0..n {
                let d = entry_to_digits(row, col, n0, r);
                assert_eq!(d.len(), r);
                assert!(d.iter().all(|&x| x < n0 * n0));
                assert_eq!(digits_to_entry(&d, n0), (row, col));
            }
        }
    }

    #[test]
    fn digits_coarsest_first() {
        // Entry (2, 3) of a 4x4 (n0=2, r=2): coarse block row 1, col 1 → x₁=3;
        // within-block (0, 1) → x₂=1.
        assert_eq!(entry_to_digits(2, 3, 2, 2), vec![3, 1]);
    }

    #[test]
    fn digit_roundtrip_n0_3() {
        let (n0, r) = (3, 2);
        let n = side(n0, r);
        for row in 0..n {
            for col in 0..n {
                let d = entry_to_digits(row, col, n0, r);
                assert_eq!(digits_to_entry(&d, n0), (row, col));
            }
        }
    }
}
