//! Exact linear algebra over the rationals: Gaussian elimination, rank,
//! and least-structure solutions of `A·x = b`.
//!
//! Used by `mmio-algos` to *derive* decoding matrices from a set of
//! products (the decoder of a bilinear algorithm is the unique solution of
//! an exact linear system against the matrix-multiplication tensor), which
//! turns "is this coefficient listing correct?" into "does this system have
//! a solution?" — a much more robust way to reproduce historical
//! algorithms than transcribing their output combinations.

use crate::dense::Matrix;
use crate::rational::Rational;

/// Result of reducing `[A | B]` to row-reduced echelon form.
pub struct Echelon {
    /// The reduced combined matrix.
    pub reduced: Matrix<Rational>,
    /// Column index of the pivot in each nonzero row (in `A`'s columns only
    /// if the pivot falls there; pivots may land in `B`'s columns, which
    /// signals inconsistency for solving).
    pub pivots: Vec<usize>,
    /// Rank of the combined matrix.
    pub rank: usize,
}

/// Row-reduces `m` in place to reduced row-echelon form.
pub fn rref(m: &Matrix<Rational>) -> Echelon {
    let mut a = m.clone();
    let (rows, cols) = (a.rows(), a.cols());
    let mut pivots = Vec::new();
    let mut row = 0;
    for col in 0..cols {
        if row >= rows {
            break;
        }
        // Find a pivot in this column at or below `row`.
        let Some(p) = (row..rows).find(|&i| !a[(i, col)].is_zero()) else {
            continue;
        };
        // Swap rows p and row.
        if p != row {
            for j in 0..cols {
                let tmp = a[(p, j)];
                a[(p, j)] = a[(row, j)];
                a[(row, j)] = tmp;
            }
        }
        // Normalize the pivot row.
        let inv = a[(row, col)].recip();
        for j in 0..cols {
            a[(row, j)] *= inv;
        }
        // Eliminate everywhere else.
        for i in 0..rows {
            if i != row && !a[(i, col)].is_zero() {
                let f = a[(i, col)];
                for j in 0..cols {
                    let sub = f * a[(row, j)];
                    a[(i, j)] -= sub;
                }
            }
        }
        pivots.push(col);
        row += 1;
    }
    Echelon {
        reduced: a,
        rank: row,
        pivots,
    }
}

/// Rank of `m` over the rationals.
pub fn rank(m: &Matrix<Rational>) -> usize {
    rref(m).rank
}

/// Solves `A·x = b` exactly. Returns `None` if inconsistent; otherwise one
/// solution (free variables set to zero).
pub fn solve(a: &Matrix<Rational>, b: &[Rational]) -> Option<Vec<Rational>> {
    assert_eq!(a.rows(), b.len(), "rhs length must match row count");
    let (rows, cols) = (a.rows(), a.cols());
    let aug = Matrix::from_fn(
        rows,
        cols + 1,
        |i, j| {
            if j < cols {
                a[(i, j)]
            } else {
                b[i]
            }
        },
    );
    let ech = rref(&aug);
    // Inconsistent iff some pivot lands in the rhs column.
    if ech.pivots.contains(&cols) {
        return None;
    }
    let mut x = vec![Rational::ZERO; cols];
    for (row, &col) in ech.pivots.iter().enumerate() {
        x[col] = ech.reduced[(row, cols)];
    }
    Some(x)
}

/// Solves `A·X = B` column-by-column. Returns `None` if any column is
/// inconsistent.
pub fn solve_matrix(a: &Matrix<Rational>, b: &Matrix<Rational>) -> Option<Matrix<Rational>> {
    assert_eq!(a.rows(), b.rows(), "row counts must match");
    let mut x = Matrix::zeros(a.cols(), b.cols());
    for j in 0..b.cols() {
        let col: Vec<Rational> = (0..b.rows()).map(|i| b[(i, j)]).collect();
        let sol = solve(a, &col)?;
        for i in 0..a.cols() {
            x[(i, j)] = sol[i];
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::integer(n)
    }

    #[test]
    fn solve_identity() {
        let a: Matrix<Rational> = Matrix::identity(3);
        let b = vec![r(1), r(2), r(3)];
        assert_eq!(solve(&a, &b).unwrap(), b);
    }

    #[test]
    fn solve_2x2() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1.
        let a = Matrix::from_vec(2, 2, vec![r(1), r(1), r(1), r(-1)]);
        let x = solve(&a, &[r(3), r(1)]).unwrap();
        assert_eq!(x, vec![r(2), r(1)]);
    }

    #[test]
    fn inconsistent_detected() {
        // x + y = 1, x + y = 2.
        let a = Matrix::from_vec(2, 2, vec![r(1), r(1), r(1), r(1)]);
        assert!(solve(&a, &[r(1), r(2)]).is_none());
    }

    #[test]
    fn underdetermined_solved_with_free_zero() {
        // x + y = 4 (one equation, two unknowns): x = 4, y = 0.
        let a = Matrix::from_vec(1, 2, vec![r(1), r(1)]);
        assert_eq!(solve(&a, &[r(4)]).unwrap(), vec![r(4), r(0)]);
    }

    #[test]
    fn overdetermined_consistent() {
        // x = 2 stated twice.
        let a = Matrix::from_vec(2, 1, vec![r(1), r(1)]);
        assert_eq!(solve(&a, &[r(2), r(2)]).unwrap(), vec![r(2)]);
    }

    #[test]
    fn rank_examples() {
        assert_eq!(rank(&Matrix::identity(4)), 4);
        assert_eq!(rank(&Matrix::zeros(3, 3)), 0);
        let m = Matrix::from_vec(2, 2, vec![r(1), r(2), r(2), r(4)]);
        assert_eq!(rank(&m), 1);
    }

    #[test]
    fn rational_pivots() {
        // (1/2)x = 3 => x = 6.
        let a = Matrix::from_vec(1, 1, vec![Rational::new(1, 2)]);
        assert_eq!(solve(&a, &[r(3)]).unwrap(), vec![r(6)]);
    }

    #[test]
    fn solve_matrix_form() {
        let a = Matrix::from_vec(2, 2, vec![r(2), r(0), r(0), r(4)]);
        let b = Matrix::from_vec(2, 2, vec![r(2), r(4), r(4), r(8)]);
        let x = solve_matrix(&a, &b).unwrap();
        assert_eq!(x.as_slice(), &[r(1), r(2), r(1), r(2)]);
    }

    #[test]
    fn solution_satisfies_system() {
        // Random-ish consistent system: b = A·x0.
        let a = Matrix::from_vec(
            3,
            3,
            vec![r(2), r(-1), r(0), r(1), r(3), r(1), r(0), r(5), r(-2)],
        );
        let x0 = [r(1), r(-2), r(3)];
        let b: Vec<Rational> = (0..3)
            .map(|i| (0..3).map(|j| a[(i, j)] * x0[j]).sum())
            .collect();
        let x = solve(&a, &b).unwrap();
        for i in 0..3 {
            let lhs: Rational = (0..3).map(|j| a[(i, j)] * x[j]).sum();
            assert_eq!(lhs, b[i]);
        }
    }
}
