//! Random matrix generation for tests and workload generators.

use crate::dense::Matrix;
use crate::rational::Rational;
use rand::Rng;

/// Random `rows × cols` matrix with small integer entries in `[-9, 9]`.
///
/// Small entries keep exact integer arithmetic overflow-free even through
/// several Strassen recursion levels.
pub fn random_i64_matrix<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix<i64> {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-9i64..=9))
}

/// Random `rows × cols` matrix with `f64` entries in `[-1, 1)`.
pub fn random_f64_matrix<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Random `rows × cols` matrix of small integer-valued rationals.
pub fn random_rational_matrix<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix<Rational> {
    Matrix::from_fn(rows, cols, |_, _| {
        Rational::integer(rng.gen_range(-9i64..=9))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_i64_matrix(3, 4, &mut rng);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert!(m.as_slice().iter().all(|&x| (-9..=9).contains(&x)));

        let f = random_f64_matrix(2, 2, &mut rng);
        assert!(f.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ma = random_i64_matrix(4, 4, &mut a);
        let mb = random_i64_matrix(4, 4, &mut b);
        assert!(ma.exactly_equals(&mb));
    }
}
