//! Classical `Θ(n³)` matrix multiplication in several loop orders.
//!
//! These are the ground-truth oracles every fast algorithm in the workspace
//! is tested against, and the "classical" side of the paper's motivating
//! comparison: Hong–Kung [10] proved the classical algorithm needs
//! `Θ(n³/√M)` I/Os, attained by the blocked variant implemented here.

use crate::dense::Matrix;
use crate::scalar::Scalar;

/// Naive i-j-k triple loop. `O(n³)` scalar multiplications, poor locality.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn multiply_naive<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    Matrix::from_fn(m, n, |i, j| {
        let mut acc = T::zero();
        for l in 0..k {
            acc += a[(i, l)] * b[(l, j)];
        }
        acc
    })
}

/// i-k-j loop order: streams rows of `b`, much better spatial locality.
pub fn multiply_ikj<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for l in 0..k {
            let ail = a[(i, l)];
            if ail == T::zero() {
                continue;
            }
            let brow = b.row(l);
            for j in 0..n {
                c[(i, j)] += ail * brow[j];
            }
        }
    }
    c
}

/// Cache-blocked multiplication with square tiles of side `bs`.
///
/// This is the schedule that attains Hong–Kung's `Θ(n³/√M)` I/O lower bound
/// when `bs ≈ √(M/3)`; the I/O accounting itself lives in `mmio-pebble`.
///
/// # Panics
/// Panics if `bs == 0` or on inner-dimension mismatch.
pub fn multiply_blocked<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, bs: usize) -> Matrix<T> {
    assert!(bs > 0, "block size must be positive");
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i0 in (0..m).step_by(bs) {
        for l0 in (0..k).step_by(bs) {
            for j0 in (0..n).step_by(bs) {
                let i1 = (i0 + bs).min(m);
                let l1 = (l0 + bs).min(k);
                let j1 = (j0 + bs).min(n);
                for i in i0..i1 {
                    for l in l0..l1 {
                        let ail = a[(i, l)];
                        for j in j0..j1 {
                            c[(i, j)] += ail * b[(l, j)];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Number of scalar multiplications the classical algorithm performs on
/// `n×n` inputs: exactly `n³`.
pub fn multiplication_count(n: u64) -> u64 {
    n * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_i64_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_product() {
        let a = Matrix::from_vec(2, 2, vec![1i64, 2, 3, 4]);
        let b = Matrix::from_vec(2, 2, vec![5i64, 6, 7, 8]);
        let c = multiply_naive(&a, &b);
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    fn rectangular_product() {
        let a = Matrix::from_vec(2, 3, vec![1i64, 0, 2, 0, 1, 1]);
        let b = Matrix::from_vec(3, 2, vec![1i64, 1, 2, 0, 0, 3]);
        let c = multiply_naive(&a, &b);
        assert_eq!(c.as_slice(), &[1, 7, 2, 3]);
    }

    #[test]
    fn loop_orders_agree() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 8, 13] {
            let a = random_i64_matrix(n, n, &mut rng);
            let b = random_i64_matrix(n, n, &mut rng);
            let naive = multiply_naive(&a, &b);
            assert!(multiply_ikj(&a, &b).exactly_equals(&naive), "ikj n={n}");
            for bs in [1, 2, 4, 7] {
                assert!(
                    multiply_blocked(&a, &b, bs).exactly_equals(&naive),
                    "blocked n={n} bs={bs}"
                );
            }
        }
    }

    #[test]
    fn blocked_handles_non_dividing_block_size() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_i64_matrix(5, 5, &mut rng);
        let b = random_i64_matrix(5, 5, &mut rng);
        assert!(multiply_blocked(&a, &b, 3).exactly_equals(&multiply_naive(&a, &b)));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a: Matrix<i64> = Matrix::zeros(2, 3);
        let b: Matrix<i64> = Matrix::zeros(2, 3);
        let _ = multiply_naive(&a, &b);
    }

    #[test]
    fn multiplication_count_is_cubic() {
        assert_eq!(multiplication_count(4), 64);
        assert_eq!(multiplication_count(10), 1000);
    }
}
