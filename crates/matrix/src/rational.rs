//! Exact rational numbers over `i64`.
//!
//! Base-graph coefficients of Strassen-like algorithms are tiny rationals
//! (Strassen and Winograd use only `0, ±1`; some variants use `±1/2`), and
//! the symbolic correctness check multiplies three of them at a time, so
//! `i64` numerators/denominators leave enormous headroom. All arithmetic is
//! checked: overflow panics rather than silently wrapping, because a wrong
//! coefficient would invalidate every theorem downstream.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den`, always kept in canonical form:
/// `den > 0` and `gcd(|num|, den) == 1`; zero is `0/1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64,
}

/// Greatest common divisor of two non-negative integers.
fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The additive identity.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The multiplicative identity.
    pub const ONE: Rational = Rational { num: 1, den: 1 };
    /// Minus one, the most common nontrivial coefficient in fast algorithms.
    pub const MINUS_ONE: Rational = Rational { num: -1, den: 1 };

    /// Creates `num/den` in canonical form.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Rational {
        // audit: safe — documented programming-error guard; verify-path callers (checked_add/checked_mul) derive denominators from canonical rationals, which keep den > 0 as a type invariant
        assert!(den != 0, "rational with zero denominator");
        if num == 0 {
            return Rational::ZERO;
        }
        let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
        let (num, den) = (num.abs(), den.abs());
        let g = gcd(num, den);
        Rational {
            num: sign * (num / g),
            den: den / g,
        }
    }

    /// Creates the integer `n` as a rational.
    pub const fn integer(n: i64) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The numerator (canonical form, carries the sign).
    pub fn numer(self) -> i64 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i64 {
        self.den
    }

    /// Whether this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this is exactly one.
    pub fn is_one(self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// Whether this is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Converts to the nearest `f64` (exact whenever representable).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked_add(self, rhs: Rational) -> Option<Rational> {
        // a/b + c/d = (a·(l/b) + c·(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.den, rhs.den);
        let l = (self.den / g).checked_mul(rhs.den)?;
        let x = self.num.checked_mul(l / self.den)?;
        let y = rhs.num.checked_mul(l / rhs.den)?;
        Some(Rational::new(x.checked_add(y)?, l))
    }

    fn checked_mul(self, rhs: Rational) -> Option<Rational> {
        // Cross-reduce first so intermediate products stay small.
        let g1 = gcd(self.num.abs(), rhs.den);
        let g2 = gcd(rhs.num.abs(), self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational::new(num, den))
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::integer(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::integer(n as i64)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs).expect("rational addition overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs)
            .expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a·b⁻¹ is the definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |acc, x| acc + x)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // num1/den1 ? num2/den2  <=>  num1·den2 ? num2·den1 (dens positive).
        let lhs = (self.num as i128) * (other.den as i128);
        let rhs = (other.num as i128) * (self.den as i128);
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 7), Rational::ZERO);
        assert_eq!(Rational::new(0, -7).denom(), 1);
    }

    #[test]
    fn arithmetic() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
        assert_eq!(-half, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 1) > Rational::new(13, 2));
    }

    #[test]
    fn sum_and_predicates() {
        let s: Rational = [1, 2, 3].iter().map(|&n| Rational::integer(n)).sum();
        assert_eq!(s, Rational::integer(6));
        assert!(Rational::ONE.is_one());
        assert!(Rational::ZERO.is_zero());
        assert!(Rational::new(4, 2).is_integer());
        assert!(!Rational::new(1, 2).is_integer());
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert_eq!(Rational::new(-3, 4).recip(), Rational::new(-4, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn cross_reduction_avoids_overflow() {
        // (2^40/3) * (3/2^40) = 1 must not overflow intermediates.
        let big = 1i64 << 40;
        let a = Rational::new(big, 3);
        let b = Rational::new(3, big);
        assert_eq!(a * b, Rational::ONE);
    }

    #[test]
    fn to_f64() {
        assert_eq!(Rational::new(1, 2).to_f64(), 0.5);
        assert_eq!(Rational::integer(-3).to_f64(), -3.0);
    }
}

impl serde::Serialize for Rational {
    fn to_value(&self) -> serde::Value {
        // Human-readable "num/den" keeps JSON diffs reviewable.
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for Rational {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let s = String::from_value(v)?;
        let (num, den) = match s.split_once('/') {
            Some((n, d)) => (
                n.parse::<i64>().map_err(serde::de::Error::custom)?,
                d.parse::<i64>().map_err(serde::de::Error::custom)?,
            ),
            None => (s.parse::<i64>().map_err(serde::de::Error::custom)?, 1),
        };
        if den == 0 {
            return Err(serde::de::Error::custom("zero denominator"));
        }
        Ok(Rational::new(num, den))
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn roundtrip_through_json() {
        for r in [
            Rational::ZERO,
            Rational::ONE,
            Rational::new(-3, 4),
            Rational::integer(42),
        ] {
            let json = serde_json::to_string(&r).unwrap();
            let back: Rational = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn rejects_zero_denominator() {
        assert!(serde_json::from_str::<Rational>("\"1/0\"").is_err());
        assert!(serde_json::from_str::<Rational>("\"x\"").is_err());
    }
}
