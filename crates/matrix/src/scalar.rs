//! The [`Scalar`] trait: the ground field (or ring) matrices are over.
//!
//! The paper works over ℝ or ℂ; for reproducibility we run algorithms over
//! `f64` (performance benches), `i64` (exact, overflow-checked in debug) and
//! [`Rational`](crate::Rational) (fully exact, used by correctness proofs).

use crate::rational::Rational;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A numeric type matrices can be built over.
///
/// Deliberately minimal: just the ring operations the bilinear algorithms
/// need, plus conversion from a [`Rational`] coefficient so that any
/// base-graph coefficient matrix can act on any scalar type.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Converts an exact rational coefficient into this scalar type.
    ///
    /// For integer scalar types this must be exact; callers only pass
    /// coefficients that actually arise in a base graph, and integer-scalar
    /// executions are only run with integer-coefficient base graphs.
    fn from_rational(r: Rational) -> Self;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_rational(r: Rational) -> Self {
        r.to_f64()
    }
}

impl Scalar for i64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn from_rational(r: Rational) -> Self {
        assert!(
            r.is_integer(),
            "non-integer coefficient {r} used with i64 scalars"
        );
        r.numer()
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Rational::ZERO
    }
    fn one() -> Self {
        Rational::ONE
    }
    fn from_rational(r: Rational) -> Self {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_ring_smoke<T: Scalar>() {
        let two = T::one() + T::one();
        assert_eq!(two * T::zero(), T::zero());
        assert_eq!(two - T::one(), T::one());
        assert_eq!(-T::one() + T::one(), T::zero());
    }

    #[test]
    fn ring_laws_f64() {
        generic_ring_smoke::<f64>();
    }

    #[test]
    fn ring_laws_i64() {
        generic_ring_smoke::<i64>();
    }

    #[test]
    fn ring_laws_rational() {
        generic_ring_smoke::<Rational>();
    }

    #[test]
    fn from_rational_roundtrips() {
        assert_eq!(f64::from_rational(Rational::new(1, 2)), 0.5);
        assert_eq!(i64::from_rational(Rational::integer(-7)), -7);
        assert_eq!(
            Rational::from_rational(Rational::new(2, 3)),
            Rational::new(2, 3)
        );
    }

    #[test]
    #[should_panic(expected = "non-integer coefficient")]
    fn i64_rejects_fractions() {
        let _ = i64::from_rational(Rational::new(1, 2));
    }
}
