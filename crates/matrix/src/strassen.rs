//! Hand-written Strassen multiplication (the 1969 seven-multiplication
//! scheme), independent of the generic bilinear executor in `mmio-algos`.
//!
//! Used as a cross-check (two independent implementations of the same base
//! graph must agree) and as the fast side of the classical-vs-fast crossover
//! benchmark (experiment E10).

use crate::block::{join_blocks, split_blocks};
use crate::classical::multiply_naive;
use crate::dense::Matrix;
use crate::scalar::Scalar;

/// Multiplies two square matrices with Strassen's algorithm, recursing while
/// the side is even and larger than `cutoff`, then falling back to the
/// classical algorithm.
///
/// # Panics
/// Panics if the matrices are not square with equal side, or `cutoff == 0`.
pub fn multiply<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, cutoff: usize) -> Matrix<T> {
    assert!(cutoff > 0, "cutoff must be positive");
    assert!(
        a.is_square() && b.is_square() && a.rows() == b.rows(),
        "Strassen requires equal square operands"
    );
    multiply_rec(a, b, cutoff)
}

fn multiply_rec<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, cutoff: usize) -> Matrix<T> {
    let n = a.rows();
    if n <= cutoff || !n.is_multiple_of(2) {
        return multiply_naive(a, b);
    }
    let ab = split_blocks(a, 2);
    let bb = split_blocks(b, 2);
    let (a11, a12, a21, a22) = (&ab[0], &ab[1], &ab[2], &ab[3]);
    let (b11, b12, b21, b22) = (&bb[0], &bb[1], &bb[2], &bb[3]);

    // Strassen's seven products.
    let m1 = multiply_rec(&(a11 + a22), &(b11 + b22), cutoff);
    let m2 = multiply_rec(&(a21 + a22), b11, cutoff);
    let m3 = multiply_rec(a11, &(b12 - b22), cutoff);
    let m4 = multiply_rec(a22, &(b21 - b11), cutoff);
    let m5 = multiply_rec(&(a11 + a12), b22, cutoff);
    let m6 = multiply_rec(&(a21 - a11), &(b11 + b12), cutoff);
    let m7 = multiply_rec(&(a12 - a22), &(b21 + b22), cutoff);

    let c11 = &(&(&m1 + &m4) - &m5) + &m7;
    let c12 = &m3 + &m5;
    let c21 = &m2 + &m4;
    let c22 = &(&(&m1 - &m2) + &m3) + &m6;

    join_blocks(&[c11, c12, c21, c22], 2)
}

/// Exact number of scalar multiplications performed by [`multiply`] on a
/// `2^r`-sided input with cutoff 1: `7^r`.
pub fn multiplication_count(r: u32) -> u64 {
    7u64.pow(r)
}

/// The exponent `ω₀ = log₂ 7 ≈ 2.807` of Strassen's algorithm.
pub fn omega0() -> f64 {
    (7f64).ln() / (2f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_f64_matrix, random_i64_matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_classical_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 4, 8, 16] {
            let a = random_i64_matrix(n, n, &mut rng);
            let b = random_i64_matrix(n, n, &mut rng);
            let fast = multiply(&a, &b, 1);
            let slow = multiply_naive(&a, &b);
            assert!(fast.exactly_equals(&slow), "n={n}");
        }
    }

    #[test]
    fn agrees_with_classical_float() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_f64_matrix(32, 32, &mut rng);
        let b = random_f64_matrix(32, 32, &mut rng);
        let diff = multiply(&a, &b, 4).max_abs_diff(&multiply_naive(&a, &b));
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn odd_sizes_fall_back() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_i64_matrix(6, 6, &mut rng); // splits once into 3x3 blocks
        let b = random_i64_matrix(6, 6, &mut rng);
        assert!(multiply(&a, &b, 1).exactly_equals(&multiply_naive(&a, &b)));
    }

    #[test]
    fn cutoff_changes_nothing() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_i64_matrix(16, 16, &mut rng);
        let b = random_i64_matrix(16, 16, &mut rng);
        let reference = multiply(&a, &b, 1);
        for cutoff in [2, 4, 8, 16, 100] {
            assert!(multiply(&a, &b, cutoff).exactly_equals(&reference));
        }
    }

    #[test]
    fn multiplication_counts() {
        assert_eq!(multiplication_count(0), 1);
        assert_eq!(multiplication_count(3), 343);
        assert!((omega0() - 2.8073549).abs() < 1e-6);
    }
}
