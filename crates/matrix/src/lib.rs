//! # mmio-matrix
//!
//! Dense matrix substrate for the `mmio` workspace — the executable side of
//! *Matrix Multiplication I/O-Complexity by Path Routing* (Scott, Holtz,
//! Schwartz; SPAA 2015).
//!
//! The paper reasons about Strassen-like recursive matrix multiplication
//! algorithms. This crate provides everything needed to actually *run* such
//! algorithms and check them for correctness:
//!
//! - [`Rational`]: exact rational arithmetic over `i64`, used for base-graph
//!   coefficients and symbolic correctness checks. Strassen-like coefficient
//!   matrices are tiny, so exactness matters far more than speed here.
//! - [`Matrix`]: a dense, row-major matrix generic over a [`Scalar`] type.
//! - [`classical`]: reference `Θ(n³)` multiplications (naive, ikj-reordered,
//!   and cache-blocked), used as ground truth and as the classical baseline
//!   the paper's introduction compares against.
//! - [`strassen`]: a direct, hand-written Strassen implementation (independent
//!   of the generic bilinear executor in `mmio-algos`) used as a cross-check
//!   and as the performance baseline for the crossover benchmark (E10).
//! - [`block`]: block partitioning helpers used by recursive algorithms.
//! - [`linform`]: formal linear forms over named variables, used by the
//!   Lemma 5/6 machinery in `mmio-core` to decide whether a coefficient of
//!   `a_{ij'}` inside `c_{ij}` is "correct" (equal to `b_{j'j}`) as a formal
//!   expression rather than numerically.
//!
//! ```
//! use mmio_matrix::{Matrix, Rational};
//! use mmio_matrix::classical::multiply_naive;
//! use mmio_matrix::strassen;
//!
//! let a = Matrix::from_fn(4, 4, |i, j| (i + 2 * j) as i64);
//! let b = Matrix::identity(4);
//! assert!(strassen::multiply(&a, &b, 1).exactly_equals(&multiply_naive(&a, &b)));
//! assert_eq!(Rational::new(2, 4) + Rational::new(1, 2), Rational::ONE);
//! ```

#![forbid(unsafe_code)]

pub mod block;
pub mod classical;
pub mod dense;
pub mod linform;
pub mod random;
pub mod rational;
pub mod scalar;
pub mod solve;
pub mod strassen;

pub use dense::Matrix;
pub use linform::LinForm;
pub use rational::Rational;
pub use scalar::Scalar;
