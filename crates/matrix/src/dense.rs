//! Dense, row-major matrices generic over a [`Scalar`].

use crate::scalar::Scalar;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense `rows × cols` matrix stored row-major.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix<T> {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix<T> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Matrix<T> {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Matrix<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over `(row, col, value)` of all nonzero entries.
    pub fn nonzeros(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (0..self.cols).filter_map(move |j| {
                let v = self[(i, j)];
                (v != T::zero()).then_some((i, j, v))
            })
        })
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.nonzeros().count()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Applies `f` entrywise, producing a possibly differently-typed matrix.
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: T) -> Matrix<T> {
        self.map(|x| x * s)
    }

    /// Copies the `h × w` block with top-left corner `(r0, c0)` out of `self`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Matrix<T> {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of bounds"
        );
        Matrix::from_fn(h, w, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Writes `src` into `self` with top-left corner `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Matrix<T>) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "block out of bounds"
        );
        for i in 0..src.rows {
            for j in 0..src.cols {
                self[(r0 + i, c0 + j)] = src[(i, j)];
            }
        }
    }

    /// `self + other` without consuming either operand.
    pub fn add_ref(&self, other: &Matrix<T>) -> Matrix<T> {
        self.zip_with(other, |a, b| a + b)
    }

    /// `self - other` without consuming either operand.
    pub fn sub_ref(&self, other: &Matrix<T>) -> Matrix<T> {
        self.zip_with(other, |a, b| a - b)
    }

    fn zip_with(&self, other: &Matrix<T>, f: impl Fn(T, T) -> T) -> Matrix<T> {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Frobenius-style check that all entries are exactly equal.
    pub fn exactly_equals(&self, other: &Matrix<T>) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl Matrix<f64> {
    /// Maximum absolute entrywise difference, for float comparisons.
    pub fn max_abs_diff(&self, other: &Matrix<f64>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        self.add_ref(rhs)
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        self.sub_ref(rhs)
    }
}

impl<T: Scalar> Neg for &Matrix<T> {
    type Output = Matrix<T>;
    fn neg(self) -> Matrix<T> {
        self.map(|x| -x)
    }
}

impl<T: Scalar> Mul for &Matrix<T> {
    type Output = Matrix<T>;
    /// Classical (naive) multiplication; see [`crate::classical`] for faster
    /// loop orders. Provided as an operator for convenience in tests.
    fn mul(self, rhs: &Matrix<T>) -> Matrix<T> {
        crate::classical::multiply_naive(self, rhs)
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self.data[i * self.cols + j])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rational;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as i64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 5);
        assert_eq!(m.row(1), &[3, 4, 5]);
    }

    #[test]
    fn identity_and_zeros() {
        let id: Matrix<i64> = Matrix::identity(3);
        let z: Matrix<i64> = Matrix::zeros(3, 3);
        assert_eq!(id.nnz(), 3);
        assert_eq!(z.nnz(), 0);
        assert!((&id + &z).exactly_equals(&id));
    }

    #[test]
    fn add_sub_neg_scale() {
        let a = Matrix::from_vec(2, 2, vec![1i64, 2, 3, 4]);
        let b = Matrix::from_vec(2, 2, vec![4i64, 3, 2, 1]);
        assert_eq!((&a + &b).as_slice(), &[5, 5, 5, 5]);
        assert_eq!((&a - &b).as_slice(), &[-3, -1, 1, 3]);
        assert_eq!((-&a).as_slice(), &[-1, -2, -3, -4]);
        assert_eq!(a.scale(2).as_slice(), &[2, 4, 6, 8]);
    }

    #[test]
    fn transpose() {
        let m = Matrix::from_vec(2, 3, vec![1i64, 2, 3, 4, 5, 6]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.as_slice(), &[1, 4, 2, 5, 3, 6]);
        assert!(t.transpose().exactly_equals(&m));
    }

    #[test]
    fn blocks_roundtrip() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as i64);
        let b = m.block(2, 2, 2, 2);
        assert_eq!(b.as_slice(), &[10, 11, 14, 15]);
        let mut z: Matrix<i64> = Matrix::zeros(4, 4);
        z.set_block(2, 2, &b);
        assert_eq!(z[(3, 3)], 15);
        assert_eq!(z[(0, 0)], 0);
    }

    #[test]
    #[should_panic(expected = "block out of bounds")]
    fn block_out_of_bounds() {
        let m: Matrix<i64> = Matrix::zeros(2, 2);
        let _ = m.block(1, 1, 2, 2);
    }

    #[test]
    fn map_changes_type() {
        let m = Matrix::from_vec(1, 2, vec![1i64, -2]);
        let r = m.map(Rational::integer);
        assert_eq!(r[(0, 1)], Rational::integer(-2));
    }

    #[test]
    fn nonzeros() {
        let m = Matrix::from_vec(2, 2, vec![0i64, 5, 0, -1]);
        let nz: Vec<_> = m.nonzeros().collect();
        assert_eq!(nz, vec![(0, 1, 5), (1, 1, -1)]);
    }

    #[test]
    fn mul_operator_matches_identity() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + 2 * j) as i64);
        let id = Matrix::identity(3);
        assert!((&m * &id).exactly_equals(&m));
        assert!((&id * &m).exactly_equals(&m));
    }

    #[test]
    fn max_abs_diff() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}

impl<T: serde::Serialize> serde::Serialize for Matrix<T> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("rows".to_string(), self.rows.to_value()),
            ("cols".to_string(), self.cols.to_value()),
            ("data".to_string(), self.data.to_value()),
        ])
    }
}

impl<T: serde::Deserialize> serde::Deserialize for Matrix<T> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::de::Error::custom(format!("missing field `{name}`")))
        };
        let rows = usize::from_value(field("rows")?)?;
        let cols = usize::from_value(field("cols")?)?;
        let data = Vec::<T>::from_value(field("data")?)?;
        // checked_mul: rows/cols are untrusted, and rows*cols may overflow.
        if rows.checked_mul(cols) != Some(data.len()) {
            return Err(serde::de::Error::custom("matrix shape/data mismatch"));
        }
        Ok(Matrix { rows, cols, data })
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::rational::Rational;

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_fn(2, 3, |i, j| Rational::new(i as i64 + 1, j as i64 + 1));
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix<Rational> = serde_json::from_str(&json).unwrap();
        assert!(back.exactly_equals(&m));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let bad = r#"{"rows":2,"cols":2,"data":["1","2","3"]}"#;
        assert!(serde_json::from_str::<Matrix<Rational>>(bad).is_err());
    }
}
