//! # mmio-examples
//!
//! Runnable examples for the `mmio` workspace. Each example is a standalone
//! binary under `examples/` (also reachable from the repository root via
//! the `examples` symlink):
//!
//! - `quickstart` — the 5-minute tour: verify Strassen symbolically,
//!   multiply real matrices, build the CDAG, measure I/O, compare with
//!   Theorem 1.
//! - `routing_certificates` — construct and verify the paper's routings
//!   (Claim 1 and the Routing Theorem) for every algorithm in the library.
//! - `io_sweep` — the I/O-vs-cache-size experiment: measured I/O of the
//!   recursive schedule against the `(n/√M)^{ω₀}·M` lower bound.
//! - `parallel_scaling` — bandwidth cost vs processor count: CAPS
//!   simulation, distributed-CDAG accounting, and a real threaded run.
//! - `pebble_playground` — the red–blue pebble game on a tiny CDAG:
//!   exact optimal I/O vs scheduled I/O under different policies.
//! - `custom_algorithm` — define an algorithm as JSON, import it with
//!   forced verification, and run the whole pipeline on it.
//!
//! Run with `cargo run --release -p mmio-examples --example <name>`.

#![forbid(unsafe_code)]

/// Formats a floating bound and an integer measurement side by side.
pub fn ratio_line(label: &str, measured: u64, bound: f64) -> String {
    let ratio = if bound > 0.0 {
        measured as f64 / bound
    } else {
        f64::NAN
    };
    format!("{label:<28} measured {measured:>12}   bound {bound:>14.1}   ratio {ratio:>7.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_line_formats() {
        let line = ratio_line("x", 100, 50.0);
        assert!(line.contains("ratio"));
        assert!(line.contains("2.00"));
    }
}
