//! Construct and verify the paper's path routings for every algorithm in
//! the library.
//!
//! For each base graph this prints, at increasing recursion depth `k`:
//! the Claim 1 routing in the decoding graph (when the decoding graph is
//! connected), and the Routing Theorem's `6a^k`-routing between the inputs
//! and outputs of `G_k` — with the actually measured maximum vertex and
//! meta-vertex hit counts next to the proven bounds.
//!
//! ```text
//! cargo run --release -p mmio-examples --example routing_certificates
//! ```

use mmio_algos::registry::all_base_graphs;
use mmio_cdag::build::build_cdag;
use mmio_core::claim1::DecodingRouting;
use mmio_core::theorem2::InOutRouting;

fn main() {
    println!(
        "{:<22} {:>2} | {:>14} {:>12} | {:>12} {:>10} {:>10}",
        "base graph", "k", "claim1 m-bound", "measured", "thm2 bound", "max vert", "max meta"
    );
    for base in all_base_graphs() {
        // Keep path counts manageable: 2a^{2k} paths.
        let max_k = if base.a() >= 16 { 1 } else { 2 };
        for k in 1..=max_k {
            let g = build_cdag(&base, k);
            let claim1 = match DecodingRouting::new(&g) {
                Some(routing) => {
                    let stats = routing.verify();
                    assert!(
                        stats.is_m_routing(routing.claim1_bound()),
                        "Claim 1 violated for {}",
                        base.name()
                    );
                    format!(
                        "{:>14} {:>12}",
                        routing.claim1_bound(),
                        stats.max_vertex_hits
                    )
                }
                None => format!("{:>14} {:>12}", "disconnected", "—"),
            };
            match InOutRouting::new(&g) {
                Some(routing) => {
                    let stats = routing.verify();
                    assert!(
                        stats.is_m_routing(routing.theorem2_bound()),
                        "Routing Theorem violated for {}",
                        base.name()
                    );
                    println!(
                        "{:<22} {:>2} | {claim1} | {:>12} {:>10} {:>10}",
                        base.name(),
                        k,
                        routing.theorem2_bound(),
                        stats.max_vertex_hits,
                        stats.max_meta_hits
                    );
                }
                None => {
                    println!(
                        "{:<22} {:>2} | {claim1} | {:>12} {:>10} {:>10}",
                        base.name(),
                        k,
                        "no matching",
                        "—",
                        "—"
                    );
                }
            }
        }
    }
    println!("\nEvery constructed routing satisfies its proven m-bound; the");
    println!("disconnected decoding graphs (classical, strassen+dummy) defeat");
    println!("the Section 5 construction — exactly the gap Theorem 2 closes.");
}
