//! The red–blue pebble game on a tiny CDAG: the exact optimum (full
//! state-space search) versus the automatic scheduler under different
//! replacement policies, and the DOT rendering of the graph (paper
//! Figure 1 at miniature scale).
//!
//! ```text
//! cargo run --release -p mmio-examples --example pebble_playground
//! ```

use mmio_cdag::build::build_cdag;
use mmio_cdag::dot::{to_dot, DotOptions};
use mmio_cdag::BaseGraph;
use mmio_matrix::{Matrix, Rational};
use mmio_pebble::game::min_io;
use mmio_pebble::orders::{rank_order, recursive_order};
use mmio_pebble::policy::{Belady, Lru};
use mmio_pebble::AutoScheduler;

fn main() {
    // A 1×1 "Strassen-like" base graph recursed twice: 10 vertices, small
    // enough for the exact game search.
    let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
    let base = BaseGraph::new("unit", 1, one.clone(), one.clone(), one);
    let g = build_cdag(&base, 2);
    println!(
        "graph: {} vertices, {} edges, inputs {}, outputs {}",
        g.n_vertices(),
        g.n_edges(),
        g.inputs().count(),
        g.outputs().count()
    );

    println!(
        "\n{:>3} | {:>8} | {:>10} {:>10} {:>10}",
        "M", "optimal", "rec+belady", "rec+lru", "rank+lru"
    );
    let rec = recursive_order(&g);
    let rank = rank_order(&g);
    for m in [3usize, 4, 6, 10] {
        let opt = min_io(&g, m, 5_000_000)
            .map(|x| x.to_string())
            .unwrap_or_else(|| "?".into());
        let rb = AutoScheduler::new(&g, m).run(&rec, &mut Belady).io();
        let rl = AutoScheduler::new(&g, m)
            .run(&rec, &mut Lru::new(g.n_vertices()))
            .io();
        let kl = AutoScheduler::new(&g, m)
            .run(&rank, &mut Lru::new(g.n_vertices()))
            .io();
        println!("{m:>3} | {opt:>8} | {rb:>10} {rl:>10} {kl:>10}");
    }

    println!("\nDOT of the graph (render with `dot -Tpng`):\n");
    println!("{}", to_dot(&g, &DotOptions::default()));
}
