//! The I/O-vs-cache-size sweep: measured I/O of three schedules against
//! the Theorem 1 lower bound and the classical Hong–Kung baseline.
//!
//! ```text
//! cargo run --release -p mmio-examples --example io_sweep
//! ```

use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::LowerBound;
use mmio_pebble::blocked::blocked_io;
use mmio_pebble::orders::{rank_order, recursive_order};
use mmio_pebble::policy::{Belady, Lru};
use mmio_pebble::AutoScheduler;

fn main() {
    let base = strassen();
    let r = 5;
    let g = build_cdag(&base, r);
    let n = g.n();
    let lb = LowerBound::new(&base);
    let recursive = recursive_order(&g);
    let ranked = rank_order(&g);

    println!("n = {n} (Strassen, r = {r}); I/O by schedule and cache size\n");
    println!(
        "{:>6} | {:>12} {:>12} {:>12} | {:>12} {:>14}",
        "M", "rec+belady", "rec+lru", "rank+lru", "Ω bound", "classical(blk)"
    );
    for m in [8usize, 16, 32, 64, 128, 256, 512, 1024] {
        let rb = AutoScheduler::new(&g, m).run(&recursive, &mut Belady).io();
        let rl = AutoScheduler::new(&g, m)
            .run(&recursive, &mut Lru::new(g.n_vertices()))
            .io();
        let kl = AutoScheduler::new(&g, m)
            .run(&ranked, &mut Lru::new(g.n_vertices()))
            .io();
        let bound = lb.sequential_io(n, m as u64);
        let classical = blocked_io(n, m as u64);
        println!("{m:>6} | {rb:>12} {rl:>12} {kl:>12} | {bound:>12.0} {classical:>14}",);
    }
    println!("\nShape checks:");
    println!("- the recursive schedule tracks the Ω bound within a constant;");
    println!("- the rank-by-rank schedule degrades sharply at small M;");
    println!("- blocked classical follows n³/√M — worse than Strassen's");
    println!("  (n/√M)^2.807·M for large n at every M.");
}
