//! Bring your own algorithm: define a Strassen-like scheme as data, import
//! it (with forced verification), and push it through the whole pipeline —
//! CDAG, structural classification, routing certificate, I/O simulation,
//! and the Theorem 1 lower bound.
//!
//! ```text
//! cargo run --release -p mmio-examples --example custom_algorithm
//! ```

use mmio_cdag::build::build_cdag;
use mmio_cdag::connectivity::classify;
use mmio_cdag::serialize;
use mmio_core::theorem1::LowerBound;
use mmio_core::theorem2::InOutRouting;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Lru;
use mmio_pebble::AutoScheduler;

/// Strassen's algorithm written out as the JSON a user would author.
const CUSTOM: &str = r#"{
  "name": "my-strassen",
  "n0": 2,
  "enc_a": { "rows": 7, "cols": 4, "data": [
    "1","0","0","1",  "0","0","1","1",  "1","0","0","0",  "0","0","0","1",
    "1","1","0","0",  "-1","0","1","0", "0","1","0","-1" ] },
  "enc_b": { "rows": 7, "cols": 4, "data": [
    "1","0","0","1",  "1","0","0","0",  "0","1","0","-1", "-1","0","1","0",
    "0","0","0","1",  "1","1","0","0",  "0","0","1","1" ] },
  "dec": { "rows": 4, "cols": 7, "data": [
    "1","0","0","1","-1","0","1",
    "0","0","1","0","1","0","0",
    "0","1","0","1","0","0","0",
    "1","-1","1","0","0","1","0" ] }
}"#;

fn main() {
    // 1. Import + verify (a wrong coefficient file would be rejected here).
    let base = serialize::from_json(CUSTOM).expect("the file must verify");
    println!(
        "imported '{}': ⟨{},{},{};{}⟩, ω₀ = {:.4}",
        base.name(),
        base.n0(),
        base.n0(),
        base.n0(),
        base.b(),
        base.omega0()
    );

    // 2. Classify.
    let props = classify(&base);
    println!(
        "structure: dec components {}, multiple copying {}, single-use {}",
        props.dec_components, props.multiple_copying, props.single_use_assumption
    );

    // 3. Routing certificate.
    let g2 = build_cdag(&base, 2);
    let routing = InOutRouting::new(&g2).expect("Hall matching");
    let stats = routing.verify();
    println!(
        "routing: {} paths, max hits {} ≤ bound {} — verified",
        stats.paths,
        stats.max_vertex_hits,
        routing.theorem2_bound()
    );

    // 4. Simulate and compare with the bound.
    let g = build_cdag(&base, 5);
    let order = recursive_order(&g);
    let lb = LowerBound::new(&base);
    for m in [32usize, 128] {
        let io = AutoScheduler::new(&g, m)
            .run(&order, &mut Lru::new(g.n_vertices()))
            .io();
        println!(
            "M = {m:>4}: measured {io} I/Os, Ω bound {:.0}",
            lb.sequential_io(g.n(), m as u64)
        );
    }
    println!("\nTo analyze your own algorithm: `mmio export strassen > mine.json`,");
    println!("edit the coefficients, then `mmio report mine.json 4 16`.");
}
