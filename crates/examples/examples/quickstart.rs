//! Quickstart: the whole pipeline on one page.
//!
//! 1. Take Strassen's base graph and *prove* it multiplies matrices
//!    (exact tensor check).
//! 2. Multiply two real matrices with it and cross-check against the
//!    classical algorithm.
//! 3. Build the computation DAG `G_r`, run it through the two-level memory
//!    simulator with the recursive schedule, and compare the measured I/O
//!    against Theorem 1's lower bound.
//!
//! ```text
//! cargo run --release -p mmio-examples --example quickstart
//! ```

use mmio_algos::strassen::strassen;
use mmio_algos::Executor;
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::LowerBound;
use mmio_examples::ratio_line;
use mmio_matrix::classical::multiply_naive;
use mmio_matrix::random::random_i64_matrix;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Lru;
use mmio_pebble::AutoScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The algorithm, symbolically verified.
    let base = strassen();
    base.verify_correctness()
        .expect("Strassen satisfies the matmul tensor identity");
    println!(
        "base graph {:?}: a={}, b={}, ω₀={:.4}, fast={}",
        base.name(),
        base.a(),
        base.b(),
        base.omega0(),
        base.is_fast()
    );

    // 2. Multiply real matrices.
    let mut rng = StdRng::seed_from_u64(2015);
    let n = 64usize;
    let a = random_i64_matrix(n, n, &mut rng);
    let b = random_i64_matrix(n, n, &mut rng);
    let exec = Executor::new(base.clone(), 8);
    let (c, counts) = exec.multiply_counted(&a, &b);
    assert!(c.exactly_equals(&multiply_naive(&a, &b)));
    println!(
        "multiplied {n}×{n}: {} leaf mults, {} adds — result matches classical",
        counts.leaf_mults, counts.adds
    );

    // 3. The CDAG and its I/O under a real schedule.
    let r = 5; // 32×32
    let g = build_cdag(&base, r);
    println!(
        "built G_{r}: {} vertices, {} edges (n = {})",
        g.n_vertices(),
        g.n_edges(),
        g.n()
    );
    let order = recursive_order(&g);
    let lb = LowerBound::new(&base);
    println!(
        "\nI/O of the recursive schedule vs Theorem 1 (n = {}):",
        g.n()
    );
    for m in [16usize, 64, 256, 1024] {
        let stats = AutoScheduler::new(&g, m).run(&order, &mut Lru::new(g.n_vertices()));
        let bound = lb.sequential_io(g.n(), m as u64);
        println!("{}", ratio_line(&format!("M = {m}"), stats.io(), bound));
    }
    println!("\nThe ratio stays Θ(1) as M varies: the bound is tight (Theorem 1 + [3]).");
}
