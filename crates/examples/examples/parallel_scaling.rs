//! Parallel bandwidth: strong scaling of CAPS-style execution against the
//! two parallel lower bounds of Theorem 1, plus a real threaded run.
//!
//! ```text
//! cargo run --release -p mmio-examples --example parallel_scaling
//! ```

use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::LowerBound;
use mmio_matrix::classical::multiply_naive;
use mmio_matrix::random::random_i64_matrix;
use mmio_parallel::assign::{by_top_subproblem, cyclic_per_rank};
use mmio_parallel::bandwidth::measure;
use mmio_parallel::caps::simulate;
use mmio_parallel::executor::multiply_parallel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let base = strassen();
    let lb = LowerBound::new(&base);

    // 1. CAPS simulation: words per processor across P, two memory regimes.
    let n = 1u64 << 10;
    println!("CAPS simulation, n = {n}:");
    println!(
        "{:>6} | {:>14} {:>10} | {:>14} {:>10} | {:>14}",
        "P", "words(M=n²/P)", "steps", "words(M=∞)", "steps", "Ω mem-indep"
    );
    for t in 1..=5u32 {
        let p = 7u64.pow(t);
        let tight = simulate(&base, n, p, 3 * n * n / p);
        let loose = simulate(&base, n, p, u64::MAX);
        println!(
            "{p:>6} | {:>14.0} {:>10} | {:>14.0} {:>10} | {:>14.0}",
            tight.words_per_proc,
            tight.steps,
            loose.words_per_proc,
            loose.steps,
            lb.memory_independent_bandwidth(n, p)
        );
    }

    // 2. Distributed-CDAG accounting at small scale.
    let g = build_cdag(&base, 4);
    println!("\nDistributed CDAG (n = {}), words by assignment:", g.n());
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12}",
        "P", "cyclic", "balanced?", "subtree", "balanced?"
    );
    for p in [2u32, 4, 7, 14] {
        let cyc = measure(&g, &cyclic_per_rank(&g, p));
        let sub = measure(&g, &by_top_subproblem(&g, p));
        println!(
            "{p:>4} | {:>12} {:>12} | {:>12} {:>12}",
            cyc.critical_path, cyc.rank_balanced, sub.critical_path, sub.rank_balanced
        );
    }

    // 3. A real threaded run with counted channels.
    let mut rng = StdRng::seed_from_u64(7);
    let side = 128usize;
    let a = random_i64_matrix(side, side, &mut rng);
    let b = random_i64_matrix(side, side, &mut rng);
    let (c, traffic) = multiply_parallel(&base, &a, &b, 16);
    assert!(c.exactly_equals(&multiply_naive(&a, &b)));
    println!(
        "\nThreaded 1-BFS-level run at n = {side}: {} words out, {} back — result verified.",
        traffic.words_out, traffic.words_in
    );
}
