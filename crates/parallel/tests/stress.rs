//! Deterministic seeded stress tests for the threaded executor, with the
//! bandwidth counts cross-checked three ways: against the closed-form
//! `3·b·(n/n₀)²` step volume, against the CAPS simulator, and against the
//! `mmio-analyze` schedule pass re-verifying a sequential schedule of the
//! same computation.

use mmio_algos::classical::classical;
use mmio_algos::laderman::laderman;
use mmio_algos::strassen::{strassen, winograd};
use mmio_matrix::classical::multiply_naive;
use mmio_matrix::random::random_i64_matrix;
use mmio_parallel::caps;
use mmio_parallel::executor::multiply_parallel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Repeated runs on the same seeded inputs must agree bit-for-bit in both
/// result and traffic, across matrix sizes and cutoffs — the executor's
/// thread scheduling must not leak into its outputs.
#[test]
fn seeded_runs_are_deterministic() {
    let base = strassen();
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 8 << (seed % 2) as usize; // 8 or 16
        let a = random_i64_matrix(n, n, &mut rng);
        let b = random_i64_matrix(n, n, &mut rng);
        let reference = multiply_naive(&a, &b);
        for cutoff in [1usize, 2, 8] {
            let (c0, t0) = multiply_parallel(&base, &a, &b, cutoff);
            assert!(c0.exactly_equals(&reference), "seed={seed} cutoff={cutoff}");
            for _ in 0..3 {
                let (c, t) = multiply_parallel(&base, &a, &b, cutoff);
                assert!(c.exactly_equals(&c0), "nondeterministic result");
                assert_eq!(t, t0, "nondeterministic traffic");
            }
        }
    }
}

/// One BFS step moves exactly `3·b·(n/n₀)²` words regardless of the
/// algorithm, the cutoff, or the data.
#[test]
fn traffic_formula_holds_across_algorithms() {
    let mut rng = StdRng::seed_from_u64(7);
    for base in [
        strassen(),
        winograd(),
        laderman(),
        classical(2),
        classical(3),
    ] {
        let n = base.n0() * 2;
        let a = random_i64_matrix(n, n, &mut rng);
        let b = random_i64_matrix(n, n, &mut rng);
        let (c, t) = multiply_parallel(&base, &a, &b, 1);
        assert!(c.exactly_equals(&multiply_naive(&a, &b)), "{}", base.name());
        let s = (n / base.n0()) as u64;
        assert_eq!(
            t.total(),
            3 * base.b() as u64 * s * s,
            "{}: traffic must be 3·b·(n/n₀)²",
            base.name()
        );
    }
}

/// The executor's measured words equal the CAPS simulator's aggregate step
/// volume at `p = b` (one BFS step, then sequential): `words_per_proc · b`.
#[test]
fn traffic_matches_caps_simulation() {
    let mut rng = StdRng::seed_from_u64(11);
    for base in [strassen(), laderman()] {
        let n = base.n0() * base.n0();
        let a = random_i64_matrix(n, n, &mut rng);
        let b = random_i64_matrix(n, n, &mut rng);
        let (_, t) = multiply_parallel(&base, &a, &b, n / base.n0());
        // p = b with ample memory: exactly one BFS step, then sequential.
        let run = caps::simulate(&base, n as u64, base.b() as u64, 1 << 40);
        assert_eq!(
            run.steps,
            "B",
            "{}: expected a single BFS step",
            base.name()
        );
        let aggregate = run.words_per_proc * base.b() as f64;
        assert_eq!(
            t.total() as f64,
            aggregate,
            "{}: executor traffic vs CAPS step volume",
            base.name()
        );
    }
}

/// Cross-check with the static analyzer: a recorded sequential schedule of
/// the same `G_r` must audit clean, and the analyzer's independently
/// re-counted I/O must equal the pebble simulator's.
#[test]
fn analyzer_certifies_matching_sequential_schedule() {
    use mmio_cdag::build::build_cdag;
    use mmio_pebble::orders::recursive_order;
    use mmio_pebble::policy::Belady;
    use mmio_pebble::AutoScheduler;

    let base = strassen();
    let g = build_cdag(&base, 2); // n = 4, same instance the executor ran
    let m = 24;
    let order = recursive_order(&g);
    let (stats, sched) = AutoScheduler::new(&g, m).run_recorded(&order, &mut Belady);

    let mut report = mmio_analyze::Report::new();
    let audit = mmio_analyze::audit_schedule(&g, &sched, m, &mut report);
    assert!(
        !report.has_errors(),
        "analyzer rejects the recorded schedule: {:?}",
        report.diagnostics
    );
    assert_eq!(audit.loads, stats.loads, "load counts disagree");
    assert_eq!(audit.stores, stats.stores, "store counts disagree");
    assert_eq!(audit.computes, stats.computes, "compute counts disagree");
    assert!(audit.peak_occupancy <= m);

    // Sanity link to the parallel world: the sequential schedule's I/O and
    // the parallel step volume measure the same computation at the same n,
    // and the parallel BFS step may not move fewer words than one full
    // streaming of the inputs and outputs.
    let mut rng = StdRng::seed_from_u64(13);
    let a = random_i64_matrix(4, 4, &mut rng);
    let b = random_i64_matrix(4, 4, &mut rng);
    let (_, t) = multiply_parallel(&base, &a, &b, 2);
    assert_eq!(t.total(), 3 * 7 * 4); // 3·b·(n/n₀)² at n = 4
    assert!(audit.io() > 0);
}
