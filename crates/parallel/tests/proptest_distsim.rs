//! Properties of the SoA distsim engine against the reference engine and
//! the contention model, over random instances (satellite of the flat
//! hot-path tentpole): for any registry base, depth, processor count,
//! memory, assignment strategy, and topology,
//!
//! - the SoA engine reproduces the reference engine's totals, per-rank
//!   counters, and event stream byte-for-byte, and
//! - the contended makespan (with β ≥ 1) dominates the uncontended
//!   critical-path word count, without perturbing any word counter.

use mmio_cdag::build::build_cdag;
use mmio_cdag::Cdag;
use mmio_parallel::assign::{
    all_on_one, block_per_rank, by_top_subproblem, cyclic_per_rank, Assignment,
};
use mmio_parallel::distsim::{
    reference, simulate, simulate_traced, simulate_traced_on, MachineModel, Topology,
};
use mmio_parallel::Pool;
use mmio_pebble::orders::recursive_order;
use proptest::prelude::*;

fn cheap_bases() -> Vec<mmio_cdag::BaseGraph> {
    vec![
        mmio_algos::strassen::strassen(),
        mmio_algos::strassen::winograd(),
        mmio_algos::classical::classical(2),
    ]
}

fn pick_assignment(g: &Cdag, p: u32, which: usize) -> (&'static str, Assignment) {
    match which {
        0 => ("cyclic_per_rank", cyclic_per_rank(g, p)),
        1 => ("block_per_rank", block_per_rank(g, p)),
        2 => ("by_top_subproblem", by_top_subproblem(g, p)),
        _ => ("all_on_one", all_on_one(g, p)),
    }
}

proptest! {
    #[test]
    fn soa_matches_reference_on_random_instances(
        algo in 0usize..3,
        k in 1u32..3,
        p in 2u32..11,
        slack in 0usize..24,
        which in 0usize..4,
    ) {
        let base = cheap_bases().swap_remove(algo);
        let g = build_cdag(&base, k);
        let order = recursive_order(&g);
        let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap() + 1;
        let m = need + slack;
        let (name, a) = pick_assignment(&g, p, which);
        let ctx = format!("{} k={k} p={p} m={m} {name}", base.name());

        let fast = simulate_traced(&g, &a, &order, m);
        let slow = reference::simulate_traced(&g, &a, &order, m);
        assert_eq!(fast.claimed, slow.claimed, "{ctx}: totals drifted");
        assert_eq!(fast.sent, slow.sent, "{ctx}: sent drifted");
        assert_eq!(fast.received, slow.received, "{ctx}: received drifted");
        assert_eq!(fast.events, slow.events, "{ctx}: events drifted");
    }

    #[test]
    fn contended_makespan_dominates_critical_path_on_random_instances(
        algo in 0usize..3,
        k in 1u32..3,
        q in 2u32..4,
        slack in 0usize..24,
        which in 0usize..4,
        topo_idx in 0usize..3,
        alpha in 0u64..4,
        beta in 1u64..4,
        gamma in 0u64..3,
        threads in 1usize..5,
    ) {
        // A q×q processor grid keeps every topology (incl. the torus) valid.
        let p = q * q;
        let base = cheap_bases().swap_remove(algo);
        let g = build_cdag(&base, k);
        let order = recursive_order(&g);
        let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap() + 1;
        let m = need + slack;
        let (name, a) = pick_assignment(&g, p, which);
        let topo = match topo_idx {
            0 => Topology::Full,
            1 => Topology::Ring,
            _ => Topology::Torus2d { q },
        };
        let ctx = format!("{} k={k} p={p} m={m} {name} {:?}", base.name(), topo);

        let plain = simulate(&g, &a, &order, m);
        let mm = Some(MachineModel::new(topo, alpha, beta, gamma));
        let t = simulate_traced_on(&g, &a, &order, m, mm, &Pool::new(threads));
        assert_eq!(t.claimed, plain, "{ctx}: machine model changed counts");
        let c = t.contention.as_ref().expect("machine model requested");
        assert!(
            c.makespan >= plain.critical_path_words,
            "{ctx}: makespan {} < critical path {}",
            c.makespan,
            plain.critical_path_words
        );
        // Per-round link load can never exceed the round's total words, and
        // the claimed makespan is exactly the sum of the round times.
        let sum: u64 = c.rounds.iter().map(|r| r.time).sum();
        assert_eq!(sum, c.makespan, "{ctx}: makespan != Σ round times");
        for r in &c.rounds {
            assert!(r.max_link_words <= r.words, "{ctx}: link load > round words");
            assert!(r.max_rank_words <= 2 * r.words, "{ctx}: rank load > 2·words");
        }
    }
}
