//! A round-based distributed execution simulator: `P` processors, each
//! with a *local cache of size `M`*, executing an assigned partition of
//! the CDAG — the full parallel machine of the paper (Section 1, "for
//! parallel computations we consider P processors, each having independent
//! local memory of size M"), combining the bandwidth accounting of
//! [`crate::bandwidth`] with the cache accounting of `mmio-pebble`.
//!
//! Execution model (owner-computes):
//!
//! - each vertex is computed by its assigned processor, in a global
//!   topological round order;
//! - a processor's operand is either in its local cache (free), in its own
//!   slow memory (1 local I/O), or owned by another processor (1 word of
//!   communication *and* 1 local I/O to place it);
//! - local caches are LRU, sized `M`.
//!
//! The totals decompose the paper's two costs: `bandwidth` (inter-processor
//! words, the Theorem 1 parallel quantity) and per-processor local I/O
//! (the sequential quantity, now divided across processors).
//!
//! Two engines implement this model:
//!
//! - the default flat structure-of-arrays engine ([`soa`], reached via
//!   every public `simulate*` function): O(threads·min(M, work) + V)
//!   state, `Pool`-parallel rank stepping, optional per-link contention
//!   timing under a [`MachineModel`] — built for thousands of ranks;
//! - [`reference`], the original dense O(P·V) engine, kept as the
//!   equivalence oracle: on every instance both can run, totals *and*
//!   the traced event stream are identical (enforced by the
//!   conservation suite, proptests, and `exp_perf_distsim`).
//!
//! [`simulate_traced`] records the full machine-level event stream
//! (cache evictions/insertions, sends, receives, executions) so
//! `mmio-analyze` can re-verify a run by independent re-simulation —
//! double-entry bookkeeping for the distributed machine, in the same
//! spirit as its schedule and routing audits. With a machine model
//! attached ([`simulate_traced_on`]), the trace also carries the claimed
//! per-round contended loads for the analyzer's link-conservation and
//! makespan recounts (`MMIO-D006`/`MMIO-D007`).

pub mod reference;
mod soa;
pub mod topo;

pub use topo::{round_time, ContentionReport, MachineModel, RoundLoad, Topology};

use crate::assign::Assignment;
use crate::pool::Pool;
use mmio_cdag::{CdagView, VertexId};
use serde::Serialize;

/// Results of one distributed simulation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DistRun {
    /// Words moved between processors, total.
    pub total_words: u64,
    /// Maximum over processors of words sent + received (critical path).
    pub critical_path_words: u64,
    /// Maximum over processors of local cache I/O.
    pub max_local_io: u64,
    /// Sum of local cache I/O over all processors.
    pub total_local_io: u64,
}

/// One machine-level action of a traced distributed run. Vertices are
/// dense CDAG indices (`VertexId::idx() as u32`), processors are ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistEvent {
    /// Processor `proc` evicted `v` from its LRU cache.
    Evict {
        /// Evicting processor.
        proc: u32,
        /// Evicted vertex.
        v: u32,
    },
    /// Processor `proc` brought `v` into its cache; `charged` is whether
    /// the insertion cost a local I/O (operand fetches do, computing a
    /// fresh result into cache does not).
    Insert {
        /// Inserting processor.
        proc: u32,
        /// Inserted vertex.
        v: u32,
        /// Whether the insertion was charged as local I/O.
        charged: bool,
    },
    /// Processor `from` sent the value of `v` to `to` (one word).
    Send {
        /// Sender rank.
        from: u32,
        /// Receiver rank.
        to: u32,
        /// Vertex whose value moved.
        v: u32,
    },
    /// Processor `to` received the value of `v` from `from`.
    Recv {
        /// Receiver rank.
        to: u32,
        /// Sender rank.
        from: u32,
        /// Vertex whose value moved.
        v: u32,
    },
    /// Processor `proc` computed (non-input) vertex `v`.
    Exec {
        /// Computing processor.
        proc: u32,
        /// Computed vertex.
        v: u32,
    },
}

/// A fully recorded distributed run: the claimed totals plus the event
/// stream and per-rank counters they were derived from, for independent
/// re-verification by `mmio-analyze`.
#[derive(Clone, Debug)]
pub struct DistTrace {
    /// Number of processors.
    pub p: u32,
    /// Local cache capacity per processor.
    pub m: usize,
    /// The totals the simulator claims (identical to [`simulate`]'s).
    pub claimed: DistRun,
    /// Words sent, per rank.
    pub sent: Vec<u64>,
    /// Words received, per rank.
    pub received: Vec<u64>,
    /// Machine-level events in execution order.
    pub events: Vec<DistEvent>,
    /// Claimed contended loads, when a machine model was attached.
    pub contention: Option<ContentionReport>,
}

/// Totals plus the optional contended-time accounting of one run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DistOutcome {
    /// The paper's word counts.
    pub run: DistRun,
    /// α-β-γ contended timing, when a machine model was attached.
    pub contention: Option<ContentionReport>,
}

/// Simulates `order` under `assignment` with per-processor LRU caches of
/// size `m` (serial, uncontended — the classic entry point).
///
/// # Panics
/// Panics if `m` cannot hold any vertex's operand set.
pub fn simulate<V: CdagView + Sync>(
    g: &V,
    assignment: &Assignment,
    order: &[VertexId],
    m: usize,
) -> DistRun {
    simulate_on(g, assignment, order, m, None, &Pool::serial()).run
}

/// Like [`simulate`], but also records the machine-level event stream for
/// independent re-verification (see `mmio-analyze`'s distsim audit).
///
/// # Panics
/// Panics if `m` cannot hold any vertex's operand set.
pub fn simulate_traced<V: CdagView + Sync>(
    g: &V,
    assignment: &Assignment,
    order: &[VertexId],
    m: usize,
) -> DistTrace {
    simulate_traced_on(g, assignment, order, m, None, &Pool::serial())
}

/// Full-control entry point: optional contention model, pooled rank
/// stepping. Results are byte-identical at every thread count.
///
/// # Panics
/// Panics if `m` cannot hold any vertex's operand set, or if the machine
/// model's topology does not fit `assignment.p` ranks.
pub fn simulate_on<V: CdagView + Sync>(
    g: &V,
    assignment: &Assignment,
    order: &[VertexId],
    m: usize,
    machine: Option<MachineModel>,
    pool: &Pool,
) -> DistOutcome {
    soa::run_soa(g, assignment, order, m, machine, false, pool).0
}

/// [`simulate_on`] with the full event stream (and, with a machine
/// model, the claimed per-round contended loads) recorded for audit.
///
/// # Panics
/// Panics if `m` cannot hold any vertex's operand set, or if the machine
/// model's topology does not fit `assignment.p` ranks.
pub fn simulate_traced_on<V: CdagView + Sync>(
    g: &V,
    assignment: &Assignment,
    order: &[VertexId],
    m: usize,
    machine: Option<MachineModel>,
    pool: &Pool,
) -> DistTrace {
    soa::run_soa(g, assignment, order, m, machine, true, pool)
        .1
        .expect("traced")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{all_on_one, by_top_subproblem, cyclic_per_rank};
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_pebble::orders::recursive_order;

    fn setup() -> (mmio_cdag::Cdag, Vec<VertexId>) {
        let g = build_cdag(&strassen(), 3);
        let order = recursive_order(&g);
        (g, order)
    }

    #[test]
    fn single_processor_has_no_words() {
        let (g, order) = setup();
        let run = simulate(&g, &all_on_one(&g, 1), &order, 32);
        assert_eq!(run.total_words, 0);
        assert!(run.max_local_io > 0);
    }

    #[test]
    fn all_on_one_matches_single_processor_io() {
        // With everything on processor 0, local I/O equals a sequential
        // LRU-ish run: sanity anchor between the two simulators.
        let (g, order) = setup();
        let run1 = simulate(&g, &all_on_one(&g, 1), &order, 32);
        let run4 = simulate(&g, &all_on_one(&g, 4), &order, 32);
        assert_eq!(run1.max_local_io, run4.max_local_io);
        assert_eq!(run4.total_words, 0);
    }

    #[test]
    fn distribution_trades_local_io_for_words() {
        let (g, order) = setup();
        let solo = simulate(&g, &all_on_one(&g, 1), &order, 16);
        let grouped = simulate(&g, &by_top_subproblem(&g, 7), &order, 16);
        // Each processor handles a slice: its local I/O shrinks…
        assert!(grouped.max_local_io < solo.max_local_io);
        // …paid for with communication.
        assert!(grouped.total_words > 0);
    }

    #[test]
    fn subtree_assignment_communicates_less_than_cyclic() {
        let (g, order) = setup();
        let cyc = simulate(&g, &cyclic_per_rank(&g, 7), &order, 16);
        let sub = simulate(&g, &by_top_subproblem(&g, 7), &order, 16);
        assert!(
            sub.total_words < cyc.total_words,
            "subtree {} vs cyclic {}",
            sub.total_words,
            cyc.total_words
        );
    }

    #[test]
    fn bigger_caches_reduce_local_io() {
        let (g, order) = setup();
        let a = by_top_subproblem(&g, 7);
        let small = simulate(&g, &a, &order, 8);
        let large = simulate(&g, &a, &order, 256);
        assert!(large.max_local_io <= small.max_local_io);
        // Communication is cache-independent in this model: same owners.
        assert!(large.total_words <= small.total_words);
    }

    #[test]
    fn traced_run_agrees_with_untraced() {
        let (g, order) = setup();
        let a = by_top_subproblem(&g, 7);
        let plain = simulate(&g, &a, &order, 16);
        let traced = simulate_traced(&g, &a, &order, 16);
        assert_eq!(traced.claimed.total_words, plain.total_words);
        assert_eq!(
            traced.claimed.critical_path_words,
            plain.critical_path_words
        );
        assert_eq!(traced.claimed.max_local_io, plain.max_local_io);
        assert_eq!(traced.claimed.total_local_io, plain.total_local_io);
        assert_eq!(traced.p, 7);
        assert_eq!(traced.m, 16);
        // Event-level sanity: sends and receives pair up exactly, and the
        // per-rank counters match the event stream.
        let sends = traced
            .events
            .iter()
            .filter(|e| matches!(e, DistEvent::Send { .. }))
            .count() as u64;
        let recvs = traced
            .events
            .iter()
            .filter(|e| matches!(e, DistEvent::Recv { .. }))
            .count() as u64;
        assert_eq!(sends, plain.total_words);
        assert_eq!(recvs, plain.total_words);
        assert_eq!(traced.sent.iter().sum::<u64>(), plain.total_words);
        assert_eq!(traced.received.iter().sum::<u64>(), plain.total_words);
        // Every non-input vertex executes exactly once.
        let execs = traced
            .events
            .iter()
            .filter(|e| matches!(e, DistEvent::Exec { .. }))
            .count();
        let non_inputs = g.vertices().filter(|&v| !g.preds(v).is_empty()).count();
        assert_eq!(execs, non_inputs);
    }

    #[test]
    fn soa_matches_reference_exactly() {
        let (g, order) = setup();
        for p in [1u32, 4, 7, 13] {
            for m in [8usize, 16, 64] {
                let a = cyclic_per_rank(&g, p);
                let fast = simulate_traced(&g, &a, &order, m);
                let slow = reference::simulate_traced(&g, &a, &order, m);
                assert_eq!(fast.claimed, slow.claimed, "p={p} m={m}");
                assert_eq!(fast.sent, slow.sent, "p={p} m={m}");
                assert_eq!(fast.received, slow.received, "p={p} m={m}");
                assert_eq!(fast.events, slow.events, "p={p} m={m}");
                assert_eq!(
                    reference::simulate(&g, &a, &order, m),
                    fast.claimed,
                    "p={p} m={m}"
                );
            }
        }
    }

    #[test]
    fn parallel_stepping_is_byte_identical_to_serial() {
        let (g, order) = setup();
        let a = by_top_subproblem(&g, 13);
        let mm = Some(MachineModel::new(Topology::Ring, 2, 1, 1));
        let serial = simulate_traced_on(&g, &a, &order, 16, mm, &Pool::serial());
        for threads in [2usize, 3, 8] {
            let par = simulate_traced_on(&g, &a, &order, 16, mm, &Pool::new(threads));
            assert_eq!(par.claimed, serial.claimed, "threads={threads}");
            assert_eq!(par.events, serial.events, "threads={threads}");
            assert_eq!(par.contention, serial.contention, "threads={threads}");
        }
    }

    #[test]
    fn contended_makespan_dominates_critical_path() {
        let (g, order) = setup();
        let a = cyclic_per_rank(&g, 9);
        for topo in [Topology::Full, Topology::Ring, Topology::Torus2d { q: 3 }] {
            let mm = MachineModel::new(topo, 1, 1, 0);
            let out = simulate_on(&g, &a, &order, 16, Some(mm), &Pool::serial());
            let c = out.contention.expect("contended");
            assert!(
                c.makespan >= out.run.critical_path_words,
                "{topo:?}: makespan {} < critical path {}",
                c.makespan,
                out.run.critical_path_words
            );
            // Link occupancy conservation: per round, Σ over words of the
            // route length equals hop_words, and words on Full equal hops.
            let words: u64 = c.rounds.iter().map(|r| r.words).sum();
            assert_eq!(words, out.run.total_words);
            if matches!(topo, Topology::Full) {
                for r in &c.rounds {
                    assert_eq!(r.words, r.hop_words);
                }
            }
        }
    }

    #[test]
    fn contention_report_is_absent_without_model() {
        let (g, order) = setup();
        let a = cyclic_per_rank(&g, 4);
        let out = simulate_on(&g, &a, &order, 16, None, &Pool::serial());
        assert!(out.contention.is_none());
        let t = simulate_traced(&g, &a, &order, 16);
        assert!(t.contention.is_none());
    }
}
