//! The original dense distributed simulator, kept verbatim as the
//! equivalence oracle for the flat SoA engine (the PR 4 pebble-engine
//! playbook): per-rank `Vec<bool>` residency bitmaps and per-vertex LRU
//! stamp vectors, O(P·V) state. Slow and memory-hungry at thousands of
//! ranks, but simple enough to trust by inspection. The contract —
//! enforced by `crates/check/tests/distsim_conservation.rs`, the
//! proptest suite, and `exp_perf_distsim` — is that on every instance
//! both engines can run, totals *and* the traced event stream are
//! identical.

use super::{DistEvent, DistRun, DistTrace};
use crate::assign::Assignment;
use mmio_cdag::{CdagView, VertexId};

/// The mutable machine state of one simulation.
struct Sim<'a, V: CdagView> {
    g: &'a V,
    m: usize,
    in_cache: Vec<Vec<bool>>,
    stamp: Vec<Vec<u64>>,
    cache_members: Vec<Vec<VertexId>>,
    clock: u64,
    sent: Vec<u64>,
    received: Vec<u64>,
    local_io: Vec<u64>,
    total_words: u64,
    events: Option<Vec<DistEvent>>,
}

impl<'a, V: CdagView> Sim<'a, V> {
    fn new(g: &'a V, p: usize, m: usize, traced: bool) -> Sim<'a, V> {
        let need = g.max_indegree() + 1;
        assert!(m >= need, "local cache {m} cannot hold operands ({need})");
        let n = g.n_vertices();
        Sim {
            g,
            m,
            in_cache: vec![vec![false; n]; p],
            stamp: vec![vec![0u64; n]; p],
            cache_members: vec![Vec::new(); p],
            clock: 0,
            sent: vec![0; p],
            received: vec![0; p],
            local_io: vec![0; p],
            total_words: 0,
            events: traced.then(Vec::new),
        }
    }

    fn push(&mut self, e: DistEvent) {
        if let Some(ev) = &mut self.events {
            ev.push(e);
        }
    }

    /// Touches `v` in `proc`'s cache. On a miss: evicts the LRU entry if
    /// full, accounts a network transfer when `from` names a different
    /// owner, inserts `v`, and charges a local I/O iff `charge`.
    ///
    /// Event order on a miss: `Evict?`, `Send`+`Recv` (remote only),
    /// `Insert` — i.e. the word is on the wire before it lands in cache.
    fn touch(&mut self, proc: usize, v: VertexId, charge: bool, from: Option<usize>) {
        self.clock += 1;
        if self.in_cache[proc][v.idx()] {
            self.stamp[proc][v.idx()] = self.clock;
            return; // hit
        }
        // Miss: evict LRU if full.
        if self.cache_members[proc].len() >= self.m {
            let (pos, _) = self.cache_members[proc]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| self.stamp[proc][w.idx()])
                .expect("cache nonempty");
            let victim = self.cache_members[proc].swap_remove(pos);
            self.in_cache[proc][victim.idx()] = false;
            self.push(DistEvent::Evict {
                proc: proc as u32,
                v: victim.idx() as u32,
            });
        }
        if let Some(owner) = from {
            if owner != proc {
                // The word came over the network.
                self.sent[owner] += 1;
                self.received[proc] += 1;
                self.total_words += 1;
                self.push(DistEvent::Send {
                    from: owner as u32,
                    to: proc as u32,
                    v: v.idx() as u32,
                });
                self.push(DistEvent::Recv {
                    to: proc as u32,
                    from: owner as u32,
                    v: v.idx() as u32,
                });
            }
        }
        self.in_cache[proc][v.idx()] = true;
        self.stamp[proc][v.idx()] = self.clock;
        self.cache_members[proc].push(v);
        if charge {
            self.local_io[proc] += 1;
        }
        self.push(DistEvent::Insert {
            proc: proc as u32,
            v: v.idx() as u32,
            charged: charge,
        });
    }

    fn run(&mut self, assignment: &Assignment, order: &[VertexId]) {
        let mut preds = Vec::with_capacity(self.g.max_indegree());
        for &v in order {
            let me = assignment.of(v) as usize;
            preds.clear();
            self.g.preds_into(v, &mut preds);
            for &op in &preds {
                let owner = assignment.of(op) as usize;
                self.touch(me, op, true, Some(owner));
            }
            if !preds.is_empty() {
                self.push(DistEvent::Exec {
                    proc: me as u32,
                    v: v.idx() as u32,
                });
            }
            // The result occupies a slot; computing into cache is free.
            self.touch(me, v, false, None);
        }
    }

    fn totals(&self) -> DistRun {
        DistRun {
            total_words: self.total_words,
            critical_path_words: self
                .sent
                .iter()
                .zip(&self.received)
                .map(|(&s, &r)| s + r)
                .max()
                .unwrap_or(0),
            max_local_io: self.local_io.iter().copied().max().unwrap_or(0),
            total_local_io: self.local_io.iter().sum(),
        }
    }
}

/// Simulates `order` under `assignment` with per-processor LRU caches of
/// size `m` — the dense oracle engine.
///
/// # Panics
/// Panics if `m` cannot hold any vertex's operand set.
pub fn simulate<V: CdagView>(
    g: &V,
    assignment: &Assignment,
    order: &[VertexId],
    m: usize,
) -> DistRun {
    let mut sim = Sim::new(g, assignment.p as usize, m, false);
    sim.run(assignment, order);
    sim.totals()
}

/// Like [`simulate`], but also records the machine-level event stream.
///
/// # Panics
/// Panics if `m` cannot hold any vertex's operand set.
pub fn simulate_traced<V: CdagView>(
    g: &V,
    assignment: &Assignment,
    order: &[VertexId],
    m: usize,
) -> DistTrace {
    let mut sim = Sim::new(g, assignment.p as usize, m, true);
    sim.run(assignment, order);
    DistTrace {
        p: assignment.p,
        m,
        claimed: sim.totals(),
        sent: std::mem::take(&mut sim.sent),
        received: std::mem::take(&mut sim.received),
        events: sim.events.take().expect("traced"),
        contention: None,
    }
}
