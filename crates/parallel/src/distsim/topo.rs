//! Interconnect topologies and the contended-time machine model.
//!
//! The paper's counts (total words, per-rank critical path) assume a
//! fully-connected machine where every word costs the same. Real
//! interconnects serialize traffic on *links*: a ring forwards a word
//! through every intermediate node, a 2D torus routes dimension-ordered
//! (X then Y, shortest direction, ties towards positive). This module
//! models that: each send is routed deterministically over directed
//! links, loads accumulate per (round, link), and a round's contended
//! time follows the classic α-β-γ cost model
//!
//! ```text
//! time(ρ) = γ·max_execs(ρ) + α·max_hops(ρ) + β·max(max_link(ρ), max_rank(ρ))
//! ```
//!
//! where the maxima range over ranks (execs; words sent+received — the
//! NIC bottleneck) and directed links (forwarded words — the wire
//! bottleneck). Rounds are the paper's global ranks (`0..=2r+1`): the
//! round of a send or exec is the CDAG rank of its vertex, so the
//! bucketing is derivable from the graph alone and the analyzer can
//! recount it without trusting the engine.
//!
//! With `β ≥ 1` (enforced by [`MachineModel::new`]) the contended
//! makespan dominates the uncontended critical path:
//! `Σ_ρ max_rank(ρ) ≥ max_r Σ_ρ (sent_r + recv_r)(ρ) = critical_path_words`.

use serde::{Serialize, Value};

/// A point-to-point interconnect shape over `p` ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of ranks shares a dedicated wire; the only bottleneck
    /// is the per-rank NIC (no per-link load is tracked — a pair link's
    /// load is always bounded by its endpoints' NIC loads).
    Full,
    /// A bidirectional ring: rank `i` links to `i±1 (mod p)`. Words take
    /// the shorter direction; ties go forward (towards `+1`).
    Ring,
    /// A `q×q` bidirectional torus (`p = q²`), rank `= x + q·y`. Routing
    /// is dimension-ordered: X first, then Y, each the shorter way
    /// around, ties towards positive.
    Torus2d {
        /// Side length; `p` must equal `q²`.
        q: u32,
    },
}

impl Serialize for Topology {
    fn to_value(&self) -> Value {
        match *self {
            Topology::Full => Value::Str("full".to_string()),
            Topology::Ring => Value::Str("ring".to_string()),
            Topology::Torus2d { q } => Value::Str(format!("torus{q}x{q}")),
        }
    }
}

impl Topology {
    /// Parses a CLI spelling (`full`, `ring`, `torus`) against a rank
    /// count, checking the torus side constraint.
    pub fn parse(s: &str, p: u32) -> Result<Topology, String> {
        let t = match s {
            "full" => Topology::Full,
            "ring" => Topology::Ring,
            "torus" => {
                let q = (p as f64).sqrt().round() as u32;
                if q == 0 || q.checked_mul(q) != Some(p) {
                    return Err(format!("--topo torus needs a square rank count, got {p}"));
                }
                Topology::Torus2d { q }
            }
            other => return Err(format!("unknown topology {other:?} (full|ring|torus)")),
        };
        t.validate(p)?;
        Ok(t)
    }

    /// Checks that the topology is consistent with `p` ranks.
    pub fn validate(&self, p: u32) -> Result<(), String> {
        match *self {
            Topology::Full | Topology::Ring => Ok(()),
            Topology::Torus2d { q } => {
                if q.checked_mul(q) == Some(p) && q > 0 {
                    Ok(())
                } else {
                    Err(format!("torus side {q} does not square to {p} ranks"))
                }
            }
        }
    }

    /// Number of directed links whose load is tracked. `Full` tracks
    /// none (see the variant docs).
    pub fn n_links(&self, p: u32) -> usize {
        match self {
            Topology::Full => 0,
            Topology::Ring => 2 * p as usize,
            Topology::Torus2d { .. } => 4 * p as usize,
        }
    }

    /// Hop count of the deterministic route `from → to` (1 on `Full`).
    pub fn hops(&self, p: u32, from: u32, to: u32) -> u64 {
        match *self {
            Topology::Full => 1,
            Topology::Ring => {
                let fwd = (to + p - from) % p;
                u64::from(fwd.min(p - fwd))
            }
            Topology::Torus2d { q } => {
                let dx = (to % q + q - from % q) % q;
                let dy = (to / q + q - from / q) % q;
                u64::from(dx.min(q - dx) + dy.min(q - dy))
            }
        }
    }

    /// Appends the directed link ids of the route `from → to` to `out`
    /// (cleared first). Empty on `Full` — no per-link tracking. Link
    /// ids: ring `2·node + {0:+1, 1:−1}`, torus `4·node + {0:x+, 1:x−,
    /// 2:y+, 3:y−}`, where `node` is the rank the word departs from.
    pub fn route_into(&self, p: u32, from: u32, to: u32, out: &mut Vec<u32>) {
        out.clear();
        match *self {
            Topology::Full => {}
            Topology::Ring => {
                let fwd = (to + p - from) % p;
                let mut cur = from;
                if fwd <= p - fwd {
                    for _ in 0..fwd {
                        out.push(2 * cur);
                        cur = (cur + 1) % p;
                    }
                } else {
                    for _ in 0..(p - fwd) {
                        out.push(2 * cur + 1);
                        cur = (cur + p - 1) % p;
                    }
                }
            }
            Topology::Torus2d { q } => {
                let (mut x, mut y) = (from % q, from / q);
                let (tx, ty) = (to % q, to / q);
                let fx = (tx + q - x) % q;
                if fx <= q - fx {
                    for _ in 0..fx {
                        out.push(4 * (x + q * y));
                        x = (x + 1) % q;
                    }
                } else {
                    for _ in 0..(q - fx) {
                        out.push(4 * (x + q * y) + 1);
                        x = (x + q - 1) % q;
                    }
                }
                let fy = (ty + q - y) % q;
                if fy <= q - fy {
                    for _ in 0..fy {
                        out.push(4 * (x + q * y) + 2);
                        y = (y + 1) % q;
                    }
                } else {
                    for _ in 0..(q - fy) {
                        out.push(4 * (x + q * y) + 3);
                        y = (y + q - 1) % q;
                    }
                }
            }
        }
    }
}

/// The α-β-γ cost parameters attached to a [`Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct MachineModel {
    /// Interconnect shape.
    pub topo: Topology,
    /// Per-round latency charge per hop of the longest route used (α).
    pub alpha: u64,
    /// Inverse bandwidth: time per word on the busiest link/NIC (β ≥ 1,
    /// so the makespan dominates the uncontended critical path).
    pub beta: u64,
    /// Compute time per executed vertex on the busiest rank (γ).
    pub gamma: u64,
}

impl MachineModel {
    /// Builds a model.
    ///
    /// # Panics
    /// Panics if `beta == 0`: the makespan ≥ critical-path-words contract
    /// needs at least one time unit per word.
    pub fn new(topo: Topology, alpha: u64, beta: u64, gamma: u64) -> MachineModel {
        assert!(beta >= 1, "inverse bandwidth must be >= 1, got {beta}");
        MachineModel {
            topo,
            alpha,
            beta,
            gamma,
        }
    }
}

/// Per-round contended load summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct RoundLoad {
    /// The CDAG rank this round executes (`0..=2r+1`).
    pub round: u32,
    /// Words sent in this round.
    pub words: u64,
    /// Words × hops: total link occupancy in this round (equals `words`
    /// on `Full`, where every route is one hop).
    pub hop_words: u64,
    /// Longest route (hops) of any send this round.
    pub max_hops: u64,
    /// Busiest directed link (forwarded words); 0 on `Full`.
    pub max_link_words: u64,
    /// Busiest rank (words sent + received).
    pub max_rank_words: u64,
    /// Busiest rank (vertices executed).
    pub max_execs: u64,
    /// `γ·max_execs + α·max_hops + β·max(max_link_words, max_rank_words)`.
    pub time: u64,
}

/// The full contended-time accounting of one run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ContentionReport {
    /// The model that produced the timing.
    pub machine: MachineModel,
    /// One entry per CDAG rank, in rank order (empty rounds included).
    pub rounds: Vec<RoundLoad>,
    /// Sum of the per-round times.
    pub makespan: u64,
}

/// Flat per-(round, rank) and per-(round, link) load accumulators. Each
/// simulation shard owns one; shards merge by elementwise sum (loads)
/// and max (hop maxima), so the totals are independent of sharding.
#[derive(Clone, Debug)]
pub(crate) struct ContAcc {
    p: usize,
    rounds: usize,
    n_links: usize,
    words: Vec<u64>,
    hop_words: Vec<u64>,
    max_hops: Vec<u64>,
    rank_words: Vec<u64>,
    execs: Vec<u64>,
    link_words: Vec<u64>,
    route: Vec<u32>,
}

impl ContAcc {
    pub(crate) fn new(machine: &MachineModel, p: usize, rounds: usize) -> ContAcc {
        let n_links = machine.topo.n_links(p as u32);
        ContAcc {
            p,
            rounds,
            n_links,
            words: vec![0; rounds],
            hop_words: vec![0; rounds],
            max_hops: vec![0; rounds],
            rank_words: vec![0; rounds * p],
            execs: vec![0; rounds * p],
            link_words: vec![0; rounds * n_links],
            route: Vec::new(),
        }
    }

    pub(crate) fn record_send(&mut self, machine: &MachineModel, round: usize, from: u32, to: u32) {
        let p = self.p as u32;
        self.words[round] += 1;
        self.rank_words[round * self.p + from as usize] += 1;
        self.rank_words[round * self.p + to as usize] += 1;
        let h = machine.topo.hops(p, from, to);
        self.hop_words[round] += h;
        self.max_hops[round] = self.max_hops[round].max(h);
        if self.n_links > 0 {
            let mut route = std::mem::take(&mut self.route);
            machine.topo.route_into(p, from, to, &mut route);
            for &link in &route {
                self.link_words[round * self.n_links + link as usize] += 1;
            }
            self.route = route;
        }
    }

    pub(crate) fn record_exec(&mut self, round: usize, proc: u32) {
        self.execs[round * self.p + proc as usize] += 1;
    }

    /// Elementwise merge of another shard's accumulator (same shape).
    pub(crate) fn merge(&mut self, other: &ContAcc) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a += b;
        }
        for (a, b) in self.hop_words.iter_mut().zip(&other.hop_words) {
            *a += b;
        }
        for (a, b) in self.max_hops.iter_mut().zip(&other.max_hops) {
            *a = (*a).max(*b);
        }
        for (a, b) in self.rank_words.iter_mut().zip(&other.rank_words) {
            *a += b;
        }
        for (a, b) in self.execs.iter_mut().zip(&other.execs) {
            *a += b;
        }
        for (a, b) in self.link_words.iter_mut().zip(&other.link_words) {
            *a += b;
        }
    }

    pub(crate) fn report(&self, machine: MachineModel) -> ContentionReport {
        let mut rounds = Vec::with_capacity(self.rounds);
        let mut makespan = 0u64;
        for r in 0..self.rounds {
            let max_rank_words = self.rank_words[r * self.p..(r + 1) * self.p]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            let max_execs = self.execs[r * self.p..(r + 1) * self.p]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            let max_link_words = self.link_words[r * self.n_links..(r + 1) * self.n_links]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            let load = RoundLoad {
                round: r as u32,
                words: self.words[r],
                hop_words: self.hop_words[r],
                max_hops: self.max_hops[r],
                max_link_words,
                max_rank_words,
                max_execs,
                time: round_time(
                    &machine,
                    max_execs,
                    self.max_hops[r],
                    max_link_words,
                    max_rank_words,
                ),
            };
            makespan += load.time;
            rounds.push(load);
        }
        ContentionReport {
            machine,
            rounds,
            makespan,
        }
    }
}

/// The α-β-γ round-time formula, shared with the analyzer's recount.
pub fn round_time(
    machine: &MachineModel,
    max_execs: u64,
    max_hops: u64,
    max_link_words: u64,
    max_rank_words: u64,
) -> u64 {
    machine.gamma * max_execs
        + machine.alpha * max_hops
        + machine.beta * max_link_words.max(max_rank_words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_take_the_short_way() {
        let t = Topology::Ring;
        let mut route = Vec::new();
        // 0 → 2 of 8: forward through links 0, 2.
        t.route_into(8, 0, 2, &mut route);
        assert_eq!(route, vec![0, 2]);
        assert_eq!(t.hops(8, 0, 2), 2);
        // 0 → 6 of 8: backward through 0−, 7−.
        t.route_into(8, 0, 6, &mut route);
        assert_eq!(route, vec![1, 15]);
        assert_eq!(t.hops(8, 0, 6), 2);
        // Antipodal tie goes forward.
        t.route_into(8, 0, 4, &mut route);
        assert_eq!(route.len(), 4);
        assert!(route.iter().all(|l| l % 2 == 0));
    }

    #[test]
    fn torus_routes_are_dimension_ordered() {
        let t = Topology::Torus2d { q: 4 };
        let mut route = Vec::new();
        // (0,0) → (2,1) of 4×4: x+,x+ then y+. Rank 0 → rank 6.
        t.route_into(16, 0, 6, &mut route);
        // Link ids: x+ from node 0, x+ from node 1, y+ from node 2.
        assert_eq!(route, vec![0, 4, 4 * 2 + 2]);
        assert_eq!(t.hops(16, 0, 6), 3);
    }

    #[test]
    fn route_length_matches_hops_everywhere() {
        let mut route = Vec::new();
        for (topo, p) in [
            (Topology::Ring, 7u32),
            (Topology::Ring, 8),
            (Topology::Torus2d { q: 3 }, 9),
            (Topology::Torus2d { q: 4 }, 16),
        ] {
            for from in 0..p {
                for to in 0..p {
                    if from == to {
                        continue;
                    }
                    topo.route_into(p, from, to, &mut route);
                    assert_eq!(
                        route.len() as u64,
                        topo.hops(p, from, to),
                        "{topo:?} {from}->{to}"
                    );
                }
            }
        }
    }

    #[test]
    fn parse_checks_square() {
        assert!(Topology::parse("torus", 16).is_ok());
        assert!(Topology::parse("torus", 12).is_err());
        assert!(Topology::parse("ring", 5).is_ok());
        assert!(Topology::parse("hypercube", 8).is_err());
    }

    #[test]
    #[should_panic(expected = "inverse bandwidth")]
    fn zero_beta_is_rejected() {
        MachineModel::new(Topology::Full, 0, 0, 0);
    }
}
