//! The flat structure-of-arrays distributed simulator.
//!
//! Why it is exactly equivalent to [`super::reference`]:
//!
//! - **Per-rank decomposability.** A rank's cache is touched only by the
//!   steps it owns (every `touch` in the reference targets the step's
//!   owner), and its counters are only incremented by its own touches
//!   plus the (additive) `sent` counter charged by other ranks' misses.
//!   So stepping each rank through its own sub-sequence of the global
//!   order — in any rank order, on any thread — reproduces the exact
//!   per-rank state trajectory of the interleaved reference run.
//! - **LRU without stamps.** The reference evicts the minimum-stamp
//!   cache member, and stamps come from a strictly increasing global
//!   clock, so within one rank's cache stamps are unique and their
//!   order is exactly recency order. An intrusive doubly-linked LRU
//!   list (move-to-front on hit, evict tail) therefore selects the
//!   identical victim every time — no stamps, no O(M) scan.
//! - **Event stream reconstruction.** Every event of a step (operand
//!   evicts/sends/recvs/inserts, the exec, the result insert) is
//!   emitted by the step's owner, contiguously. Each shard records its
//!   ranks' events plus a per-step event count; a serial merge walks
//!   the global order with one cursor per rank and splices each step's
//!   events back — byte-identical to the reference's interleaved
//!   stream, independent of sharding and thread count.
//!
//! State is O(threads·min(M, work) + V): shards process their ranks
//! sequentially, reusing one slot arena (vertex/prev/next/chain arrays,
//! sized by the shard's largest per-rank touch bound, never more than
//! M) and one chained-hash residency table (cleared per rank).

use super::topo::{ContAcc, ContentionReport, MachineModel};
use super::{DistEvent, DistOutcome, DistRun, DistTrace};
use crate::assign::Assignment;
use crate::pool::Pool;
use mmio_cdag::{CdagView, VertexId};

const NONE: u32 = u32::MAX;

/// One rank's cache: a fixed slot arena threaded by an intrusive LRU
/// list, with a chained hash table for O(1) residency lookup. Reused
/// across ranks within a shard via [`RankCache::reset`].
struct RankCache {
    /// Semantic capacity (the model's M): evict when `len` reaches it.
    limit: usize,
    /// Vertex held by each slot.
    vertex: Vec<u32>,
    /// LRU list: towards most-recent.
    prev: Vec<u32>,
    /// LRU list: towards least-recent.
    next: Vec<u32>,
    /// Hash chain successor per slot.
    chain: Vec<u32>,
    /// Hash bucket heads (power-of-two length).
    buckets: Vec<u32>,
    /// `32 - log2(buckets.len())`, for Fibonacci bucket hashing.
    shift: u32,
    head: u32,
    tail: u32,
    len: u32,
}

impl RankCache {
    /// `limit` is the model's M; `slots` bounds how many can ever be
    /// resident at once (≤ limit, and ≤ the rank's distinct touches).
    fn new(limit: usize, slots: usize) -> RankCache {
        let slots = slots.max(1);
        let nbuckets = (2 * slots).next_power_of_two();
        RankCache {
            limit,
            vertex: vec![0; slots],
            prev: vec![NONE; slots],
            next: vec![NONE; slots],
            chain: vec![NONE; slots],
            buckets: vec![NONE; nbuckets],
            shift: 32 - nbuckets.trailing_zeros(),
            head: NONE,
            tail: NONE,
            len: 0,
        }
    }

    fn reset(&mut self) {
        self.buckets.fill(NONE);
        self.head = NONE;
        self.tail = NONE;
        self.len = 0;
    }

    #[inline]
    fn bucket(&self, v: u32) -> usize {
        (v.wrapping_mul(0x9E37_79B9) >> self.shift) as usize
    }

    #[inline]
    fn lookup(&self, v: u32) -> Option<u32> {
        let mut s = self.buckets[self.bucket(v)];
        while s != NONE {
            if self.vertex[s as usize] == v {
                return Some(s);
            }
            s = self.chain[s as usize];
        }
        None
    }

    /// Unlinks `slot` from the LRU list (it must be linked).
    fn detach(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NONE {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NONE {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    fn push_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NONE;
        self.next[slot as usize] = self.head;
        if self.head != NONE {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    fn touch_hit(&mut self, slot: u32) {
        if self.head != slot {
            self.detach(slot);
            self.push_front(slot);
        }
    }

    /// Frees the LRU tail slot and returns its (slot, vertex).
    fn evict_tail(&mut self) -> (u32, u32) {
        let slot = self.tail;
        debug_assert!(slot != NONE);
        self.detach(slot);
        let v = self.vertex[slot as usize];
        // Unlink from its hash chain.
        let b = self.bucket(v);
        let mut s = self.buckets[b];
        if s == slot {
            self.buckets[b] = self.chain[slot as usize];
        } else {
            while self.chain[s as usize] != slot {
                s = self.chain[s as usize];
            }
            self.chain[s as usize] = self.chain[slot as usize];
        }
        self.len -= 1;
        (slot, v)
    }

    /// Inserts `v` into `slot` (slot is free) as most-recent.
    fn insert(&mut self, slot: u32, v: u32) {
        self.vertex[slot as usize] = v;
        let b = self.bucket(v);
        self.chain[slot as usize] = self.buckets[b];
        self.buckets[b] = slot;
        self.push_front(slot);
        self.len += 1;
    }
}

/// What one shard (a contiguous rank range) reports back.
struct ShardOut {
    /// Words sent, full width `p` — a rank's sends are charged by the
    /// *receiving* rank's shard, so the owner may be outside the shard.
    sent: Vec<u64>,
    /// Words received, per shard-local rank.
    received: Vec<u64>,
    /// Local I/O, per shard-local rank.
    local_io: Vec<u64>,
    total_words: u64,
    /// Contended load accumulators, when a machine model is attached.
    cont: Option<ContAcc>,
    /// Traced mode: the shard's events (ranks ascending, steps in
    /// order) plus one event count per owned step, same layout.
    events: Option<(Vec<DistEvent>, Vec<u32>)>,
}

/// Steps grouped by rank: `steps[start[r]..start[r] + count[r]]` are the
/// vertices rank `r` owns, preserving global order.
struct RankSteps {
    start: Vec<usize>,
    count: Vec<u32>,
    steps: Vec<u32>,
}

fn bucket_by_rank(a: &Assignment, order: &[VertexId]) -> RankSteps {
    let p = a.p as usize;
    let mut count = vec![0u32; p];
    for &v in order {
        count[a.of(v) as usize] += 1;
    }
    let mut start = Vec::with_capacity(p + 1);
    let mut acc = 0usize;
    for &c in &count {
        start.push(acc);
        acc += c as usize;
    }
    start.push(acc);
    let mut cursor: Vec<usize> = start[..p].to_vec();
    let mut steps = vec![0u32; order.len()];
    for &v in order {
        let r = a.of(v) as usize;
        steps[cursor[r]] = v.0;
        cursor[r] += 1;
    }
    RankSteps {
        start,
        count,
        steps,
    }
}

/// Number of shards: a fixed function of `p` only, so the work split —
/// and hence every merged artifact — is independent of thread count.
fn shard_count(p: usize) -> usize {
    p.clamp(1, 64)
}

#[allow(clippy::too_many_arguments)]
fn run_shard<V: CdagView>(
    g: &V,
    a: &Assignment,
    rs: &RankSteps,
    lo: usize,
    hi: usize,
    m: usize,
    machine: Option<&MachineModel>,
    rounds: usize,
    traced: bool,
) -> ShardOut {
    let p = a.p as usize;
    let maxdeg = g.max_indegree();
    let mut out = ShardOut {
        sent: vec![0; p],
        received: vec![0; hi - lo],
        local_io: vec![0; hi - lo],
        total_words: 0,
        cont: machine.map(|mm| ContAcc::new(mm, p, rounds)),
        events: traced.then(|| (Vec::new(), Vec::new())),
    };
    // Residency can never exceed the rank's distinct touches, bounded by
    // steps·(maxdeg+1); sizing the arena by the shard's largest rank
    // keeps scratch proportional to actual work even when M is huge.
    let max_steps = (lo..hi).map(|r| rs.count[r] as usize).max().unwrap_or(0);
    let slots = m.min(max_steps.saturating_mul(maxdeg + 1));
    let mut cache = RankCache::new(m, slots);
    let mut preds: Vec<VertexId> = Vec::with_capacity(maxdeg);

    for r in lo..hi {
        let steps = &rs.steps[rs.start[r]..rs.start[r] + rs.count[r] as usize];
        if steps.is_empty() {
            continue;
        }
        cache.reset();
        let me = r as u32;
        for &vu in steps {
            let v = VertexId(vu);
            let events_before = out.events.as_ref().map_or(0, |(ev, _)| ev.len());
            preds.clear();
            g.preds_into(v, &mut preds);
            for &op in &preds {
                let owner = a.of(op);
                touch(
                    g,
                    &mut cache,
                    &mut out,
                    machine,
                    lo,
                    me,
                    op.0,
                    true,
                    Some(owner),
                );
            }
            if !preds.is_empty() {
                if let Some((ev, _)) = &mut out.events {
                    ev.push(DistEvent::Exec { proc: me, v: vu });
                }
                if let Some(c) = &mut out.cont {
                    c.record_exec(round_of(g, vu), me);
                }
            }
            // The result occupies a slot; computing into cache is free.
            touch(g, &mut cache, &mut out, machine, lo, me, vu, false, None);
            if let Some((ev, counts)) = &mut out.events {
                counts.push((ev.len() - events_before) as u32);
            }
        }
    }
    out
}

#[inline]
fn round_of<V: CdagView>(g: &V, v: u32) -> usize {
    g.rank_of(VertexId(v)).expect("vertex has a rank") as usize
}

/// The SoA counterpart of the reference engine's `touch`, operating on
/// rank `me`'s (shard-local) cache. Same event order on a miss:
/// `Evict?`, `Send`+`Recv` (remote only), `Insert`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn touch<V: CdagView>(
    g: &V,
    cache: &mut RankCache,
    out: &mut ShardOut,
    machine: Option<&MachineModel>,
    lo: usize,
    me: u32,
    v: u32,
    charge: bool,
    from: Option<u32>,
) {
    if let Some(slot) = cache.lookup(v) {
        cache.touch_hit(slot);
        return; // hit
    }
    // Miss: evict LRU if full.
    let slot = if cache.len as usize >= cache.limit {
        let (slot, victim) = cache.evict_tail();
        if let Some((ev, _)) = &mut out.events {
            ev.push(DistEvent::Evict {
                proc: me,
                v: victim,
            });
        }
        slot
    } else {
        cache.len // bump allocation: slots 0..len are live
    };
    if let Some(owner) = from {
        if owner != me {
            // The word came over the network.
            out.sent[owner as usize] += 1;
            out.received[me as usize - lo] += 1;
            out.total_words += 1;
            if let Some((ev, _)) = &mut out.events {
                ev.push(DistEvent::Send {
                    from: owner,
                    to: me,
                    v,
                });
                ev.push(DistEvent::Recv {
                    to: me,
                    from: owner,
                    v,
                });
            }
            if let (Some(c), Some(mm)) = (&mut out.cont, machine) {
                c.record_send(mm, round_of(g, v), owner, me);
            }
        }
    }
    cache.insert(slot, v);
    if charge {
        out.local_io[me as usize - lo] += 1;
    }
    if let Some((ev, _)) = &mut out.events {
        ev.push(DistEvent::Insert {
            proc: me,
            v,
            charged: charge,
        });
    }
}

/// Runs the SoA engine and merges the shards. The single entry point
/// behind every public `simulate*` wrapper in [`super`].
pub(super) fn run_soa<V: CdagView + Sync>(
    g: &V,
    a: &Assignment,
    order: &[VertexId],
    m: usize,
    machine: Option<MachineModel>,
    traced: bool,
    pool: &Pool,
) -> (DistOutcome, Option<DistTrace>) {
    let need = g.max_indegree() + 1;
    assert!(m >= need, "local cache {m} cannot hold operands ({need})");
    if let Some(mm) = &machine {
        mm.topo.validate(a.p).expect("topology fits rank count");
    }
    let p = a.p as usize;
    let rounds = 2 * g.r() as usize + 2;
    let rs = bucket_by_rank(a, order);
    let shards = shard_count(p);
    let bounds: Vec<(usize, usize)> = (0..shards)
        .map(|s| (p * s / shards, p * (s + 1) / shards))
        .collect();

    let outs: Vec<ShardOut> = pool.map(shards, |s| {
        let (lo, hi) = bounds[s];
        run_shard(g, a, &rs, lo, hi, m, machine.as_ref(), rounds, traced)
    });

    // Merge counters (index-ordered, shard-count-independent: sums and
    // maxima over disjoint or additive contributions).
    let mut sent = vec![0u64; p];
    let mut received = vec![0u64; p];
    let mut local_io = vec![0u64; p];
    let mut total_words = 0u64;
    let mut cont = machine.as_ref().map(|mm| ContAcc::new(mm, p, rounds));
    for (s, o) in outs.iter().enumerate() {
        let (lo, hi) = bounds[s];
        for (dst, &src) in sent.iter_mut().zip(&o.sent) {
            *dst += src;
        }
        received[lo..hi].copy_from_slice(&o.received);
        local_io[lo..hi].copy_from_slice(&o.local_io);
        total_words += o.total_words;
        if let (Some(acc), Some(oc)) = (&mut cont, &o.cont) {
            acc.merge(oc);
        }
    }
    let run = DistRun {
        total_words,
        critical_path_words: sent
            .iter()
            .zip(&received)
            .map(|(&s, &r)| s + r)
            .max()
            .unwrap_or(0),
        max_local_io: local_io.iter().copied().max().unwrap_or(0),
        total_local_io: local_io.iter().sum(),
    };
    let contention: Option<ContentionReport> = cont.zip(machine).map(|(acc, mm)| acc.report(mm));
    let outcome = DistOutcome {
        run: run.clone(),
        contention: contention.clone(),
    };

    if !traced {
        return (outcome, None);
    }

    // Splice the global event stream back together: one cursor per rank
    // into its shard's (events, per-step counts).
    struct Cursor {
        shard: usize,
        cnt: usize,
        ev: usize,
    }
    let mut cursors: Vec<Cursor> = (0..p)
        .map(|_| Cursor {
            shard: 0,
            cnt: 0,
            ev: 0,
        })
        .collect();
    let mut total_events = 0usize;
    for (s, o) in outs.iter().enumerate() {
        let (lo, hi) = bounds[s];
        let (ev, counts) = o.events.as_ref().expect("traced shard");
        total_events += ev.len();
        let mut cnt_off = 0usize;
        let mut ev_off = 0usize;
        for (r, cursor) in cursors.iter_mut().enumerate().take(hi).skip(lo) {
            *cursor = Cursor {
                shard: s,
                cnt: cnt_off,
                ev: ev_off,
            };
            let c = rs.count[r] as usize;
            ev_off += counts[cnt_off..cnt_off + c]
                .iter()
                .map(|&k| k as usize)
                .sum::<usize>();
            cnt_off += c;
        }
    }
    let mut events = Vec::with_capacity(total_events);
    for &v in order {
        let cur = &mut cursors[a.of(v) as usize];
        let (ev, counts) = outs[cur.shard].events.as_ref().expect("traced shard");
        let k = counts[cur.cnt] as usize;
        events.extend_from_slice(&ev[cur.ev..cur.ev + k]);
        cur.cnt += 1;
        cur.ev += k;
    }
    let trace = DistTrace {
        p: a.p,
        m,
        claimed: run,
        sent,
        received,
        events,
        contention,
    };
    (outcome, Some(trace))
}
