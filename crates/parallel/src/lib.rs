//! # mmio-parallel
//!
//! The paper's parallel machine model, executable: `P` processors, each
//! with an independent local memory of size `M`, communicating single
//! values. The *bandwidth cost* of a run is the number of words moved
//! along the critical path — bounded below by Theorem 1 as
//! `Ω((n/√M)^{ω₀}·M/P)`, and — independently of `M`, under per-rank load
//! balance — as `Ω(n²/P^{2/ω₀})`.
//!
//! Three levels of fidelity:
//!
//! - [`assign`] + [`bandwidth`]: distribute the CDAG's vertices over
//!   processors and count the words every edge crossing a processor
//!   boundary moves; critical-path cost is the maximum per-processor
//!   traffic. Load balance per rank (the hypothesis of the
//!   memory-independent bound) is checked, not assumed.
//! - [`caps`]: a step-level simulator of the Communication-Avoiding
//!   Parallel Strassen scheme of Ballard–Demmel–Holtz–Lipshitz–Schwartz
//!   ([3]): BFS steps split the `b` subproblems over `P/b` processor
//!   groups, DFS steps recurse with all processors; the simulator counts
//!   the words each step redistributes and shows the bounds are attained.
//! - [`executor`]: a real multi-threaded executor (crossbeam channels,
//!   one OS thread per simulated processor) that multiplies actual
//!   matrices with one BFS level of a Strassen-like algorithm and counts
//!   every word that crosses a channel.
//!
//! ```
//! use mmio_algos::strassen::strassen;
//! use mmio_parallel::caps::simulate;
//!
//! // One BFS step at P = 7 with ample memory.
//! let run = simulate(&strassen(), 64, 7, 1 << 20);
//! assert!(run.steps.starts_with('B'));
//! assert!(run.words_per_proc > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod assign;
pub mod bandwidth;
pub mod caps;
pub mod distsim;
pub mod events;
pub mod executor;
pub mod pool;

pub use bandwidth::BandwidthReport;
pub use pool::{JoinError, Pool};
