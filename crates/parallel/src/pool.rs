//! A work-stealing thread pool for deterministic fan-out of indexed work.
//!
//! The workspace's verification workloads — per-copy routing transport,
//! hit-count verification, segment audits, registry-wide static analysis —
//! are all *indexed* families of independent tasks `f(0), …, f(n-1)`. This
//! pool runs them on scoped worker threads: the index space is split into
//! per-worker ranges, each worker drains its own range through an atomic
//! cursor, and a worker whose range is exhausted *steals* indices from the
//! most-loaded remaining range. Results are merged back **in index order**,
//! so the output of [`Pool::map`] is byte-for-byte identical to the serial
//! loop regardless of thread count, interleaving, or which worker ran which
//! index — the determinism contract the golden tests and the CI
//! `bench-smoke` job enforce.
//!
//! The scheduling *decisions* — range splitting ([`split_ranges`]), victim
//! selection ([`pick_victim`]), chunk arithmetic ([`chunk_count`],
//! [`chunk_bounds`]) — are exported as pure functions so that
//! `mmio-check`'s bounded model checker replays the same algorithm under
//! exhaustive schedules instead of a paraphrase of it, and every
//! synchronization point emits a [`crate::events`] sync event (compiled
//! out unless the `trace` feature is on).
//!
//! Thread count resolution (used by the `mmio` CLI's `--threads` and every
//! experiment binary): explicit argument > `MMIO_THREADS` env var >
//! `std::thread::available_parallelism()`. An `MMIO_THREADS` value that is
//! not a positive integer is rejected with a one-line stderr warning and
//! the available-parallelism fallback is used instead.

use crate::events::{self, SyncEvent};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A task panicked inside [`Pool::try_map`] / [`Pool::try_map_chunks`]:
/// the lowest panicking index (deterministic at any thread count and
/// interleaving) plus its panic message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinError {
    /// The lowest index (or chunk index) whose task panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JoinError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-width thread pool. `threads == 1` runs every task inline on the
/// caller's thread with no synchronization at all, so the serial path is
/// not merely "parallel with one worker" but literally the sequential loop.
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
}

/// One worker's claimable range of the index space: `[cursor, end)`.
struct Range {
    cursor: AtomicUsize,
    end: usize,
}

/// The contiguous near-equal split of `0..n` into `workers` ranges used by
/// [`Pool::map`]: range `w` is `[n·w/workers, n·(w+1)/workers)`.
pub fn split_ranges(n: usize, workers: usize) -> Vec<(usize, usize)> {
    (0..workers)
        .map(|w| (n * w / workers, n * (w + 1) / workers))
        .collect()
}

/// Victim-selection rule of the steal loop: the index of the range with
/// the most work remaining, ties broken towards the *last* such range
/// (`Iterator::max_by_key` semantics, kept bit-compatible with the
/// pre-refactor code). `None` only on an empty iterator.
pub fn pick_victim<I: IntoIterator<Item = usize>>(remaining: I) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, rem) in remaining.into_iter().enumerate() {
        match best {
            Some((_, b)) if rem < b => {}
            _ => best = Some((i, rem)),
        }
    }
    best.map(|(i, _)| i)
}

/// Number of chunks [`Pool::map_chunks`] splits `n` items into at a given
/// thread count: `threads · chunks_per_worker`, clamped to `[1, n]`.
pub fn chunk_count(threads: usize, chunks_per_worker: usize, n: usize) -> usize {
    (threads * chunks_per_worker.max(1)).min(n).max(1)
}

/// The half-open item range of chunk `c` out of `chunks` over `n` items.
pub fn chunk_bounds(n: usize, chunks: usize, c: usize) -> std::ops::Range<usize> {
    n * c / chunks..n * (c + 1) / chunks
}

/// Resolution of a thread-count request against an (already read)
/// environment value: the chosen count plus an optional warning line for
/// an `MMIO_THREADS` value that had to be ignored. Pure so it is testable
/// without touching process environment.
fn resolve_threads(
    explicit: Option<usize>,
    env: Option<&str>,
    fallback: usize,
) -> (usize, Option<String>) {
    if let Some(t) = explicit {
        return (t, None);
    }
    match env {
        None => (fallback, None),
        Some(v) => match v.parse::<usize>() {
            Ok(t) if t >= 1 => (t, None),
            _ => (
                fallback,
                Some(format!(
                    "warning: MMIO_THREADS={v:?} is not a positive integer; \
                     ignoring it and using {fallback} thread(s) (available parallelism)"
                )),
            ),
        },
    }
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The strictly sequential pool.
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// Resolves the thread count from the environment: `explicit` if given,
    /// else the `MMIO_THREADS` env var, else
    /// `std::thread::available_parallelism()`. A set-but-invalid
    /// `MMIO_THREADS` (unparsable, or zero) is ignored with a one-line
    /// stderr warning naming the bad value and the fallback chosen.
    pub fn from_env(explicit: Option<usize>) -> Pool {
        let fallback = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let env = std::env::var("MMIO_THREADS").ok();
        let (threads, warning) = resolve_threads(explicit, env.as_deref(), fallback);
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        Pool::new(threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every index in `0..n` and returns the results in
    /// index order. Deterministic: the returned vector never depends on
    /// scheduling (only on `f` itself being a function of its index).
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }

        // Split 0..n into `workers` near-equal contiguous ranges.
        let ranges: Vec<Range> = split_ranges(n, workers)
            .into_iter()
            .map(|(start, end)| Range {
                cursor: AtomicUsize::new(start),
                end,
            })
            .collect();
        let ranges = &ranges;
        let f = &f;

        let mut tagged: Vec<(usize, T)> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move |_| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        // Drain the worker's own range, then steal.
                        drain(&ranges[w], w as u32, f, &mut out);
                        loop {
                            // Steal from the victim with the most work left.
                            let victim =
                                pick_victim(ranges.iter().map(|r| {
                                    r.end.saturating_sub(r.cursor.load(Ordering::Relaxed))
                                }))
                                .expect("at least one range");
                            events::emit(SyncEvent::StealSelect {
                                victim: victim as u32,
                            });
                            if !drain_one(&ranges[victim], victim as u32, f, &mut out) {
                                break;
                            }
                            drain(&ranges[victim], victim as u32, f, &mut out);
                        }
                        events::emit(SyncEvent::WorkerDone { worker: w as u32 });
                        out
                    })
                })
                .collect();
            let mut all: Vec<(usize, T)> = Vec::with_capacity(n);
            for (w, h) in handles.into_iter().enumerate() {
                all.extend(h.join().expect("pool worker panicked"));
                events::emit(SyncEvent::WorkerJoin { worker: w as u32 });
            }
            all
        })
        .expect("pool scope failed");

        debug_assert_eq!(tagged.len(), n, "every index claimed exactly once");
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, v)| v).collect()
    }

    /// Splits `n` items into at most `chunks_per_worker · threads` contiguous
    /// chunks (each a `start..end` range), maps every chunk through `f` on
    /// the pool, and folds the chunk results **in chunk order** into `init`.
    ///
    /// This is the sharded-counter pattern: each chunk accumulates into its
    /// own counter, and because the fold visits chunks in a fixed order the
    /// merged result is independent of scheduling. With `threads == 1` the
    /// whole computation degenerates to one chunk folded serially.
    pub fn map_chunks<T, F, M>(&self, n: usize, chunks_per_worker: usize, f: F, mut merge: M) -> T
    where
        T: Send + Default,
        F: Fn(std::ops::Range<usize>) -> T + Sync,
        M: FnMut(T, T) -> T,
    {
        if n == 0 {
            return T::default();
        }
        let chunks = chunk_count(self.threads, chunks_per_worker, n);
        let results = self.map(chunks, |c| f(chunk_bounds(n, chunks, c)));
        let mut acc = T::default();
        for (c, r) in results.into_iter().enumerate() {
            events::emit(SyncEvent::ChunkMerge { chunk: c as u64 });
            acc = merge(acc, r);
        }
        acc
    }

    /// [`Pool::map`] with panic isolation: every task runs under
    /// `catch_unwind`, so a panicking task becomes a typed [`JoinError`]
    /// instead of tearing down the caller — and, critically, instead of
    /// wedging the steal loop: the remaining indices still run to
    /// completion (their results are discarded on error), every worker
    /// joins, and the pool is immediately reusable.
    ///
    /// On multiple panics the error reports the **lowest** panicking
    /// index, so the outcome is deterministic at any thread count — the
    /// same contract [`Pool::map`] gives for values, extended to failures.
    pub fn try_map<T, F>(&self, n: usize, f: F) -> Result<Vec<T>, JoinError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let raw = self.map(n, |i| {
            catch_unwind(AssertUnwindSafe(|| f(i))).map_err(panic_message)
        });
        let mut out = Vec::with_capacity(n);
        for (index, r) in raw.into_iter().enumerate() {
            match r {
                Ok(v) => out.push(v),
                Err(message) => return Err(JoinError { index, message }),
            }
        }
        Ok(out)
    }

    /// [`Pool::map_chunks`] with panic isolation: a panicking chunk
    /// becomes a typed [`JoinError`] carrying the lowest panicking *chunk*
    /// index; the merge fold never runs on a partial result set.
    pub fn try_map_chunks<T, F, M>(
        &self,
        n: usize,
        chunks_per_worker: usize,
        f: F,
        mut merge: M,
    ) -> Result<T, JoinError>
    where
        T: Send + Default,
        F: Fn(std::ops::Range<usize>) -> T + Sync,
        M: FnMut(T, T) -> T,
    {
        if n == 0 {
            return Ok(T::default());
        }
        let chunks = chunk_count(self.threads, chunks_per_worker, n);
        let results = self.try_map(chunks, |c| f(chunk_bounds(n, chunks, c)))?;
        let mut acc = T::default();
        for (c, r) in results.into_iter().enumerate() {
            events::emit(SyncEvent::ChunkMerge { chunk: c as u64 });
            acc = merge(acc, r);
        }
        Ok(acc)
    }
}

/// Claims and runs every remaining index of `range`.
fn drain<T, F: Fn(usize) -> T>(range: &Range, ri: u32, f: &F, out: &mut Vec<(usize, T)>) {
    while drain_one(range, ri, f, out) {}
}

/// Claims one index of `range` if any remain; returns whether it did.
fn drain_one<T, F: Fn(usize) -> T>(
    range: &Range,
    ri: u32,
    f: &F,
    out: &mut Vec<(usize, T)>,
) -> bool {
    let i = range.cursor.fetch_add(1, Ordering::Relaxed);
    let hit = i < range.end;
    events::emit(SyncEvent::CursorFetchAdd {
        range: ri,
        claimed: i as u64,
        hit,
    });
    if hit {
        out.push((i, f(i)));
        true
    } else {
        // Undo the overshoot so `end - cursor` stays a sane "work left"
        // estimate for victim selection (saturating, so benign if several
        // workers overshoot concurrently).
        range.cursor.fetch_sub(1, Ordering::Relaxed);
        events::emit(SyncEvent::CursorUndo { range: ri });
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_is_identity_ordered() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_empty_and_tiny() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, |i| i + 7), vec![7]);
        assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        let pool = Pool::new(8);
        pool.map(1000, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn stealing_covers_skewed_work() {
        // Front-loaded work: the first quarter of the indices are slow, so
        // workers that finish their own range must steal to help.
        let pool = Pool::new(4);
        let out = pool.map(64, |i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_merges_in_order() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let total = pool.map_chunks(
                1000,
                4,
                |range| range.map(|i| i as u64).sum::<u64>(),
                |a: u64, b: u64| a + b,
            );
            assert_eq!(total, 999 * 1000 / 2);
        }
    }

    #[test]
    fn map_chunks_concatenation_is_deterministic() {
        // A non-commutative merge (concatenation) still gives the serial
        // answer because chunks fold in fixed order.
        let serial: Vec<usize> = (0..257).collect();
        for threads in [2, 5, 8] {
            let pool = Pool::new(threads);
            let out = pool.map_chunks(
                257,
                3,
                |range| range.collect::<Vec<usize>>(),
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn from_env_explicit_wins() {
        assert_eq!(Pool::from_env(Some(3)).threads(), 3);
        assert!(Pool::from_env(None).threads() >= 1);
    }

    #[test]
    fn zero_threads_clamped() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn thread_resolution_precedence_and_warnings() {
        // explicit > env > fallback.
        assert_eq!(resolve_threads(Some(3), Some("8"), 4), (3, None));
        assert_eq!(resolve_threads(None, Some("8"), 4), (8, None));
        assert_eq!(resolve_threads(None, None, 4), (4, None));
        // Invalid env values warn, naming the bad value and the fallback.
        for bad in ["0", "abc", "-2", "1.5", ""] {
            let (threads, warning) = resolve_threads(None, Some(bad), 4);
            assert_eq!(threads, 4, "MMIO_THREADS={bad:?}");
            let w = warning.expect("invalid value must warn");
            assert!(w.contains(&format!("{bad:?}")), "{w}");
            assert!(w.contains('4'), "{w}");
        }
        // Explicit silences even an invalid env var.
        assert_eq!(resolve_threads(Some(2), Some("junk"), 4), (2, None));
    }

    #[test]
    fn split_ranges_partitions_exactly() {
        for n in [1usize, 2, 5, 7, 100] {
            for workers in 1..=n.min(9) {
                let ranges = split_ranges(n, workers);
                assert_eq!(ranges.len(), workers);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges[workers - 1].1, n);
                for w in 1..workers {
                    assert_eq!(ranges[w - 1].1, ranges[w].0, "contiguous");
                }
                assert!(ranges.iter().all(|&(s, e)| s < e), "nonempty when w<=n");
            }
        }
    }

    #[test]
    fn pick_victim_matches_max_by_key() {
        let cases: &[&[usize]] = &[&[0], &[3, 1], &[1, 3], &[2, 2], &[0, 5, 5, 1]];
        for rem in cases {
            let expect = rem
                .iter()
                .enumerate()
                .max_by_key(|&(_, r)| *r)
                .map(|(i, _)| i);
            assert_eq!(pick_victim(rem.iter().copied()), expect, "{rem:?}");
        }
        assert_eq!(pick_victim(std::iter::empty()), None);
    }

    #[test]
    fn chunk_arithmetic_covers_items() {
        for (threads, cpw, n) in [(2, 2, 8), (2, 2, 3), (1, 4, 100), (8, 4, 5)] {
            let chunks = chunk_count(threads, cpw, n);
            assert!(chunks >= 1 && chunks <= n.max(1));
            let mut all = Vec::new();
            for c in 0..chunks {
                all.extend(chunk_bounds(n, chunks, c));
            }
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_map_succeeds_like_map() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            assert_eq!(
                pool.try_map(50, |i| i * 2),
                Ok((0..50).map(|i| i * 2).collect::<Vec<_>>()),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn try_map_panic_is_typed_lowest_index_and_pool_survives() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let err = pool
                .try_map(100, |i| {
                    if i == 17 || i == 63 {
                        panic!("boom at {i}");
                    }
                    i
                })
                .unwrap_err();
            // Lowest panicking index wins, at every thread count.
            assert_eq!(err.index, 17, "threads={threads}");
            assert_eq!(err.message, "boom at 17");
            assert!(err.to_string().contains("task 17 panicked"));
            // The pool is immediately reusable after a failed run.
            assert_eq!(pool.try_map(10, |i| i), Ok((0..10).collect()));
        }
    }

    #[test]
    fn try_map_chunks_panic_is_typed_and_merge_never_partial() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let mut merges = 0usize;
            let err = pool
                .try_map_chunks(
                    100,
                    2,
                    |range| {
                        if range.contains(&50) {
                            panic!("chunk containing 50");
                        }
                        range.len()
                    },
                    |a: usize, b| {
                        merges += 1;
                        a + b
                    },
                )
                .unwrap_err();
            assert_eq!(err.message, "chunk containing 50", "threads={threads}");
            assert_eq!(merges, 0, "merge must not fold a partial result set");
            assert_eq!(
                pool.try_map_chunks(100, 2, |r| r.len(), |a: usize, b| a + b),
                Ok(100)
            );
        }
    }

    #[test]
    fn map_panic_propagates_promptly_and_never_deadlocks() {
        // The regression this pins: a panicking task inside plain `map`
        // must tear down the call (the documented behavior), not wedge a
        // worker or deadlock the join. Run it off-thread with a timeout so
        // a future regression fails the test instead of hanging CI.
        for threads in [1, 2, 8] {
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::spawn(move || {
                let outcome = catch_unwind(|| {
                    Pool::new(threads).map(64, |i| {
                        if i == 20 {
                            panic!("injected");
                        }
                        i
                    })
                });
                let _ = tx.send(outcome.is_err());
            });
            let panicked = rx
                .recv_timeout(std::time::Duration::from_secs(30))
                .unwrap_or_else(|_| panic!("map deadlocked on panic (threads={threads})"));
            assert!(panicked, "map must propagate the panic (threads={threads})");
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn map_records_claims_and_joins() {
        use crate::events::{record, SyncEvent};
        let (out, trace) = record(|| Pool::new(2).map(8, |i| i));
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        let mut claims: Vec<u64> = trace
            .events
            .iter()
            .filter_map(|e| match e.event {
                SyncEvent::CursorFetchAdd {
                    claimed, hit: true, ..
                } => Some(claimed),
                _ => None,
            })
            .collect();
        claims.sort_unstable();
        assert_eq!(claims, (0..8).collect::<Vec<_>>());
        // Both workers are joined by the caller.
        for w in 0..2 {
            assert!(trace
                .events
                .iter()
                .any(|e| e.event == SyncEvent::WorkerJoin { worker: w }));
        }
    }
}
