//! A work-stealing thread pool for deterministic fan-out of indexed work.
//!
//! The workspace's verification workloads — per-copy routing transport,
//! hit-count verification, segment audits, registry-wide static analysis —
//! are all *indexed* families of independent tasks `f(0), …, f(n-1)`. This
//! pool runs them on scoped worker threads: the index space is split into
//! per-worker ranges, each worker drains its own range through an atomic
//! cursor, and a worker whose range is exhausted *steals* indices from the
//! most-loaded remaining range. Results are merged back **in index order**,
//! so the output of [`Pool::map`] is byte-for-byte identical to the serial
//! loop regardless of thread count, interleaving, or which worker ran which
//! index — the determinism contract the golden tests and the CI
//! `bench-smoke` job enforce.
//!
//! Thread count resolution (used by the `mmio` CLI's `--threads` and every
//! experiment binary): explicit argument > `MMIO_THREADS` env var >
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width thread pool. `threads == 1` runs every task inline on the
/// caller's thread with no synchronization at all, so the serial path is
/// not merely "parallel with one worker" but literally the sequential loop.
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
}

/// One worker's claimable range of the index space: `[cursor, end)`.
struct Range {
    cursor: AtomicUsize,
    end: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The strictly sequential pool.
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// Resolves the thread count from the environment: `explicit` if given,
    /// else the `MMIO_THREADS` env var, else
    /// `std::thread::available_parallelism()`.
    pub fn from_env(explicit: Option<usize>) -> Pool {
        let threads = explicit
            .or_else(|| {
                std::env::var("MMIO_THREADS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Pool::new(threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every index in `0..n` and returns the results in
    /// index order. Deterministic: the returned vector never depends on
    /// scheduling (only on `f` itself being a function of its index).
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }

        // Split 0..n into `workers` near-equal contiguous ranges.
        let ranges: Vec<Range> = (0..workers)
            .map(|w| {
                let start = n * w / workers;
                let end = n * (w + 1) / workers;
                Range {
                    cursor: AtomicUsize::new(start),
                    end,
                }
            })
            .collect();
        let ranges = &ranges;
        let f = &f;

        let mut tagged: Vec<(usize, T)> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move |_| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        // Drain the worker's own range, then steal.
                        drain(&ranges[w], f, &mut out);
                        loop {
                            // Steal from the victim with the most work left.
                            let victim = ranges
                                .iter()
                                .max_by_key(|r| {
                                    r.end.saturating_sub(r.cursor.load(Ordering::Relaxed))
                                })
                                .expect("at least one range");
                            if !drain_one(victim, f, &mut out) {
                                break;
                            }
                            drain(victim, f, &mut out);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pool worker panicked"))
                .collect()
        })
        .expect("pool scope failed");

        debug_assert_eq!(tagged.len(), n, "every index claimed exactly once");
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, v)| v).collect()
    }

    /// Splits `n` items into at most `chunks_per_worker · threads` contiguous
    /// chunks (each a `start..end` range), maps every chunk through `f` on
    /// the pool, and folds the chunk results **in chunk order** into `init`.
    ///
    /// This is the sharded-counter pattern: each chunk accumulates into its
    /// own counter, and because the fold visits chunks in a fixed order the
    /// merged result is independent of scheduling. With `threads == 1` the
    /// whole computation degenerates to one chunk folded serially.
    pub fn map_chunks<T, F, M>(&self, n: usize, chunks_per_worker: usize, f: F, merge: M) -> T
    where
        T: Send + Default,
        F: Fn(std::ops::Range<usize>) -> T + Sync,
        M: FnMut(T, T) -> T,
    {
        if n == 0 {
            return T::default();
        }
        let chunks = (self.threads * chunks_per_worker.max(1)).min(n).max(1);
        let results = self.map(chunks, |c| {
            let start = n * c / chunks;
            let end = n * (c + 1) / chunks;
            f(start..end)
        });
        results.into_iter().fold(T::default(), merge)
    }
}

/// Claims and runs every remaining index of `range`.
fn drain<T, F: Fn(usize) -> T>(range: &Range, f: &F, out: &mut Vec<(usize, T)>) {
    while drain_one(range, f, out) {}
}

/// Claims one index of `range` if any remain; returns whether it did.
fn drain_one<T, F: Fn(usize) -> T>(range: &Range, f: &F, out: &mut Vec<(usize, T)>) -> bool {
    let i = range.cursor.fetch_add(1, Ordering::Relaxed);
    if i < range.end {
        out.push((i, f(i)));
        true
    } else {
        // Undo the overshoot so `end - cursor` stays a sane "work left"
        // estimate for victim selection (saturating, so benign if several
        // workers overshoot concurrently).
        range.cursor.fetch_sub(1, Ordering::Relaxed);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_is_identity_ordered() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_empty_and_tiny() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, |i| i + 7), vec![7]);
        assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        let pool = Pool::new(8);
        pool.map(1000, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn stealing_covers_skewed_work() {
        // Front-loaded work: the first quarter of the indices are slow, so
        // workers that finish their own range must steal to help.
        let pool = Pool::new(4);
        let out = pool.map(64, |i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_merges_in_order() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let total = pool.map_chunks(
                1000,
                4,
                |range| range.map(|i| i as u64).sum::<u64>(),
                |a: u64, b: u64| a + b,
            );
            assert_eq!(total, 999 * 1000 / 2);
        }
    }

    #[test]
    fn map_chunks_concatenation_is_deterministic() {
        // A non-commutative merge (concatenation) still gives the serial
        // answer because chunks fold in fixed order.
        let serial: Vec<usize> = (0..257).collect();
        for threads in [2, 5, 8] {
            let pool = Pool::new(threads);
            let out = pool.map_chunks(
                257,
                3,
                |range| range.collect::<Vec<usize>>(),
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn from_env_explicit_wins() {
        assert_eq!(Pool::from_env(Some(3)).threads(), 3);
        assert!(Pool::from_env(None).threads() >= 1);
    }

    #[test]
    fn zero_threads_clamped() {
        assert_eq!(Pool::new(0).threads(), 1);
    }
}
