//! Step-level simulator of CAPS-style parallel Strassen-like execution
//! ([3]: Ballard, Demmel, Holtz, Lipshitz, Schwartz — the algorithm that
//! attains the Theorem 1 bounds).
//!
//! The scheme is a recursion over the base graph: a **BFS step** encodes
//! the `b` sub-operand pairs and hands each to a group of `P/b` processors
//! (cheap in bandwidth, needs `b/a`-factor more memory); a **DFS step**
//! solves the `b` subproblems one after another on all `P` processors
//! (no extra memory, more bandwidth). The simulator chooses BFS while local
//! memory permits, as CAPS does, and counts the words each step
//! redistributes per processor.

use mmio_cdag::BaseGraph;
use serde::Serialize;

/// The per-processor word count and step trace of one simulated run.
#[derive(Clone, Debug, Serialize)]
pub struct CapsRun {
    /// Words communicated per processor along the recursion (critical
    /// path).
    pub words_per_proc: f64,
    /// Sequence of steps taken at the top of the recursion ('B' or 'D').
    pub steps: String,
}

/// One step's redistribution volume per processor: the `b` encoded
/// sub-operand pairs and the `b` returned sub-products, each of `n²/a`
/// entries spread over `p` processors: `3·b·n²/(a·p)` words.
fn step_words(base: &BaseGraph, n: f64, p: f64) -> f64 {
    3.0 * base.b() as f64 * n * n / (base.a() as f64 * p)
}

/// Simulates the CAPS schedule for an `n×n` problem on `p` processors with
/// local memories of `m` words. Requires `p` to be a power of `b` for clean
/// BFS steps (as in [3]); other values fall back to DFS until `p`
/// divides.
pub fn simulate(base: &BaseGraph, n: u64, p: u64, m: u64) -> CapsRun {
    let mut steps = String::new();
    let words = rec(base, n as f64, p, m as f64, &mut steps);
    CapsRun {
        words_per_proc: words,
        steps,
    }
}

fn rec(base: &BaseGraph, n: f64, p: u64, m: f64, steps: &mut String) -> f64 {
    let (n0, b, a) = (base.n0() as f64, base.b() as u64, base.a() as f64);
    if p <= 1 || n <= 1.0 {
        return 0.0; // sequential: no inter-processor words
    }
    let redistribute = step_words(base, n, p as f64);
    // BFS feasibility: after the step each processor's share grows by b/a.
    let bfs_feasible = p.is_multiple_of(b) && 3.0 * (b as f64 / a) * n * n / p as f64 <= m;
    if bfs_feasible {
        steps.push('B');
        redistribute + rec(base, n / n0, p / b, m, steps)
    } else {
        steps.push('D');
        // All p processors solve the b subproblems in sequence.
        redistribute + b as f64 * rec(base, n / n0, p, m, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_core::LowerBound;

    #[test]
    fn unlimited_memory_goes_all_bfs() {
        let base = strassen();
        let run = simulate(&base, 1 << 10, 49, u64::MAX);
        assert!(run.steps.starts_with("BB"), "steps: {}", run.steps);
    }

    #[test]
    fn tight_memory_forces_dfs() {
        let base = strassen();
        let n = 1u64 << 10;
        // Memory just above 3·(n/√P)²-ish forces DFS first.
        let run = simulate(&base, n, 49, 3 * n * n / 49);
        assert!(run.steps.starts_with('D'), "steps: {}", run.steps);
    }

    #[test]
    fn memory_independent_shape_with_unbounded_memory() {
        // All-BFS CAPS attains Θ(n²/P^{2/ω₀}): growing P by b decreases
        // per-proc words toward the factor b^{2/ω₀} = a = 4.
        let base = strassen();
        let n = 1u64 << 12;
        let w3 = simulate(&base, n, 343, u64::MAX).words_per_proc;
        let w4 = simulate(&base, n, 2401, u64::MAX).words_per_proc;
        let lb = LowerBound::new(&base);
        let expected_ratio =
            lb.memory_independent_bandwidth(n, 343) / lb.memory_independent_bandwidth(n, 2401);
        let measured_ratio = w3 / w4;
        assert!(
            (measured_ratio / expected_ratio - 1.0).abs() < 0.3,
            "measured {measured_ratio}, expected {expected_ratio}"
        );
    }

    #[test]
    fn bandwidth_above_lower_bound() {
        // The simulated schedule must respect Theorem 1's parallel bound
        // (it attains it up to constants).
        let base = strassen();
        let lb = LowerBound::new(&base);
        let n = 1u64 << 10;
        for (p, m) in [(7u64, 1u64 << 14), (49, 1 << 12), (49, 1 << 16)] {
            let run = simulate(&base, n, p, m);
            let bound = lb
                .parallel_bandwidth(n, m, p)
                .min(lb.memory_independent_bandwidth(n, p));
            assert!(
                run.words_per_proc >= bound / 64.0,
                "p={p} m={m}: {} << bound {bound}",
                run.words_per_proc
            );
        }
    }

    #[test]
    fn more_memory_never_hurts() {
        let base = strassen();
        let n = 1u64 << 10;
        let small = simulate(&base, n, 49, 1 << 12).words_per_proc;
        let large = simulate(&base, n, 49, 1 << 20).words_per_proc;
        assert!(large <= small);
    }

    #[test]
    fn single_processor_is_free() {
        let base = strassen();
        assert_eq!(simulate(&base, 1 << 8, 1, 1 << 10).words_per_proc, 0.0);
    }
}
