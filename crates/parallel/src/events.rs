//! Sync-event instrumentation: a zero-cost-when-disabled shim over the
//! workspace's synchronization points.
//!
//! The work-stealing [`crate::pool::Pool`] and the `mmio-core` routing memo
//! are load-bearing concurrency: every certification and bench path runs
//! through them. `mmio-check` re-verifies that concurrency with a
//! happens-before race detector over *recorded* executions — which needs a
//! trace of every synchronization action (cursor fetch-adds, steal victim
//! selection, worker joins, memo lock/fill/hit) in a total order.
//!
//! This module is that tap. Call sites emit a [`SyncEvent`] through
//! [`emit`]; the call compiles to nothing unless the `trace` cargo feature
//! is enabled, and even then it is a single relaxed load unless a recording
//! session ([`record`]) is active. The `bench-smoke` CI job builds
//! `mmio-bench` without the feature, so the hot paths it measures contain
//! no instrumentation at all.
//!
//! ## Ordering caveat
//!
//! Events are appended to a global log under a mutex, *after* the
//! instrumented operation completes. The log order is therefore a
//! linearization that is exact for lock-protected regions (the emit happens
//! while the lock is still held) but only approximate for back-to-back
//! relaxed atomics on distinct threads. `mmio-check` treats recorded traces
//! accordingly: they witness *one* legal execution for race analysis; the
//! exhaustive guarantees come from its bounded model checker, not from
//! replaying recordings.

/// One synchronization action of an instrumented component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncEvent {
    /// `fetch_add` claim on a range cursor; `claimed` is the returned
    /// index and `hit` whether it was inside the range (a real claim).
    CursorFetchAdd {
        /// Range (= sync object) the cursor belongs to.
        range: u32,
        /// Index returned by the fetch-add.
        claimed: u64,
        /// Whether `claimed < end` (the claim produced work).
        hit: bool,
    },
    /// Compensating `fetch_sub` after an overshooting claim.
    CursorUndo {
        /// Range whose cursor is restored.
        range: u32,
    },
    /// A steal iteration selected `victim` as the most-loaded range.
    StealSelect {
        /// Range chosen by [`crate::pool::pick_victim`].
        victim: u32,
    },
    /// Worker `worker` finished its drain/steal loop (last worker event).
    WorkerDone {
        /// Pool-local worker index.
        worker: u32,
    },
    /// The caller joined worker `worker` (publication of its results).
    WorkerJoin {
        /// Pool-local worker index.
        worker: u32,
    },
    /// The fixed-order fold of `map_chunks` consumed chunk `chunk`.
    ChunkMerge {
        /// Chunk index being merged.
        chunk: u64,
    },
    /// The routing-memo mutex was acquired.
    MemoLock,
    /// Cache hit for the class keyed by `key` (see [`memo_key`]).
    MemoHit {
        /// Stable hash of the `(algorithm, k)` memo key.
        key: u64,
    },
    /// The class keyed by `key` was built and inserted (cache fill).
    MemoFill {
        /// Stable hash of the `(algorithm, k)` memo key.
        key: u64,
    },
    /// The routing-memo mutex was released.
    MemoUnlock,
}

/// One recorded event: which trace-local thread emitted what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dense per-session thread index (assigned at first emission).
    pub thread: u32,
    /// The synchronization action.
    pub event: SyncEvent,
}

/// A totally-ordered synchronization trace of one recording session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncTrace {
    /// Events in global (log) order.
    pub events: Vec<TraceEvent>,
}

impl SyncTrace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct threads that emitted events.
    pub fn n_threads(&self) -> usize {
        self.events.iter().map(|e| e.thread + 1).max().unwrap_or(0) as usize
    }

    /// The sub-trace of one thread, in emission order.
    pub fn per_thread(&self, thread: u32) -> impl Iterator<Item = SyncEvent> + '_ {
        self.events
            .iter()
            .filter(move |e| e.thread == thread)
            .map(|e| e.event)
    }
}

/// Stable FNV-1a hash of a routing-memo key, so memo events carry a
/// compact identifier instead of an owned string.
pub fn memo_key(name: &str, k: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes().chain(k.to_le_bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(feature = "trace")]
mod imp {
    use super::{SyncEvent, SyncTrace, TraceEvent};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
    use std::sync::Mutex;

    static RECORDING: AtomicBool = AtomicBool::new(false);
    static LOG: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
    /// Serializes whole recording sessions (tests run concurrently).
    static SESSION: Mutex<()> = Mutex::new(());
    static SESSION_ID: AtomicU64 = AtomicU64::new(1);
    static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

    thread_local! {
        /// `(session id, thread index)` cached per OS thread; stale session
        /// ids trigger re-registration so indices are session-local.
        static THREAD_IX: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
    }

    fn thread_ix(session: u64) -> u32 {
        THREAD_IX.with(|c| {
            let (s, ix) = c.get();
            if s == session {
                ix
            } else {
                let ix = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
                c.set((session, ix));
                ix
            }
        })
    }

    /// Whether a recording session is active.
    pub fn enabled() -> bool {
        RECORDING.load(Ordering::Relaxed)
    }

    /// Appends `event` to the session log (no-op outside a session).
    pub fn emit(event: SyncEvent) {
        if !enabled() {
            return;
        }
        let thread = thread_ix(SESSION_ID.load(Ordering::Relaxed));
        let mut log = LOG.lock().unwrap_or_else(|e| e.into_inner());
        // Double-check under the log lock: a session may have ended
        // between the fast-path check and here.
        if RECORDING.load(Ordering::Relaxed) {
            log.push(TraceEvent { thread, event });
        }
    }

    /// Runs `f` with recording enabled and returns its result plus the
    /// captured trace. Sessions are globally serialized; threads spawned
    /// inside `f` are numbered in order of first emission.
    pub fn record<R>(f: impl FnOnce() -> R) -> (R, SyncTrace) {
        let _session = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        SESSION_ID.fetch_add(1, Ordering::Relaxed);
        NEXT_THREAD.store(0, Ordering::Relaxed);
        LOG.lock().unwrap_or_else(|e| e.into_inner()).clear();
        RECORDING.store(true, Ordering::SeqCst);
        let result = f();
        RECORDING.store(false, Ordering::SeqCst);
        let events = std::mem::take(&mut *LOG.lock().unwrap_or_else(|e| e.into_inner()));
        (result, SyncTrace { events })
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::{SyncEvent, SyncTrace};

    /// Always `false`: the `trace` feature is not compiled in.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Compiles to nothing.
    #[inline(always)]
    pub fn emit(_event: SyncEvent) {}

    /// Runs `f`; the returned trace is empty (no instrumentation built).
    pub fn record<R>(f: impl FnOnce() -> R) -> (R, SyncTrace) {
        (f(), SyncTrace::default())
    }
}

pub use imp::{emit, enabled, record};

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn record_captures_events_in_order() {
        let ((), trace) = record(|| {
            emit(SyncEvent::MemoLock);
            emit(SyncEvent::MemoFill { key: 7 });
            emit(SyncEvent::MemoUnlock);
        });
        let events: Vec<SyncEvent> = trace.events.iter().map(|e| e.event).collect();
        assert_eq!(
            events,
            vec![
                SyncEvent::MemoLock,
                SyncEvent::MemoFill { key: 7 },
                SyncEvent::MemoUnlock
            ]
        );
        assert_eq!(trace.n_threads(), 1);
    }

    #[test]
    fn nothing_recorded_outside_sessions() {
        emit(SyncEvent::MemoLock); // dropped silently
        let ((), trace) = record(|| {});
        assert!(trace.is_empty());
    }

    #[test]
    fn threads_get_session_local_indices() {
        let ((), trace) = record(|| {
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| emit(SyncEvent::MemoLock));
                }
            });
        });
        assert_eq!(trace.len(), 2);
        let mut threads: Vec<u32> = trace.events.iter().map(|e| e.thread).collect();
        threads.sort_unstable();
        assert_eq!(threads, vec![0, 1]);
    }

    #[test]
    fn memo_key_is_stable_and_distinguishes() {
        assert_eq!(memo_key("strassen", 2), memo_key("strassen", 2));
        assert_ne!(memo_key("strassen", 2), memo_key("strassen", 3));
        assert_ne!(memo_key("strassen", 2), memo_key("winograd", 2));
    }
}
