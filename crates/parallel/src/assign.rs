//! Vertex → processor assignments.
//!
//! The memory-independent bound of Theorem 1 assumes computation is *load
//! balanced per rank* of the CDAG; assignments here either satisfy that
//! hypothesis by construction (block/cyclic per rank) or deliberately
//! violate it (owner-computes-all) to show the bound's hypothesis matters.

use mmio_cdag::{Cdag, VertexId};
use rand::Rng;

/// An assignment of every vertex to a processor in `[p]`.
pub struct Assignment {
    /// Processor of each vertex.
    pub proc_of: Vec<u32>,
    /// Number of processors.
    pub p: u32,
}

impl Assignment {
    /// Processor of vertex `v`.
    pub fn of(&self, v: VertexId) -> u32 {
        self.proc_of[v.idx()]
    }

    /// Checks per-rank load balance within a multiplicative `slack` of the
    /// ideal `rank_size/p` (ranks smaller than `p` are exempt — they cannot
    /// be balanced).
    pub fn is_rank_balanced(&self, g: &Cdag, slack: f64) -> bool {
        let max_rank = 2 * g.r() + 1;
        for rank in 0..=max_rank {
            let members: Vec<VertexId> = g.vertices().filter(|&v| g.rank(v) == rank).collect();
            if members.len() < self.p as usize {
                continue;
            }
            let mut per_proc = vec![0u64; self.p as usize];
            for &v in &members {
                per_proc[self.of(v) as usize] += 1;
            }
            let ideal = members.len() as f64 / self.p as f64;
            if per_proc.iter().any(|&c| c as f64 > ideal * slack) {
                return false;
            }
        }
        true
    }
}

/// Cyclic assignment within each rank: vertex `i` of a rank goes to
/// processor `i mod p`. Perfectly rank-balanced.
pub fn cyclic_per_rank(g: &Cdag, p: u32) -> Assignment {
    let max_rank = 2 * g.r() + 1;
    let mut proc_of = vec![0u32; g.n_vertices()];
    for rank in 0..=max_rank {
        for (i, v) in g.vertices().filter(|&v| g.rank(v) == rank).enumerate() {
            proc_of[v.idx()] = (i as u32) % p;
        }
    }
    Assignment { proc_of, p }
}

/// Contiguous block assignment within each rank (better locality than
/// cyclic for recursive structures, still rank-balanced).
pub fn block_per_rank(g: &Cdag, p: u32) -> Assignment {
    let max_rank = 2 * g.r() + 1;
    let mut proc_of = vec![0u32; g.n_vertices()];
    for rank in 0..=max_rank {
        let members: Vec<VertexId> = g.vertices().filter(|&v| g.rank(v) == rank).collect();
        let chunk = members.len().div_ceil(p as usize).max(1);
        for (i, v) in members.into_iter().enumerate() {
            proc_of[v.idx()] = ((i / chunk) as u32).min(p - 1);
        }
    }
    Assignment { proc_of, p }
}

/// Subtree assignment: the whole subcomputation with top-level
/// multiplication digit `t₁` goes to processor `t₁ mod p` (one BFS step of
/// CAPS); the inputs/outputs (encoding rank 0, decoding rank `r`) stay
/// cyclically distributed. Rank-balanced only in the middle when `p ≤ b`.
pub fn by_top_subproblem(g: &Cdag, p: u32) -> Assignment {
    let b = g.base().b();
    let mut proc_of = vec![0u32; g.n_vertices()];
    for v in g.vertices() {
        let vr = g.vref(v);
        let top_digit = |mul: u64, len: u32| -> Option<u32> {
            if len == 0 {
                None
            } else {
                Some((mul / mmio_cdag::index::pow(b, len - 1)) as u32)
            }
        };
        let len = g.mul_len(vr.layer, vr.level);
        proc_of[v.idx()] = match top_digit(vr.mul, len) {
            Some(t1) => t1 % p,
            // Inputs of the whole problem / final outputs: spread cyclically.
            None => v.0 % p,
        };
    }
    Assignment { proc_of, p }
}

/// Everything on processor 0 — the degenerate assignment (zero
/// communication, maximally imbalanced). Violates the memory-independent
/// bound's hypothesis; used to show that hypothesis is necessary.
pub fn all_on_one(g: &Cdag, p: u32) -> Assignment {
    Assignment {
        proc_of: vec![0; g.n_vertices()],
        p,
    }
}

/// Uniformly random assignment.
pub fn random<R: Rng>(g: &Cdag, p: u32, rng: &mut R) -> Assignment {
    Assignment {
        proc_of: (0..g.n_vertices()).map(|_| rng.gen_range(0..p)).collect(),
        p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cyclic_is_rank_balanced() {
        let g = build_cdag(&strassen(), 3);
        for p in [2u32, 4, 7] {
            let a = cyclic_per_rank(&g, p);
            assert!(a.is_rank_balanced(&g, 1.5), "p={p}");
        }
    }

    #[test]
    fn block_is_rank_balanced() {
        let g = build_cdag(&strassen(), 3);
        let a = block_per_rank(&g, 4);
        assert!(a.is_rank_balanced(&g, 2.0));
    }

    #[test]
    fn all_on_one_is_imbalanced() {
        let g = build_cdag(&strassen(), 3);
        let a = all_on_one(&g, 4);
        assert!(!a.is_rank_balanced(&g, 2.0));
    }

    #[test]
    fn assignments_cover_range() {
        let g = build_cdag(&strassen(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        for a in [
            cyclic_per_rank(&g, 3),
            block_per_rank(&g, 3),
            by_top_subproblem(&g, 3),
            random(&g, 3, &mut rng),
        ] {
            assert!(g.vertices().all(|v| a.of(v) < 3));
        }
    }

    #[test]
    fn subproblem_assignment_groups_subtrees() {
        let g = build_cdag(&strassen(), 2);
        let a = by_top_subproblem(&g, 7);
        // All products with the same top digit share a processor.
        for m in g.products() {
            let vr = g.vref(m);
            let t1 = (vr.mul / 7) as u32;
            assert_eq!(a.of(m), t1 % 7);
        }
    }
}
