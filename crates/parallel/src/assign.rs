//! Vertex → processor assignments.
//!
//! The memory-independent bound of Theorem 1 assumes computation is *load
//! balanced per rank* of the CDAG; assignments here either satisfy that
//! hypothesis by construction (block/cyclic per rank) or deliberately
//! violate it (owner-computes-all) to show the bound's hypothesis matters.
//!
//! Every constructor is generic over [`CdagView`], so assignments for
//! implicit (closed-form `IndexView`) graphs at thousands of ranks cost
//! O(V) time and memory with no materialized CDAG; on a concrete
//! [`mmio_cdag::Cdag`] they produce exactly the same `proc_of` vector as
//! the original eager implementations (vertices are visited in dense id
//! order either way).

use mmio_cdag::{CdagView, Layer, VertexId};
use rand::Rng;

/// An assignment of every vertex to a processor in `[p]`.
pub struct Assignment {
    /// Processor of each vertex.
    pub proc_of: Vec<u32>,
    /// Number of processors.
    pub p: u32,
}

/// The paper's global rank of every vertex, `0..=2r+1`.
fn rank_of<V: CdagView>(g: &V, v: VertexId) -> u32 {
    g.rank_of(v).expect("vertex id in range")
}

impl Assignment {
    /// Processor of vertex `v`.
    pub fn of(&self, v: VertexId) -> u32 {
        self.proc_of[v.idx()]
    }

    /// Checks per-rank load balance within a multiplicative `slack` of the
    /// ideal `rank_size/p` (ranks smaller than `p` are exempt — they cannot
    /// be balanced).
    pub fn is_rank_balanced<V: CdagView>(&self, g: &V, slack: f64) -> bool {
        let max_rank = 2 * g.r() + 1;
        let mut members = vec![0u64; max_rank as usize + 1];
        let mut per_proc = vec![0u64; (max_rank as usize + 1) * self.p as usize];
        for i in 0..g.n_vertices() {
            let v = VertexId(i as u32);
            let rank = rank_of(g, v) as usize;
            members[rank] += 1;
            per_proc[rank * self.p as usize + self.of(v) as usize] += 1;
        }
        for rank in 0..=max_rank as usize {
            if members[rank] < u64::from(self.p) {
                continue;
            }
            let ideal = members[rank] as f64 / self.p as f64;
            let row = &per_proc[rank * self.p as usize..(rank + 1) * self.p as usize];
            if row.iter().any(|&c| c as f64 > ideal * slack) {
                return false;
            }
        }
        true
    }
}

/// Cyclic assignment within each rank: vertex `i` of a rank goes to
/// processor `i mod p`. Perfectly rank-balanced.
pub fn cyclic_per_rank<V: CdagView>(g: &V, p: u32) -> Assignment {
    let max_rank = 2 * g.r() + 1;
    let mut seen = vec![0u32; max_rank as usize + 1];
    let mut proc_of = vec![0u32; g.n_vertices()];
    for (i, slot) in proc_of.iter_mut().enumerate() {
        let rank = rank_of(g, VertexId(i as u32)) as usize;
        *slot = seen[rank] % p;
        seen[rank] += 1;
    }
    Assignment { proc_of, p }
}

/// Contiguous block assignment within each rank (better locality than
/// cyclic for recursive structures, still rank-balanced).
pub fn block_per_rank<V: CdagView>(g: &V, p: u32) -> Assignment {
    let max_rank = 2 * g.r() + 1;
    let mut members = vec![0usize; max_rank as usize + 1];
    for i in 0..g.n_vertices() {
        members[rank_of(g, VertexId(i as u32)) as usize] += 1;
    }
    let chunk: Vec<usize> = members
        .iter()
        .map(|&n| n.div_ceil(p as usize).max(1))
        .collect();
    let mut seen = vec![0usize; max_rank as usize + 1];
    let mut proc_of = vec![0u32; g.n_vertices()];
    for (i, slot) in proc_of.iter_mut().enumerate() {
        let rank = rank_of(g, VertexId(i as u32)) as usize;
        *slot = ((seen[rank] / chunk[rank]) as u32).min(p - 1);
        seen[rank] += 1;
    }
    Assignment { proc_of, p }
}

/// Subtree assignment: the whole subcomputation with top-level
/// multiplication digit `t₁` goes to processor `t₁ mod p` (one BFS step of
/// CAPS); the inputs/outputs (encoding rank 0, decoding rank `r`) stay
/// cyclically distributed. Rank-balanced only in the middle when `p ≤ b`.
pub fn by_top_subproblem<V: CdagView>(g: &V, p: u32) -> Assignment {
    let b = g.b();
    let r = g.r();
    let mut proc_of = vec![0u32; g.n_vertices()];
    for (i, slot) in proc_of.iter_mut().enumerate() {
        let v = VertexId(i as u32);
        let vr = g.try_vref(v).expect("vertex id in range");
        // Length of the packed `mul` prefix at (layer, level).
        let len = match vr.layer {
            Layer::EncA | Layer::EncB => vr.level,
            Layer::Dec => r - vr.level,
        };
        *slot = if len == 0 {
            // Inputs of the whole problem / final outputs: spread cyclically.
            v.0 % p
        } else {
            let t1 = (vr.mul / mmio_cdag::index::pow(b, len - 1)) as u32;
            t1 % p
        };
    }
    Assignment { proc_of, p }
}

/// Everything on processor 0 — the degenerate assignment (zero
/// communication, maximally imbalanced). Violates the memory-independent
/// bound's hypothesis; used to show that hypothesis is necessary.
pub fn all_on_one<V: CdagView>(g: &V, p: u32) -> Assignment {
    Assignment {
        proc_of: vec![0; g.n_vertices()],
        p,
    }
}

/// Uniformly random assignment.
pub fn random<V: CdagView, R: Rng>(g: &V, p: u32, rng: &mut R) -> Assignment {
    Assignment {
        proc_of: (0..g.n_vertices()).map(|_| rng.gen_range(0..p)).collect(),
        p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_cdag::IndexView;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cyclic_is_rank_balanced() {
        let g = build_cdag(&strassen(), 3);
        for p in [2u32, 4, 7] {
            let a = cyclic_per_rank(&g, p);
            assert!(a.is_rank_balanced(&g, 1.5), "p={p}");
        }
    }

    #[test]
    fn block_is_rank_balanced() {
        let g = build_cdag(&strassen(), 3);
        let a = block_per_rank(&g, 4);
        assert!(a.is_rank_balanced(&g, 2.0));
    }

    #[test]
    fn all_on_one_is_imbalanced() {
        let g = build_cdag(&strassen(), 3);
        let a = all_on_one(&g, 4);
        assert!(!a.is_rank_balanced(&g, 2.0));
    }

    #[test]
    fn assignments_cover_range() {
        let g = build_cdag(&strassen(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        for a in [
            cyclic_per_rank(&g, 3),
            block_per_rank(&g, 3),
            by_top_subproblem(&g, 3),
            random(&g, 3, &mut rng),
        ] {
            assert!(g.vertices().all(|v| a.of(v) < 3));
        }
    }

    #[test]
    fn subproblem_assignment_groups_subtrees() {
        let g = build_cdag(&strassen(), 2);
        let a = by_top_subproblem(&g, 7);
        // All products with the same top digit share a processor.
        for m in g.products() {
            let vr = g.vref(m);
            let t1 = (vr.mul / 7) as u32;
            assert_eq!(a.of(m), t1 % 7);
        }
    }

    #[test]
    fn implicit_view_matches_concrete_graph() {
        // The CdagView-generic constructors must assign identically on the
        // closed-form view and the materialized graph.
        let base = strassen();
        let g = build_cdag(&base, 2);
        let view = IndexView::from_base(&base, 2);
        for (ca, cb) in [
            (cyclic_per_rank(&g, 5), cyclic_per_rank(&view, 5)),
            (block_per_rank(&g, 5), block_per_rank(&view, 5)),
            (by_top_subproblem(&g, 5), by_top_subproblem(&view, 5)),
        ] {
            assert_eq!(ca.proc_of, cb.proc_of);
        }
    }
}
