//! A real multi-threaded distributed executor: one BFS step of a
//! Strassen-like algorithm with one OS thread per simulated processor,
//! every word crossing a crossbeam channel counted.
//!
//! This is the workspace's end-to-end demonstration that the bandwidth
//! accounting corresponds to an actual parallel execution: the master
//! encodes the `b` sub-operand pairs, ships each to a worker, workers
//! multiply sequentially (any cutoff), ship products back, and the master
//! decodes. The measured traffic is exactly `3·b·(n/n₀)²` words — the
//! `step_words` of the CAPS simulator at `p = b`.

use mmio_algos::Executor;
use mmio_cdag::base::Side;
use mmio_cdag::BaseGraph;
use mmio_matrix::block::{join_blocks, split_blocks};
use mmio_matrix::{Matrix, Scalar};
use parking_lot::Mutex;
use std::sync::Arc;

/// Traffic counters of one parallel run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Words sent master → workers (operands).
    pub words_out: u64,
    /// Words sent workers → master (products).
    pub words_in: u64,
}

impl Traffic {
    /// Total words moved.
    pub fn total(&self) -> u64 {
        self.words_out + self.words_in
    }
}

/// Multiplies `a·b` with one BFS step of `base` over `b` worker threads,
/// counting channel traffic. Falls back to plain sequential execution for
/// 1×1 blocks.
///
/// # Panics
/// Panics if the operands are not square of equal side divisible by `n₀`.
pub fn multiply_parallel<T: Scalar>(
    base: &BaseGraph,
    a: &Matrix<T>,
    b: &Matrix<T>,
    cutoff: usize,
) -> (Matrix<T>, Traffic) {
    let n = a.rows();
    assert!(
        a.is_square() && b.is_square() && b.rows() == n,
        "operands must be square of equal side"
    );
    let n0 = base.n0();
    assert_eq!(n % n0, 0, "side must be divisible by n0");
    let s = n / n0;

    let blocks_a = split_blocks(a, n0);
    let blocks_b = split_blocks(b, n0);

    // Encode the b sub-operand pairs (master-side work, no communication).
    let encode = |enc: &Matrix<mmio_matrix::Rational>, blocks: &[Matrix<T>], m: usize| {
        let mut acc = Matrix::zeros(s, s);
        for x in 0..base.a() {
            let c = enc[(m, x)];
            if c.is_zero() {
                continue;
            }
            let term = if c.is_one() {
                blocks[x].clone()
            } else {
                blocks[x].scale(T::from_rational(c))
            };
            acc = acc.add_ref(&term);
        }
        acc
    };

    let traffic = Arc::new(Mutex::new(Traffic::default()));
    let exec = Executor::new(base.clone(), cutoff.max(1));
    let mut products: Vec<Option<Matrix<T>>> = vec![None; base.b()];

    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(base.b());
        for m in 0..base.b() {
            let sa = encode(base.enc(Side::A), &blocks_a, m);
            let sb = encode(base.enc(Side::B), &blocks_b, m);
            let traffic = Arc::clone(&traffic);
            let exec = exec.clone();
            // Channel per worker; sending the operands counts words.
            let (tx, rx) = crossbeam::channel::bounded::<(Matrix<T>, Matrix<T>)>(1);
            {
                let mut t = traffic.lock();
                t.words_out += 2 * (s * s) as u64;
            }
            tx.send((sa, sb)).expect("worker channel open");
            handles.push(scope.spawn(move |_| {
                let (sa, sb) = rx.recv().expect("operands arrive");
                let p = exec.multiply(&sa, &sb);
                let mut t = traffic.lock();
                t.words_in += (s * s) as u64;
                p
            }));
        }
        for (m, h) in handles.into_iter().enumerate() {
            products[m] = Some(h.join().expect("worker thread"));
        }
    })
    .expect("thread scope");

    // Decode (master-side).
    let dec = base.dec();
    let mut out_blocks = Vec::with_capacity(base.a());
    for y in 0..base.a() {
        let mut acc = Matrix::zeros(s, s);
        for (m, p) in products.iter().enumerate() {
            let c = dec[(y, m)];
            if c.is_zero() {
                continue;
            }
            let p = p.as_ref().expect("product present");
            let term = if c.is_one() {
                p.clone()
            } else {
                p.scale(T::from_rational(c))
            };
            acc = acc.add_ref(&term);
        }
        out_blocks.push(acc);
    }
    let result = join_blocks(&out_blocks, n0);
    let t = *traffic.lock();
    (result, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_matrix::classical::multiply_naive;
    use mmio_matrix::random::random_i64_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_result_matches_classical() {
        let base = strassen();
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 4, 8, 16] {
            let a = random_i64_matrix(n, n, &mut rng);
            let b = random_i64_matrix(n, n, &mut rng);
            let (c, _) = multiply_parallel(&base, &a, &b, 1);
            assert!(c.exactly_equals(&multiply_naive(&a, &b)), "n={n}");
        }
    }

    #[test]
    fn traffic_matches_caps_step_formula() {
        let base = strassen();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 16usize;
        let a = random_i64_matrix(n, n, &mut rng);
        let b = random_i64_matrix(n, n, &mut rng);
        let (_, t) = multiply_parallel(&base, &a, &b, 1);
        let s = n / 2;
        assert_eq!(t.words_out, 2 * 7 * (s * s) as u64);
        assert_eq!(t.words_in, 7 * (s * s) as u64);
        // = 3·b·n²/a, the CAPS step volume at p = b (summed over procs).
        assert_eq!(t.total(), 3 * 7 * (n * n / 4) as u64);
    }

    #[test]
    fn works_for_laderman() {
        let base = mmio_algos::laderman::laderman();
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_i64_matrix(9, 9, &mut rng);
        let b = random_i64_matrix(9, 9, &mut rng);
        let (c, t) = multiply_parallel(&base, &a, &b, 1);
        assert!(c.exactly_equals(&multiply_naive(&a, &b)));
        assert_eq!(t.total(), 3 * 23 * 9);
    }
}
