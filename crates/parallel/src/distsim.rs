//! A round-based distributed execution simulator: `P` processors, each
//! with a *local cache of size `M`*, executing an assigned partition of
//! the CDAG — the full parallel machine of the paper (Section 1, "for
//! parallel computations we consider P processors, each having independent
//! local memory of size M"), combining the bandwidth accounting of
//! [`crate::bandwidth`] with the cache accounting of `mmio-pebble`.
//!
//! Execution model (owner-computes):
//!
//! - each vertex is computed by its assigned processor, in a global
//!   topological round order;
//! - a processor's operand is either in its local cache (free), in its own
//!   slow memory (1 local I/O), or owned by another processor (1 word of
//!   communication *and* 1 local I/O to place it);
//! - local caches are LRU, sized `M`.
//!
//! The totals decompose the paper's two costs: `bandwidth` (inter-processor
//! words, the Theorem 1 parallel quantity) and per-processor local I/O
//! (the sequential quantity, now divided across processors).

use crate::assign::Assignment;
use mmio_cdag::{Cdag, VertexId};
use serde::Serialize;

/// Results of one distributed simulation.
#[derive(Clone, Debug, Serialize)]
pub struct DistRun {
    /// Words moved between processors, total.
    pub total_words: u64,
    /// Maximum over processors of words sent + received (critical path).
    pub critical_path_words: u64,
    /// Maximum over processors of local cache I/O.
    pub max_local_io: u64,
    /// Sum of local cache I/O over all processors.
    pub total_local_io: u64,
}

/// Simulates `order` under `assignment` with per-processor LRU caches of
/// size `m`.
///
/// # Panics
/// Panics if `m` cannot hold any vertex's operand set.
pub fn simulate(g: &Cdag, assignment: &Assignment, order: &[VertexId], m: usize) -> DistRun {
    let p = assignment.p as usize;
    let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(0) + 1;
    assert!(m >= need, "local cache {m} cannot hold operands ({need})");

    // Per-processor LRU state: membership + timestamps.
    let n = g.n_vertices();
    let mut in_cache = vec![vec![false; n]; p];
    let mut stamp = vec![vec![0u64; n]; p];
    let mut cache_members: Vec<Vec<VertexId>> = vec![Vec::new(); p];
    let mut clock = 0u64;

    let mut sent = vec![0u64; p];
    let mut received = vec![0u64; p];
    let mut local_io = vec![0u64; p];
    let mut total_words = 0u64;

    // `charge`: whether a miss costs a local I/O. Operand fetches do;
    // inserting a freshly computed result does not (computation writes its
    // result into cache for free in the machine model).
    let touch = |proc: usize,
                 v: VertexId,
                 charge: bool,
                 in_cache: &mut Vec<Vec<bool>>,
                 stamp: &mut Vec<Vec<u64>>,
                 cache_members: &mut Vec<Vec<VertexId>>,
                 local_io: &mut Vec<u64>,
                 clock: &mut u64| {
        *clock += 1;
        if in_cache[proc][v.idx()] {
            stamp[proc][v.idx()] = *clock;
            return false; // hit
        }
        // Miss: evict LRU if full.
        if cache_members[proc].len() >= m {
            let (pos, _) = cache_members[proc]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| stamp[proc][w.idx()])
                .expect("cache nonempty");
            let victim = cache_members[proc].swap_remove(pos);
            in_cache[proc][victim.idx()] = false;
        }
        in_cache[proc][v.idx()] = true;
        stamp[proc][v.idx()] = *clock;
        cache_members[proc].push(v);
        if charge {
            local_io[proc] += 1;
        }
        true // miss
    };

    for &v in order {
        let me = assignment.of(v) as usize;
        for &op in g.preds(v) {
            let owner = assignment.of(op) as usize;
            let miss = touch(
                me,
                op,
                true,
                &mut in_cache,
                &mut stamp,
                &mut cache_members,
                &mut local_io,
                &mut clock,
            );
            if miss && owner != me {
                // The word came over the network.
                sent[owner] += 1;
                received[me] += 1;
                total_words += 1;
            }
        }
        // The result occupies a slot; computing into cache is free.
        touch(
            me,
            v,
            false,
            &mut in_cache,
            &mut stamp,
            &mut cache_members,
            &mut local_io,
            &mut clock,
        );
    }

    DistRun {
        total_words,
        critical_path_words: sent
            .iter()
            .zip(&received)
            .map(|(&s, &r)| s + r)
            .max()
            .unwrap_or(0),
        max_local_io: local_io.iter().copied().max().unwrap_or(0),
        total_local_io: local_io.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{all_on_one, by_top_subproblem, cyclic_per_rank};
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_pebble::orders::recursive_order;

    fn setup() -> (mmio_cdag::Cdag, Vec<VertexId>) {
        let g = build_cdag(&strassen(), 3);
        let order = recursive_order(&g);
        (g, order)
    }

    #[test]
    fn single_processor_has_no_words() {
        let (g, order) = setup();
        let run = simulate(&g, &all_on_one(&g, 1), &order, 32);
        assert_eq!(run.total_words, 0);
        assert!(run.max_local_io > 0);
    }

    #[test]
    fn all_on_one_matches_single_processor_io() {
        // With everything on processor 0, local I/O equals a sequential
        // LRU-ish run: sanity anchor between the two simulators.
        let (g, order) = setup();
        let run1 = simulate(&g, &all_on_one(&g, 1), &order, 32);
        let run4 = simulate(&g, &all_on_one(&g, 4), &order, 32);
        assert_eq!(run1.max_local_io, run4.max_local_io);
        assert_eq!(run4.total_words, 0);
    }

    #[test]
    fn distribution_trades_local_io_for_words() {
        let (g, order) = setup();
        let solo = simulate(&g, &all_on_one(&g, 1), &order, 16);
        let grouped = simulate(&g, &by_top_subproblem(&g, 7), &order, 16);
        // Each processor handles a slice: its local I/O shrinks…
        assert!(grouped.max_local_io < solo.max_local_io);
        // …paid for with communication.
        assert!(grouped.total_words > 0);
    }

    #[test]
    fn subtree_assignment_communicates_less_than_cyclic() {
        let (g, order) = setup();
        let cyc = simulate(&g, &cyclic_per_rank(&g, 7), &order, 16);
        let sub = simulate(&g, &by_top_subproblem(&g, 7), &order, 16);
        assert!(
            sub.total_words < cyc.total_words,
            "subtree {} vs cyclic {}",
            sub.total_words,
            cyc.total_words
        );
    }

    #[test]
    fn bigger_caches_reduce_local_io() {
        let (g, order) = setup();
        let a = by_top_subproblem(&g, 7);
        let small = simulate(&g, &a, &order, 8);
        let large = simulate(&g, &a, &order, 256);
        assert!(large.max_local_io <= small.max_local_io);
        // Communication is cache-independent in this model: same owners.
        assert!(large.total_words <= small.total_words);
    }
}
