//! A round-based distributed execution simulator: `P` processors, each
//! with a *local cache of size `M`*, executing an assigned partition of
//! the CDAG — the full parallel machine of the paper (Section 1, "for
//! parallel computations we consider P processors, each having independent
//! local memory of size M"), combining the bandwidth accounting of
//! [`crate::bandwidth`] with the cache accounting of `mmio-pebble`.
//!
//! Execution model (owner-computes):
//!
//! - each vertex is computed by its assigned processor, in a global
//!   topological round order;
//! - a processor's operand is either in its local cache (free), in its own
//!   slow memory (1 local I/O), or owned by another processor (1 word of
//!   communication *and* 1 local I/O to place it);
//! - local caches are LRU, sized `M`.
//!
//! The totals decompose the paper's two costs: `bandwidth` (inter-processor
//! words, the Theorem 1 parallel quantity) and per-processor local I/O
//! (the sequential quantity, now divided across processors).
//!
//! [`simulate_traced`] additionally records the full machine-level event
//! stream (cache evictions/insertions, sends, receives, executions) so
//! `mmio-analyze` can re-verify a run by independent re-simulation —
//! double-entry bookkeeping for the distributed machine, in the same
//! spirit as its schedule and routing audits.

use crate::assign::Assignment;
use mmio_cdag::{Cdag, VertexId};
use serde::Serialize;

/// Results of one distributed simulation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DistRun {
    /// Words moved between processors, total.
    pub total_words: u64,
    /// Maximum over processors of words sent + received (critical path).
    pub critical_path_words: u64,
    /// Maximum over processors of local cache I/O.
    pub max_local_io: u64,
    /// Sum of local cache I/O over all processors.
    pub total_local_io: u64,
}

/// One machine-level action of a traced distributed run. Vertices are
/// dense CDAG indices (`VertexId::idx() as u32`), processors are ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistEvent {
    /// Processor `proc` evicted `v` from its LRU cache.
    Evict {
        /// Evicting processor.
        proc: u32,
        /// Evicted vertex.
        v: u32,
    },
    /// Processor `proc` brought `v` into its cache; `charged` is whether
    /// the insertion cost a local I/O (operand fetches do, computing a
    /// fresh result into cache does not).
    Insert {
        /// Inserting processor.
        proc: u32,
        /// Inserted vertex.
        v: u32,
        /// Whether the insertion was charged as local I/O.
        charged: bool,
    },
    /// Processor `from` sent the value of `v` to `to` (one word).
    Send {
        /// Sender rank.
        from: u32,
        /// Receiver rank.
        to: u32,
        /// Vertex whose value moved.
        v: u32,
    },
    /// Processor `to` received the value of `v` from `from`.
    Recv {
        /// Receiver rank.
        to: u32,
        /// Sender rank.
        from: u32,
        /// Vertex whose value moved.
        v: u32,
    },
    /// Processor `proc` computed (non-input) vertex `v`.
    Exec {
        /// Computing processor.
        proc: u32,
        /// Computed vertex.
        v: u32,
    },
}

/// A fully recorded distributed run: the claimed totals plus the event
/// stream and per-rank counters they were derived from, for independent
/// re-verification by `mmio-analyze`.
#[derive(Clone, Debug)]
pub struct DistTrace {
    /// Number of processors.
    pub p: u32,
    /// Local cache capacity per processor.
    pub m: usize,
    /// The totals the simulator claims (identical to [`simulate`]'s).
    pub claimed: DistRun,
    /// Words sent, per rank.
    pub sent: Vec<u64>,
    /// Words received, per rank.
    pub received: Vec<u64>,
    /// Machine-level events in execution order.
    pub events: Vec<DistEvent>,
}

/// The mutable machine state of one simulation.
struct Sim<'a> {
    g: &'a Cdag,
    m: usize,
    in_cache: Vec<Vec<bool>>,
    stamp: Vec<Vec<u64>>,
    cache_members: Vec<Vec<VertexId>>,
    clock: u64,
    sent: Vec<u64>,
    received: Vec<u64>,
    local_io: Vec<u64>,
    total_words: u64,
    events: Option<Vec<DistEvent>>,
}

impl<'a> Sim<'a> {
    fn new(g: &'a Cdag, p: usize, m: usize, traced: bool) -> Sim<'a> {
        let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(0) + 1;
        assert!(m >= need, "local cache {m} cannot hold operands ({need})");
        let n = g.n_vertices();
        Sim {
            g,
            m,
            in_cache: vec![vec![false; n]; p],
            stamp: vec![vec![0u64; n]; p],
            cache_members: vec![Vec::new(); p],
            clock: 0,
            sent: vec![0; p],
            received: vec![0; p],
            local_io: vec![0; p],
            total_words: 0,
            events: traced.then(Vec::new),
        }
    }

    fn push(&mut self, e: DistEvent) {
        if let Some(ev) = &mut self.events {
            ev.push(e);
        }
    }

    /// Touches `v` in `proc`'s cache. On a miss: evicts the LRU entry if
    /// full, accounts a network transfer when `from` names a different
    /// owner, inserts `v`, and charges a local I/O iff `charge`.
    ///
    /// Event order on a miss: `Evict?`, `Send`+`Recv` (remote only),
    /// `Insert` — i.e. the word is on the wire before it lands in cache.
    fn touch(&mut self, proc: usize, v: VertexId, charge: bool, from: Option<usize>) {
        self.clock += 1;
        if self.in_cache[proc][v.idx()] {
            self.stamp[proc][v.idx()] = self.clock;
            return; // hit
        }
        // Miss: evict LRU if full.
        if self.cache_members[proc].len() >= self.m {
            let (pos, _) = self.cache_members[proc]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| self.stamp[proc][w.idx()])
                .expect("cache nonempty");
            let victim = self.cache_members[proc].swap_remove(pos);
            self.in_cache[proc][victim.idx()] = false;
            self.push(DistEvent::Evict {
                proc: proc as u32,
                v: victim.idx() as u32,
            });
        }
        if let Some(owner) = from {
            if owner != proc {
                // The word came over the network.
                self.sent[owner] += 1;
                self.received[proc] += 1;
                self.total_words += 1;
                self.push(DistEvent::Send {
                    from: owner as u32,
                    to: proc as u32,
                    v: v.idx() as u32,
                });
                self.push(DistEvent::Recv {
                    to: proc as u32,
                    from: owner as u32,
                    v: v.idx() as u32,
                });
            }
        }
        self.in_cache[proc][v.idx()] = true;
        self.stamp[proc][v.idx()] = self.clock;
        self.cache_members[proc].push(v);
        if charge {
            self.local_io[proc] += 1;
        }
        self.push(DistEvent::Insert {
            proc: proc as u32,
            v: v.idx() as u32,
            charged: charge,
        });
    }

    fn run(&mut self, assignment: &Assignment, order: &[VertexId]) {
        for &v in order {
            let me = assignment.of(v) as usize;
            for &op in self.g.preds(v) {
                let owner = assignment.of(op) as usize;
                self.touch(me, op, true, Some(owner));
            }
            if !self.g.preds(v).is_empty() {
                self.push(DistEvent::Exec {
                    proc: me as u32,
                    v: v.idx() as u32,
                });
            }
            // The result occupies a slot; computing into cache is free.
            self.touch(me, v, false, None);
        }
    }

    fn totals(&self) -> DistRun {
        DistRun {
            total_words: self.total_words,
            critical_path_words: self
                .sent
                .iter()
                .zip(&self.received)
                .map(|(&s, &r)| s + r)
                .max()
                .unwrap_or(0),
            max_local_io: self.local_io.iter().copied().max().unwrap_or(0),
            total_local_io: self.local_io.iter().sum(),
        }
    }
}

/// Simulates `order` under `assignment` with per-processor LRU caches of
/// size `m`.
///
/// # Panics
/// Panics if `m` cannot hold any vertex's operand set.
pub fn simulate(g: &Cdag, assignment: &Assignment, order: &[VertexId], m: usize) -> DistRun {
    let mut sim = Sim::new(g, assignment.p as usize, m, false);
    sim.run(assignment, order);
    sim.totals()
}

/// Like [`simulate`], but also records the machine-level event stream for
/// independent re-verification (see `mmio-analyze`'s distsim audit).
///
/// # Panics
/// Panics if `m` cannot hold any vertex's operand set.
pub fn simulate_traced(
    g: &Cdag,
    assignment: &Assignment,
    order: &[VertexId],
    m: usize,
) -> DistTrace {
    let mut sim = Sim::new(g, assignment.p as usize, m, true);
    sim.run(assignment, order);
    DistTrace {
        p: assignment.p,
        m,
        claimed: sim.totals(),
        sent: std::mem::take(&mut sim.sent),
        received: std::mem::take(&mut sim.received),
        events: sim.events.take().expect("traced"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{all_on_one, by_top_subproblem, cyclic_per_rank};
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_pebble::orders::recursive_order;

    fn setup() -> (mmio_cdag::Cdag, Vec<VertexId>) {
        let g = build_cdag(&strassen(), 3);
        let order = recursive_order(&g);
        (g, order)
    }

    #[test]
    fn single_processor_has_no_words() {
        let (g, order) = setup();
        let run = simulate(&g, &all_on_one(&g, 1), &order, 32);
        assert_eq!(run.total_words, 0);
        assert!(run.max_local_io > 0);
    }

    #[test]
    fn all_on_one_matches_single_processor_io() {
        // With everything on processor 0, local I/O equals a sequential
        // LRU-ish run: sanity anchor between the two simulators.
        let (g, order) = setup();
        let run1 = simulate(&g, &all_on_one(&g, 1), &order, 32);
        let run4 = simulate(&g, &all_on_one(&g, 4), &order, 32);
        assert_eq!(run1.max_local_io, run4.max_local_io);
        assert_eq!(run4.total_words, 0);
    }

    #[test]
    fn distribution_trades_local_io_for_words() {
        let (g, order) = setup();
        let solo = simulate(&g, &all_on_one(&g, 1), &order, 16);
        let grouped = simulate(&g, &by_top_subproblem(&g, 7), &order, 16);
        // Each processor handles a slice: its local I/O shrinks…
        assert!(grouped.max_local_io < solo.max_local_io);
        // …paid for with communication.
        assert!(grouped.total_words > 0);
    }

    #[test]
    fn subtree_assignment_communicates_less_than_cyclic() {
        let (g, order) = setup();
        let cyc = simulate(&g, &cyclic_per_rank(&g, 7), &order, 16);
        let sub = simulate(&g, &by_top_subproblem(&g, 7), &order, 16);
        assert!(
            sub.total_words < cyc.total_words,
            "subtree {} vs cyclic {}",
            sub.total_words,
            cyc.total_words
        );
    }

    #[test]
    fn bigger_caches_reduce_local_io() {
        let (g, order) = setup();
        let a = by_top_subproblem(&g, 7);
        let small = simulate(&g, &a, &order, 8);
        let large = simulate(&g, &a, &order, 256);
        assert!(large.max_local_io <= small.max_local_io);
        // Communication is cache-independent in this model: same owners.
        assert!(large.total_words <= small.total_words);
    }

    #[test]
    fn traced_run_agrees_with_untraced() {
        let (g, order) = setup();
        let a = by_top_subproblem(&g, 7);
        let plain = simulate(&g, &a, &order, 16);
        let traced = simulate_traced(&g, &a, &order, 16);
        assert_eq!(traced.claimed.total_words, plain.total_words);
        assert_eq!(
            traced.claimed.critical_path_words,
            plain.critical_path_words
        );
        assert_eq!(traced.claimed.max_local_io, plain.max_local_io);
        assert_eq!(traced.claimed.total_local_io, plain.total_local_io);
        assert_eq!(traced.p, 7);
        assert_eq!(traced.m, 16);
        // Event-level sanity: sends and receives pair up exactly, and the
        // per-rank counters match the event stream.
        let sends = traced
            .events
            .iter()
            .filter(|e| matches!(e, DistEvent::Send { .. }))
            .count() as u64;
        let recvs = traced
            .events
            .iter()
            .filter(|e| matches!(e, DistEvent::Recv { .. }))
            .count() as u64;
        assert_eq!(sends, plain.total_words);
        assert_eq!(recvs, plain.total_words);
        assert_eq!(traced.sent.iter().sum::<u64>(), plain.total_words);
        assert_eq!(traced.received.iter().sum::<u64>(), plain.total_words);
        // Every non-input vertex executes exactly once.
        let execs = traced
            .events
            .iter()
            .filter(|e| matches!(e, DistEvent::Exec { .. }))
            .count();
        let non_inputs = g.vertices().filter(|&v| !g.preds(v).is_empty()).count();
        assert_eq!(execs, non_inputs);
    }
}
