//! Bandwidth-cost accounting for a distributed CDAG execution.
//!
//! A value produced on processor `p` and consumed on processors `q ≠ p`
//! must be sent once to each distinct consumer (the model counts words
//! between processors; simultaneous sends to different destinations still
//! cost per word sent). The *bandwidth cost* along the critical path is at
//! least the maximum over processors of `max(sent, received)`, and the
//! total traffic divided by `P` is another lower bound on it; we report
//! all three.

use crate::assign::Assignment;
use mmio_cdag::Cdag;
use serde::Serialize;

/// Word counts of one distributed execution.
#[derive(Clone, Debug, Serialize)]
pub struct BandwidthReport {
    /// Number of processors.
    pub p: u32,
    /// Total words moved between processors.
    pub total_words: u64,
    /// Maximum over processors of words sent.
    pub max_sent: u64,
    /// Maximum over processors of words received.
    pub max_received: u64,
    /// The critical-path proxy: `max_p (sent_p + received_p)`.
    pub critical_path: u64,
    /// Whether the assignment was per-rank load balanced (slack 1.5), the
    /// hypothesis of the memory-independent bound.
    pub rank_balanced: bool,
}

/// Counts the communication induced by `assignment`.
///
/// Inputs are charged to their owning processor at no cost (the model lets
/// initial data live anywhere); every CDAG edge whose endpoints live on
/// different processors moves one word, deduplicated per
/// `(value, destination)` pair.
pub fn measure(g: &Cdag, assignment: &Assignment) -> BandwidthReport {
    let p = assignment.p;
    let mut sent = vec![0u64; p as usize];
    let mut received = vec![0u64; p as usize];
    let mut total = 0u64;
    let mut dests: Vec<u32> = Vec::with_capacity(8);
    for v in g.vertices() {
        let owner = assignment.of(v);
        dests.clear();
        for &s in g.succs(v) {
            let consumer = assignment.of(s);
            if consumer != owner && !dests.contains(&consumer) {
                dests.push(consumer);
            }
        }
        for &d in &dests {
            sent[owner as usize] += 1;
            received[d as usize] += 1;
            total += 1;
        }
    }
    let critical_path = sent
        .iter()
        .zip(&received)
        .map(|(&s, &r)| s + r)
        .max()
        .unwrap_or(0);
    BandwidthReport {
        p,
        total_words: total,
        max_sent: sent.iter().copied().max().unwrap_or(0),
        max_received: received.iter().copied().max().unwrap_or(0),
        critical_path,
        rank_balanced: assignment.is_rank_balanced(g, 1.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn all_on_one_has_zero_traffic() {
        let g = build_cdag(&strassen(), 3);
        let report = measure(&g, &assign::all_on_one(&g, 4));
        assert_eq!(report.total_words, 0);
        assert_eq!(report.critical_path, 0);
        assert!(!report.rank_balanced);
    }

    #[test]
    fn single_processor_cyclic_has_zero_traffic() {
        let g = build_cdag(&strassen(), 2);
        let report = measure(&g, &assign::cyclic_per_rank(&g, 1));
        assert_eq!(report.total_words, 0);
    }

    #[test]
    fn more_processors_more_total_traffic() {
        let g = build_cdag(&strassen(), 3);
        let t2 = measure(&g, &assign::cyclic_per_rank(&g, 2)).total_words;
        let t8 = measure(&g, &assign::cyclic_per_rank(&g, 8)).total_words;
        assert!(t8 >= t2);
    }

    #[test]
    fn subproblem_assignment_cuts_traffic_vs_cyclic() {
        // Grouping whole subtrees on one processor removes all intra-subtree
        // communication; cyclic cuts almost every edge.
        let g = build_cdag(&strassen(), 3);
        let cyclic = measure(&g, &assign::cyclic_per_rank(&g, 7));
        let grouped = measure(&g, &assign::by_top_subproblem(&g, 7));
        assert!(
            grouped.total_words < cyclic.total_words / 2,
            "grouped {} vs cyclic {}",
            grouped.total_words,
            cyclic.total_words
        );
    }

    #[test]
    fn dedup_per_destination() {
        // A value consumed twice by the same remote processor is sent once:
        // total words ≤ number of edges.
        let g = build_cdag(&strassen(), 2);
        let report = measure(&g, &assign::cyclic_per_rank(&g, 3));
        assert!(report.total_words <= g.n_edges() as u64);
        assert!(report.critical_path >= report.max_sent);
    }

    #[test]
    fn memory_independent_bound_shape_holds_for_balanced() {
        use mmio_core::LowerBound;
        // For rank-balanced assignments the measured critical path must
        // exceed the memory-independent lower bound n²/P^{2/ω₀} (up to the
        // model's constant; we check a conservative 1/8 of it).
        let base = strassen();
        let g = build_cdag(&base, 3);
        let lb = LowerBound::new(&base);
        for p in [2u32, 4, 8] {
            let report = measure(&g, &assign::cyclic_per_rank(&g, p));
            assert!(report.rank_balanced);
            let bound = lb.memory_independent_bandwidth(g.n(), p as u64) / 8.0;
            assert!(
                report.critical_path as f64 >= bound,
                "p={p}: {} < {bound}",
                report.critical_path
            );
        }
    }
}
