//! Acceptance-level model-checking runs: the exact bounded configurations
//! the concurrency-soundness story promises are exhaustively explored,
//! plus the partial-order-reduction cross-check on every one of them.

use mmio_check::explore::{explore, Limits};
use mmio_check::models::{ChunksModel, MemoModel, PoolMapModel};

fn por_limits() -> Limits {
    Limits {
        por: true,
        ..Limits::default()
    }
}

/// `Pool::map` at 2 workers, every n ≤ 6: serial output on every schedule.
#[test]
fn pool_map_two_workers_serial_equivalent_up_to_six() {
    for n in 0..=6 {
        let e = explore(&PoolMapModel::new(n, 2), Limits::default());
        assert!(
            e.all_equal_to(&vec![1u8; n]),
            "n={n}: outputs {:?}, deadlocks {}, livelocks {}, truncated {}",
            e.outputs,
            e.deadlocks,
            e.livelocks,
            e.truncated
        );
    }
}

/// Three workers is qualitatively different (two concurrent stealers);
/// the contract must survive it too.
#[test]
fn pool_map_three_workers_serial_equivalent() {
    for n in 3..=4 {
        let e = explore(&PoolMapModel::new(n, 3), Limits::default());
        assert!(e.all_equal_to(&vec![1u8; n]), "n={n}: {:?}", e.outputs);
    }
}

/// `Pool::map_chunks` at 2 workers over 4 chunks: the folded total equals
/// the serial fold on every schedule.
#[test]
fn map_chunks_two_workers_four_chunks_serial_equivalent() {
    let m = ChunksModel::new(8, 2, 2);
    assert_eq!(m.chunks, 4, "acceptance configuration is 4 chunks");
    let serial = m.serial();
    let e = explore(&m, Limits::default());
    assert!(e.all_equal_to(&serial), "{:?}", e.outputs);
    // The chunk claim machine genuinely interleaves: more than one
    // schedule exists, and all of them agree.
    assert!(e.schedules > 1);
}

/// The memo protocol fills exactly once on every schedule.
#[test]
fn memo_protocol_fills_once_exhaustively() {
    for threads in [2, 3] {
        let e = explore(&MemoModel::new(threads), Limits::default());
        assert!(
            e.all_equal_to(&(1, threads as u8 - 1)),
            "threads={threads}: {:?}",
            e.outputs
        );
    }
}

/// Partial-order reduction must preserve outputs, deadlocks, and
/// livelocks on every acceptance model — correct and broken alike —
/// while never visiting more states.
#[test]
fn por_is_sound_on_all_acceptance_models() {
    let models: Vec<PoolMapModel> = (0..=6)
        .map(|n| PoolMapModel::new(n, 2))
        .chain([PoolMapModel::new(4, 3)])
        .chain([PoolMapModel::racy(2, 2), PoolMapModel::racy(3, 2)])
        .collect();
    for m in models {
        let full = explore(&m, Limits::default());
        let por = explore(&m, por_limits());
        let mut a = full.outputs.clone();
        let mut b = por.outputs.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "POR changed the reachable outputs");
        assert_eq!(full.deadlocks, por.deadlocks);
        assert_eq!(full.livelocks > 0, por.livelocks > 0);
        assert!(por.states <= full.states);
    }
    for m in [MemoModel::new(2), MemoModel::new(3), MemoModel::buggy(2)] {
        let full = explore(&m, Limits::default());
        let por = explore(&m, por_limits());
        let mut a = full.outputs.clone();
        let mut b = por.outputs.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(full.deadlocks, por.deadlocks);
    }
}

/// The broken variants stay broken at the acceptance bounds — the
/// explorer's sensitivity is part of the acceptance criteria.
#[test]
fn explorer_still_finds_the_planted_bugs() {
    let e = explore(&PoolMapModel::racy(2, 2), Limits::default());
    assert!(e.outputs.iter().any(|o| o != &vec![1u8; 2]));
    let e = explore(&MemoModel::buggy(2), Limits::default());
    assert!(e.outputs.iter().any(|&(fills, _)| fills >= 2));
}
