//! Seeded fuzzing of the real pool against the serial reference, and the
//! bridge to the model checker: random schedules of the virtual model are
//! a subset of what exhaustive exploration covers, so any divergence a
//! fuzz run could ever produce is findable by the explorer on a minimized
//! configuration — that containment is tested here, not assumed.

use mmio_check::explore::{explore, Limits, Model};
use mmio_check::models::PoolMapModel;
use mmio_parallel::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Real threads, many seeded shapes: `Pool::map` output is byte-identical
/// to the serial map at 1, 2, and 8 threads.
#[test]
fn fuzz_map_matches_serial_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..40 {
        let n = rng.gen_range(0usize..80);
        let salt = rng.gen::<u64>();
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(13) ^ salt;
        let expected: Vec<u64> = (0..n).map(f).collect();
        for threads in [1, 2, 8] {
            let got = Pool::new(threads).map(n, f);
            assert_eq!(got, expected, "round {round}: n={n} threads={threads}");
        }
    }
}

/// `map_chunks` with an order-sensitive fold (concatenation): any chunk
/// claimed twice, dropped, or merged out of order changes the bytes.
#[test]
fn fuzz_map_chunks_matches_serial_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for round in 0..40 {
        let n = rng.gen_range(1usize..120);
        let cpw = rng.gen_range(1usize..5);
        let expected: Vec<usize> = (0..n).collect();
        for threads in [1, 2, 8] {
            let got = Pool::new(threads).map_chunks(
                n,
                cpw,
                |r| r.collect::<Vec<usize>>(),
                |mut a, b| {
                    a.extend(b);
                    a
                },
            );
            assert_eq!(
                got, expected,
                "round {round}: n={n} cpw={cpw} threads={threads}"
            );
        }
    }
}

/// Walks the model under one random schedule to a maximal state; returns
/// the output, or `None` on a deadlock (never reached for these models)
/// or when the walk exceeds `max_steps` (a livelock-ish run).
fn random_walk(mut m: PoolMapModel, rng: &mut StdRng, max_steps: usize) -> Option<Vec<u8>> {
    for _ in 0..max_steps {
        let enabled: Vec<usize> = (0..m.threads()).filter(|&t| m.enabled(t)).collect();
        if enabled.is_empty() {
            return (0..m.threads()).all(|t| m.finished(t)).then(|| m.output());
        }
        m.step(enabled[rng.gen_range(0..enabled.len())]);
    }
    None
}

/// Every output a seeded schedule fuzzer reaches on the virtual pool is
/// inside the explorer's exhaustive output set — fuzzing finds nothing
/// the model checker misses.
#[test]
fn fuzzed_schedules_are_contained_in_exhaustive_exploration() {
    let mut rng = StdRng::seed_from_u64(42);
    for (model, label) in [
        (PoolMapModel::new(4, 2), "atomic 4x2"),
        (PoolMapModel::new(3, 3), "atomic 3x3"),
        (PoolMapModel::racy(2, 2), "racy 2x2"),
        (PoolMapModel::racy(3, 2), "racy 3x2"),
    ] {
        let e = explore(&model, Limits::default());
        for _ in 0..300 {
            if let Some(out) = random_walk(model.clone(), &mut rng, 10_000) {
                assert!(
                    e.outputs.contains(&out),
                    "{label}: fuzz reached {out:?}, missing from exhaustive set {:?}",
                    e.outputs
                );
            }
        }
    }
}

/// The division of labor the suite relies on: a random schedule can land
/// on the serial output and *miss* the torn-claim divergence, while the
/// explorer finds it on the minimized config every time. Deterministic:
/// seeds are fixed, and at least one of them demonstrably fuzzes clean.
#[test]
fn explorer_finds_divergence_on_minimized_config() {
    let minimized = PoolMapModel::racy(2, 2);
    let serial = vec![1u8; 2];
    let clean_walks = (0..20u64)
        .filter(|&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            random_walk(minimized.clone(), &mut rng, 10_000) == Some(serial.clone())
        })
        .count();
    assert!(clean_walks > 0, "some seed must fuzz past the bug");
    let e = explore(&minimized, Limits::default());
    assert!(
        e.outputs.iter().any(|o| o != &serial),
        "the explorer must expose the divergence fuzzing can miss"
    );
}
