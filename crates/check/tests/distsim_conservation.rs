//! Conservation laws of the distributed-memory simulator, across every
//! assignment strategy and the whole algorithm registry at r ≤ 2 —
//! cross-checked against the independent event-level audit in
//! `mmio-analyze` (double-entry bookkeeping: the simulator's claimed
//! totals must be re-derivable from its own event stream).

use mmio_algos::registry::all_base_graphs;
use mmio_analyze::{audit_dist_trace, Report};
use mmio_cdag::build::build_cdag;
use mmio_cdag::Cdag;
use mmio_parallel::assign::{
    all_on_one, block_per_rank, by_top_subproblem, cyclic_per_rank, Assignment,
};
use mmio_parallel::distsim::{
    reference, simulate, simulate_traced, simulate_traced_on, MachineModel, Topology,
};
use mmio_parallel::Pool;
use mmio_pebble::orders::recursive_order;

fn strategies(g: &Cdag, p: u32) -> Vec<(&'static str, Assignment)> {
    vec![
        ("cyclic_per_rank", cyclic_per_rank(g, p)),
        ("block_per_rank", block_per_rank(g, p)),
        ("by_top_subproblem", by_top_subproblem(g, p)),
        ("all_on_one", all_on_one(g, p)),
    ]
}

#[test]
fn words_are_conserved_across_all_strategies_and_graphs() {
    for base in all_base_graphs() {
        for r in 1..=2u32 {
            let g = build_cdag(&base, r);
            let order = recursive_order(&g);
            let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(0) + 1;
            let m = need.max(16);
            for (name, a) in strategies(&g, 4) {
                let t = simulate_traced(&g, &a, &order, m);
                let ctx = format!("{} r={r} {name}", base.name());

                // Conservation: every word sent is received, and the
                // claimed inter-processor total is exactly that sum.
                let sent: u64 = t.sent.iter().sum();
                let received: u64 = t.received.iter().sum();
                assert_eq!(sent, received, "{ctx}: sent != received");
                assert_eq!(t.claimed.total_words, sent, "{ctx}: total != Σ sent");

                // The critical path is the busiest rank's send+recv load:
                // bounded below by the average and above by the total.
                let busiest = (0..t.p as usize)
                    .map(|r| t.sent[r] + t.received[r])
                    .max()
                    .unwrap_or(0);
                assert_eq!(t.claimed.critical_path_words, busiest, "{ctx}");
                assert!(
                    t.claimed.critical_path_words <= 2 * t.claimed.total_words,
                    "{ctx}"
                );

                // `all_on_one` moves nothing between processors.
                if name == "all_on_one" {
                    assert_eq!(t.claimed.total_words, 0, "{ctx}");
                }

                // Traced and untraced simulation agree exactly.
                assert_eq!(t.claimed, simulate(&g, &a, &order, m), "{ctx}");
            }
        }
    }
}

#[test]
fn soa_engine_matches_reference_on_registry() {
    // The exact-equivalence contract of the two engines: identical totals,
    // per-rank counters, and event streams, on every registry graph at
    // r ≤ 2 under every assignment strategy.
    for base in all_base_graphs() {
        for r in 1..=2u32 {
            let g = build_cdag(&base, r);
            let order = recursive_order(&g);
            let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(0) + 1;
            let m = need.max(16);
            for (name, a) in strategies(&g, 4) {
                let ctx = format!("{} r={r} {name}", base.name());
                let fast = simulate_traced(&g, &a, &order, m);
                let slow = reference::simulate_traced(&g, &a, &order, m);
                assert_eq!(fast.claimed, slow.claimed, "{ctx}");
                assert_eq!(fast.sent, slow.sent, "{ctx}");
                assert_eq!(fast.received, slow.received, "{ctx}");
                assert_eq!(fast.events, slow.events, "{ctx}");
            }
        }
    }
}

#[test]
fn contended_runs_audit_clean_across_topologies() {
    // Topology sweep: a machine model must not change the paper's word
    // counts, its makespan must dominate the uncontended critical path
    // (β = 1), and the analyzer's link-conservation and makespan recounts
    // (MMIO-D006/D007) must confirm every claimed round table — serial
    // and pooled runs byte-identical.
    let topologies = [
        ("full", Topology::Full),
        ("ring", Topology::Ring),
        ("torus", Topology::Torus2d { q: 2 }),
    ];
    for base in all_base_graphs() {
        for r in 1..=2u32 {
            let g = build_cdag(&base, r);
            let order = recursive_order(&g);
            let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(0) + 1;
            let m = need.max(16);
            for (name, a) in strategies(&g, 4) {
                let plain = simulate(&g, &a, &order, m);
                for (tname, topo) in topologies {
                    let ctx = format!("{} r={r} {name} {tname}", base.name());
                    let mm = Some(MachineModel::new(topo, 2, 1, 1));
                    let t = simulate_traced_on(&g, &a, &order, m, mm, &Pool::serial());
                    assert_eq!(t.claimed, plain, "{ctx}: contention changed counts");
                    let c = t.contention.as_ref().expect("contended");
                    assert!(
                        c.makespan >= plain.critical_path_words,
                        "{ctx}: makespan {} < critical path {}",
                        c.makespan,
                        plain.critical_path_words
                    );
                    let mut report = Report::new();
                    let audit = audit_dist_trace(&g, &a, &t, &mut report);
                    assert!(
                        audit.ok && !report.has_errors(),
                        "{ctx}: {:?}",
                        report.diagnostics
                    );
                    let pooled = simulate_traced_on(&g, &a, &order, m, mm, &Pool::new(4));
                    assert_eq!(pooled.claimed, t.claimed, "{ctx}");
                    assert_eq!(pooled.events, t.events, "{ctx}");
                    assert_eq!(pooled.contention, t.contention, "{ctx}");
                }
            }
        }
    }
}

#[test]
fn analyzer_audit_confirms_every_clean_run() {
    for base in all_base_graphs() {
        for r in 1..=2u32 {
            let g = build_cdag(&base, r);
            let order = recursive_order(&g);
            let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(0) + 1;
            let m = need.max(16);
            for (name, a) in strategies(&g, 4) {
                let t = simulate_traced(&g, &a, &order, m);
                let mut report = Report::new();
                let audit = audit_dist_trace(&g, &a, &t, &mut report);
                assert!(
                    audit.ok && !report.has_errors(),
                    "{} r={r} {name}: {:?}",
                    base.name(),
                    report.diagnostics
                );
                // The audit replayed real work and respected the capacity.
                assert!(audit.execs > 0);
                assert!(audit.max_occupancy <= m);
            }
        }
    }
}
