//! Concurrency soundness of the serve tier's queue/worker protocol.
//!
//! `mmio-check`'s charter is proving the workspace's concurrent protocols,
//! and `mmio serve` rests on one more of them: the bounded
//! [`JobQueue`] + panic-isolated [`WorkerSet`] with wedge replacement
//! (`mmio_serve::queue`). These tests drive that protocol under real
//! threads and assert the conservation invariants the serving contract
//! needs:
//!
//! 1. every push is accounted for — accepted, or handed back intact as a
//!    typed [`PushError`];
//! 2. every accepted job executes **exactly once** (no loss, no
//!    double-serve), including across a wedge replacement where two
//!    workers briefly overlap;
//! 3. `close()` drains the backlog rather than dropping it, then every
//!    worker exits (no deadlock — each test runs under a watchdog).

use mmio_serve::queue::{JobQueue, JobToken, PushError, WorkerSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One unit of work: an identity to count and an optional wedge.
#[derive(Debug)]
struct Job {
    id: usize,
    wedge: Duration,
    token: Arc<JobToken>,
}

impl Job {
    fn quick(id: usize) -> Job {
        Job {
            id,
            wedge: Duration::ZERO,
            token: Arc::new(JobToken::default()),
        }
    }
}

/// Runs `f` on a watchdog thread: a deadlock anywhere in the protocol
/// fails the test in bounded time instead of hanging the suite.
fn with_watchdog(name: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(120))
        .unwrap_or_else(|_| panic!("{name}: queue/worker protocol deadlocked (watchdog fired)"));
}

/// Polls `cond` until it holds or `deadline` elapses; returns the final
/// truth value so callers can assert with their own message.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// Eight producers burst-push against a small bounded queue while four
/// workers drain it. Every push must come back accepted or typed-shed
/// with the job intact, and exactly the accepted set executes — once.
#[test]
fn accepted_jobs_execute_exactly_once_under_contention() {
    with_watchdog("exactly_once", || {
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 250;
        const TOTAL: usize = PRODUCERS * PER_PRODUCER;

        let queue = Arc::new(JobQueue::new(16));
        let executed: Arc<Vec<AtomicUsize>> =
            Arc::new((0..TOTAL).map(|_| AtomicUsize::new(0)).collect());
        let exec = Arc::clone(&executed);
        let set = WorkerSet::start(Arc::clone(&queue), 4, 8, move |job: Job| {
            job.token.started.store(true, Ordering::Relaxed);
            exec[job.id].fetch_add(1, Ordering::Relaxed);
            job.token.done.store(true, Ordering::Relaxed);
        });

        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut accepted = Vec::new();
                    let mut shed = 0usize;
                    for i in 0..PER_PRODUCER {
                        let id = p * PER_PRODUCER + i;
                        match queue.try_push(Job::quick(id)) {
                            Ok(()) => accepted.push(id),
                            Err(PushError::Full(job)) => {
                                assert_eq!(job.id, id, "shed job must be handed back intact");
                                shed += 1;
                                std::thread::yield_now();
                            }
                            Err(PushError::Closed(_)) => {
                                unreachable!("queue is never closed while producers run")
                            }
                        }
                    }
                    (accepted, shed)
                })
            })
            .collect();

        let mut was_accepted = vec![false; TOTAL];
        let (mut accepted_n, mut shed_n) = (0usize, 0usize);
        for h in handles {
            let (accepted, shed) = h.join().expect("producer thread");
            shed_n += shed;
            for id in accepted {
                was_accepted[id] = true;
                accepted_n += 1;
            }
        }
        assert_eq!(
            accepted_n + shed_n,
            TOTAL,
            "every push accounted for: accepted or typed shed"
        );
        assert!(accepted_n > 0, "contention must not starve admission");

        queue.close();
        assert!(
            wait_until(Duration::from_secs(30), || set.live() == 0),
            "workers must drain and exit after close()"
        );
        for (id, accepted) in was_accepted.iter().enumerate() {
            let runs = executed[id].load(Ordering::Relaxed);
            if *accepted {
                assert_eq!(runs, 1, "accepted job {id} must execute exactly once");
            } else {
                assert_eq!(runs, 0, "shed job {id} must never execute");
            }
        }
    });
}

/// `close()` with a live backlog: the pending jobs still run (drain
/// semantics — a shutdown never silently drops admitted work), late
/// pushes are rejected typed with the job handed back, and the workers
/// then exit.
#[test]
fn close_mid_stream_drains_backlog_and_rejects_late_pushes() {
    with_watchdog("drain_on_close", || {
        let queue = Arc::new(JobQueue::new(64));
        let executed = Arc::new(AtomicUsize::new(0));
        let exec = Arc::clone(&executed);
        // Slow workers so close() lands while jobs are still pending.
        let set = WorkerSet::start(Arc::clone(&queue), 2, 4, move |job: Job| {
            std::thread::sleep(Duration::from_micros(300));
            exec.fetch_add(1, Ordering::Relaxed);
            job.token.done.store(true, Ordering::Relaxed);
        });

        let mut accepted = 0usize;
        for id in 0..48 {
            if queue.try_push(Job::quick(id)).is_ok() {
                accepted += 1;
            }
        }
        let pending_at_close = queue.len();
        queue.close();
        assert!(
            pending_at_close > 0,
            "close() must race an actual backlog for this test to mean anything"
        );

        match queue.try_push(Job::quick(usize::MAX)) {
            Err(PushError::Closed(job)) => {
                assert_eq!(job.id, usize::MAX, "rejected job handed back intact")
            }
            other => panic!("push after close must be typed Closed, got {other:?}"),
        }

        assert!(
            wait_until(Duration::from_secs(30), || set.live() == 0),
            "workers must exit once the backlog drains"
        );
        assert_eq!(
            executed.load(Ordering::Relaxed),
            accepted,
            "close() drains: every accepted job ran, none dropped"
        );
    });
}

/// The wedge state machine end to end: a worker wedges on a job, the
/// submitter spawns a replacement which serves the rest of the queue,
/// and when the wedged worker finally finishes, its job has still run
/// exactly once and the set retires back to target strength — no lost
/// job, no double-serve, no worker leak.
#[test]
fn wedge_replacement_preserves_exactly_once_and_retires_surplus() {
    with_watchdog("wedge_replacement", || {
        let queue = Arc::new(JobQueue::new(8));
        let executed: Arc<Vec<AtomicUsize>> =
            Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
        let exec = Arc::clone(&executed);
        let set = WorkerSet::start(Arc::clone(&queue), 1, 3, move |job: Job| {
            job.token.started.store(true, Ordering::Relaxed);
            std::thread::sleep(job.wedge);
            exec[job.id].fetch_add(1, Ordering::Relaxed);
            job.token.done.store(true, Ordering::Relaxed);
        });

        let wedged = Arc::new(JobToken::default());
        queue
            .try_push(Job {
                id: 0,
                wedge: Duration::from_millis(400),
                token: Arc::clone(&wedged),
            })
            .expect("push wedging job");
        let behind = Arc::new(JobToken::default());
        queue
            .try_push(Job {
                id: 1,
                wedge: Duration::ZERO,
                token: Arc::clone(&behind),
            })
            .expect("push queued job");

        // Submitter-side wedge detection: the job started but won't finish.
        assert!(
            wait_until(Duration::from_secs(10), || wedged
                .started
                .load(Ordering::Relaxed)),
            "the single worker must pick the wedging job up"
        );
        assert!(set.replace_wedged(), "spawn budget 3 allows a replacement");
        assert_eq!(set.replacements.load(Ordering::Relaxed), 1);

        // The replacement serves the queued job past the wedge.
        assert!(
            wait_until(Duration::from_secs(10), || behind
                .done
                .load(Ordering::Relaxed)),
            "replacement worker must drain the queue while the wedge persists"
        );

        // The wedged job still completes — exactly once — and one of the
        // two overlapping workers retires, settling back to target 1.
        assert!(
            wait_until(Duration::from_secs(10), || wedged
                .done
                .load(Ordering::Relaxed)),
            "the wedged job must eventually finish"
        );
        assert!(
            wait_until(Duration::from_secs(10), || set.live() == 1),
            "the surplus worker must retire back to target strength"
        );
        assert_eq!(executed[0].load(Ordering::Relaxed), 1);
        assert_eq!(executed[1].load(Ordering::Relaxed), 1);
        assert_eq!(set.total_spawned(), 2, "one initial + one replacement");

        queue.close();
        assert!(
            wait_until(Duration::from_secs(10), || set.live() == 0),
            "remaining worker must exit after close()"
        );
    });
}
