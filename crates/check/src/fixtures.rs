//! Planted defect traces: the checker's own test dummies.
//!
//! Each fixture is a trace with one seeded concurrency defect. The check
//! suite runs the detectors over all of them on every invocation and
//! verifies that the exact expected code fires — a self-test proving the
//! analyses have teeth, in the same spirit as `mmio-analyze`'s golden
//! corpus of known-bad artifacts. The fixtures are deterministic by
//! construction, so `mmio check --json` stays byte-identical run to run.

use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_cdag::Cdag;
use mmio_parallel::assign::{cyclic_per_rank, Assignment};
use mmio_parallel::distsim::{simulate_traced, DistEvent, DistTrace};
use mmio_parallel::events::{memo_key, SyncEvent, SyncTrace, TraceEvent};
use mmio_pebble::orders::recursive_order;

fn trace(events: Vec<(u32, SyncEvent)>) -> SyncTrace {
    SyncTrace {
        events: events
            .into_iter()
            .map(|(thread, event)| TraceEvent { thread, event })
            .collect(),
    }
}

/// A two-worker `Pool::map` trace where index 2 of range 0 is claimed by
/// both workers — the lost update a non-atomic claim produces. Expected:
/// `MMIO-C002`.
pub fn planted_lost_update() -> SyncTrace {
    trace(vec![
        (
            1,
            SyncEvent::CursorFetchAdd {
                range: 0,
                claimed: 0,
                hit: true,
            },
        ),
        (
            2,
            SyncEvent::CursorFetchAdd {
                range: 1,
                claimed: 3,
                hit: true,
            },
        ),
        (
            1,
            SyncEvent::CursorFetchAdd {
                range: 0,
                claimed: 1,
                hit: true,
            },
        ),
        // Both workers observed cursor = 2 (a torn load/store pair) and
        // both claim index 2.
        (
            1,
            SyncEvent::CursorFetchAdd {
                range: 0,
                claimed: 2,
                hit: true,
            },
        ),
        (
            2,
            SyncEvent::CursorFetchAdd {
                range: 0,
                claimed: 2,
                hit: true,
            },
        ),
        (
            1,
            SyncEvent::CursorFetchAdd {
                range: 0,
                claimed: 3,
                hit: false,
            },
        ),
        (1, SyncEvent::CursorUndo { range: 0 }),
        (1, SyncEvent::WorkerDone { worker: 0 }),
        (2, SyncEvent::WorkerDone { worker: 1 }),
        (0, SyncEvent::WorkerJoin { worker: 0 }),
        (0, SyncEvent::WorkerJoin { worker: 1 }),
    ])
}

/// A memo trace where two threads both build and insert the same class —
/// the check-then-act double fill. Expected: `MMIO-C003`.
pub fn planted_double_fill() -> SyncTrace {
    let key = memo_key("strassen", 2);
    trace(vec![
        (0, SyncEvent::MemoLock),
        (0, SyncEvent::MemoFill { key }),
        (0, SyncEvent::MemoUnlock),
        (1, SyncEvent::MemoLock),
        (1, SyncEvent::MemoFill { key }),
        (1, SyncEvent::MemoUnlock),
    ])
}

/// A `Pool::map` trace whose second worker is never joined, yet its slot
/// is consumed — an unordered write/read pair. Expected: `MMIO-C001`.
pub fn planted_unjoined_read() -> SyncTrace {
    trace(vec![
        (
            1,
            SyncEvent::CursorFetchAdd {
                range: 0,
                claimed: 0,
                hit: true,
            },
        ),
        (1, SyncEvent::WorkerDone { worker: 0 }),
        (
            2,
            SyncEvent::CursorFetchAdd {
                range: 1,
                claimed: 1,
                hit: true,
            },
        ),
        (2, SyncEvent::WorkerDone { worker: 1 }),
        (0, SyncEvent::WorkerJoin { worker: 0 }),
    ])
}

/// A distributed run (Strassen, `r = 1`, 2 ranks) with a forged receive
/// that matches no send. Expected: `MMIO-D005` (conservation, `MMIO-D001`,
/// necessarily breaks alongside it — the forged word came from nowhere).
pub fn planted_unmatched_recv() -> (Cdag, Assignment, DistTrace) {
    let g = build_cdag(&strassen(), 1);
    let order = recursive_order(&g);
    let a = cyclic_per_rank(&g, 2);
    let mut t = simulate_traced(&g, &a, &order, 32);
    t.events.push(DistEvent::Recv {
        to: 0,
        from: 1,
        v: 0,
    });
    (g, a, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(planted_lost_update(), planted_lost_update());
        assert_eq!(planted_double_fill(), planted_double_fill());
        let (_, _, t1) = planted_unmatched_recv();
        let (_, _, t2) = planted_unmatched_recv();
        assert_eq!(t1.events, t2.events);
    }
}
