//! Mutation-testing harness for the certificate verifier.
//!
//! Two mutant populations, one contract: the standalone verifier must kill
//! **every** mutant and reject **zero** clean certificates.
//!
//! 1. *Certificate-level* mutants (`mmio_cert::mutate::mutants_for`):
//!    post-hoc corruptions of serialized certificates — hand-built unit
//!    fixtures and real engine emissions alike.
//! 2. *Engine-level* mutants: runtime-armed corruption switches inside the
//!    routing and pebble engines (`mmio-core/mutate`, `mmio-pebble/mutate`)
//!    that make the *emitter itself* lie. These lies are self-consistent
//!    (counters recomputed from the mutated trace), so the verifier has to
//!    catch them structurally, not by cross-checking two copies of one
//!    variable.
//!
//! Exits nonzero on any surviving mutant or false reject; always prints a
//! machine-readable JSON report to stdout. CI runs this as a blocking step
//! (`cargo run -p mmio-check --features engine-mutate --bin cert_mutate`).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use mmio_cdag::build::build_cdag;
use mmio_cert::mutate::mutants_for;
use mmio_cert::{fixtures, verify_json, Certificate};
use mmio_core::transport::{emit_certificate, RoutingClass};
use mmio_parallel::Pool;
use mmio_pebble::cert::{emit_schedule_certificate, emit_sweep_certificate};
use mmio_pebble::sweep::{sweep, PolicySpec};
use mmio_pebble::{orders, AutoScheduler};
use serde::Serialize;

#[derive(Serialize)]
struct MutantOutcome {
    name: String,
    kind: String,
    expected: Vec<String>,
    got: Vec<String>,
    killed: bool,
}

#[derive(Serialize)]
struct Report {
    clean_certs: u64,
    false_rejects: u64,
    mutants: u64,
    killed: u64,
    kill_rate: f64,
    outcomes: Vec<MutantOutcome>,
}

fn observed_codes(cert: &Certificate) -> (bool, Vec<String>) {
    let v = verify_json(&cert.to_json());
    let mut codes: Vec<String> = v.rejections.iter().map(|r| r.code.clone()).collect();
    codes.sort();
    codes.dedup();
    (v.accepted, codes)
}

/// Clean engine emissions over the fast registry: a routing certificate
/// with non-trivial transport, a schedule witness, and a sweep witness per
/// base, at the analyzer's depth caps.
fn clean_engine_certs(pool: &Pool) -> Vec<(String, Certificate)> {
    let mut certs = Vec::new();
    for base in mmio_algos::registry::fast_base_graphs() {
        let name = base.name().to_string();
        let k = if base.a() >= 16 { 1 } else { 2 };
        if let Some(class) = RoutingClass::build(&base, k, pool) {
            certs.push((format!("{name}/routing"), emit_certificate(&class, k + 1)));
        }
        let g = build_cdag(&base, 2);
        let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap() + 1;
        let m = need + 4;
        let sched = AutoScheduler::try_new(&g, m).expect("m above indegree floor");
        let order = orders::rank_order(&g);
        let mut policy = PolicySpec::Lru.instantiate(g.n_vertices());
        let (_, schedule) = sched.run_recorded(&order, &mut *policy);
        certs.push((
            format!("{name}/schedule"),
            emit_schedule_certificate(&g, m, &schedule),
        ));
        let points = sweep(&g, &[&order], &[PolicySpec::Lru], &[2, m], pool);
        certs.push((
            format!("{name}/sweep"),
            emit_sweep_certificate(&g, &PolicySpec::Lru, &points),
        ));
    }
    certs
}

/// One engine-level mutant: arming `switch` must make `emit` produce a
/// certificate the verifier rejects with one of `expected`.
struct EngineMutant {
    name: &'static str,
    switch: &'static AtomicBool,
    expected: &'static [&'static str],
    emit: Box<dyn Fn(&Pool) -> Certificate>,
}

fn engine_mutants() -> Vec<EngineMutant> {
    // r > k so the transport prefix set is non-trivial and PREFIX_LIE has
    // something to corrupt.
    let routing = |pool: &Pool| {
        let class = RoutingClass::build(&mmio_algos::strassen::strassen(), 1, pool)
            .expect("strassen has a Hall matching");
        emit_certificate(&class, 2)
    };
    let schedule = |_: &Pool| {
        let g = build_cdag(&mmio_algos::strassen::strassen(), 2);
        let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap() + 1;
        let m = need + 4;
        let sched = AutoScheduler::try_new(&g, m).expect("m above indegree floor");
        let order = orders::rank_order(&g);
        let mut policy = PolicySpec::Lru.instantiate(g.n_vertices());
        let (_, schedule) = sched.run_recorded(&order, &mut *policy);
        emit_schedule_certificate(&g, m, &schedule)
    };
    vec![
        EngineMutant {
            name: "engine-drop-last-path",
            switch: &mmio_core::mutate::DROP_LAST_PATH,
            expected: &["MMIO-V015", "MMIO-V011"],
            emit: Box::new(routing),
        },
        EngineMutant {
            name: "engine-undercount-vertex-hits",
            switch: &mmio_core::mutate::UNDERCOUNT_VERTEX_HITS,
            expected: &["MMIO-V014"],
            emit: Box::new(routing),
        },
        EngineMutant {
            name: "engine-transport-prefix-lie",
            switch: &mmio_core::mutate::PREFIX_LIE,
            expected: &["MMIO-V016"],
            emit: Box::new(routing),
        },
        EngineMutant {
            name: "engine-elide-first-store",
            switch: &mmio_pebble::mutate::ELIDE_FIRST_STORE,
            expected: &["MMIO-V025", "MMIO-V020", "MMIO-V021"],
            emit: Box::new(schedule),
        },
        EngineMutant {
            name: "engine-understate-peak",
            switch: &mmio_pebble::mutate::UNDERSTATE_PEAK,
            expected: &["MMIO-V027"],
            emit: Box::new(schedule),
        },
    ]
}

fn main() -> ExitCode {
    let pool = Pool::new(2);
    let mut outcomes = Vec::new();
    let mut false_rejects = 0u64;
    let mut mutants = 0u64;
    let mut killed = 0u64;

    // Population 0: clean certificates (fixtures + engine emissions) must
    // all be accepted — the zero-false-reject half of the contract.
    mmio_core::mutate::disarm_all();
    mmio_pebble::mutate::disarm_all();
    let mut clean: Vec<(String, Certificate)> = fixtures::all()
        .into_iter()
        .map(|c| (format!("fixture/{}", c.payload.kind()), c))
        .collect();
    clean.extend(clean_engine_certs(&pool));
    let clean_certs = clean.len() as u64;
    for (name, cert) in &clean {
        let (accepted, codes) = observed_codes(cert);
        if !accepted {
            false_rejects += 1;
            eprintln!("FALSE REJECT {name}: {codes:?}");
        }
    }

    // Population 1: certificate-level mutants of every clean certificate.
    for (name, cert) in &clean {
        for m in mutants_for(cert) {
            mutants += 1;
            let (accepted, codes) = observed_codes(&m.cert);
            let hit = !accepted && m.expected.iter().any(|e| codes.iter().any(|c| c == e));
            if hit {
                killed += 1;
            } else {
                eprintln!(
                    "SURVIVOR {name}/{}: expected one of {:?}, got accepted={accepted} {codes:?}",
                    m.name, m.expected
                );
            }
            outcomes.push(MutantOutcome {
                name: format!("{name}/{}", m.name),
                kind: "certificate".into(),
                expected: m.expected.iter().map(|s| s.to_string()).collect(),
                got: codes,
                killed: hit,
            });
        }
    }

    // Population 2: engine-level mutants — arm, emit, verify, disarm.
    for em in engine_mutants() {
        mutants += 1;
        em.switch.store(true, Ordering::SeqCst);
        let cert = (em.emit)(&pool);
        mmio_core::mutate::disarm_all();
        mmio_pebble::mutate::disarm_all();
        let (accepted, codes) = observed_codes(&cert);
        let hit = !accepted && em.expected.iter().any(|e| codes.iter().any(|c| c == e));
        if hit {
            killed += 1;
        } else {
            eprintln!(
                "SURVIVOR {}: expected one of {:?}, got accepted={accepted} {codes:?}",
                em.name, em.expected
            );
        }
        outcomes.push(MutantOutcome {
            name: em.name.into(),
            kind: "engine".into(),
            expected: em.expected.iter().map(|s| s.to_string()).collect(),
            got: codes,
            killed: hit,
        });
    }

    let report = Report {
        clean_certs,
        false_rejects,
        mutants,
        killed,
        kill_rate: if mutants == 0 {
            1.0
        } else {
            killed as f64 / mutants as f64
        },
        outcomes,
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&serde::Serialize::to_value(&report)).expect("serializable")
    );
    if false_rejects > 0 || killed < mutants {
        eprintln!("cert_mutate: FAIL ({killed}/{mutants} killed, {false_rejects} false reject(s))");
        ExitCode::FAILURE
    } else {
        eprintln!("cert_mutate: PASS ({killed}/{mutants} killed, 0 false rejects)");
        ExitCode::SUCCESS
    }
}
