//! Happens-before race detection over lowered sync traces.
//!
//! The classic vector-clock algorithm (the full-clock variant FastTrack
//! optimizes): every thread carries a [`VectorClock`], every sync object a
//! release clock, and every shared location a read clock and a write
//! clock. Acquires join the sync object's clock into the thread; releases
//! publish the thread's clock (and tick it, so later same-thread work is
//! not confused with the released epoch). A read races with an unordered
//! prior write; a write races with an unordered prior read *or* write.
//!
//! Races are reported as `MMIO-C001` diagnostics through `mmio-analyze`'s
//! framework, naming both access sites (event indices in the lowered
//! trace) so a finding can be traced back to the recording.

use crate::lower::{AccessKind, Loc, Op, OpKind};
use mmio_analyze::{codes, Report, Severity, Span};
use std::collections::HashMap;

/// A per-thread logical clock: `vc[t]` counts thread `t`'s epochs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    /// Component for thread `t` (0 if never touched).
    pub fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Sets component `t`.
    pub fn set(&mut self, t: usize, v: u32) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Pointwise maximum: `self ⊔= other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    /// Whether `self ⊑ other` pointwise (self happened before other's view).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }

    /// Increments component `t`.
    pub fn tick(&mut self, t: usize) {
        let v = self.get(t);
        self.set(t, v + 1);
    }
}

/// One detected race: two accesses to the same location with no
/// happens-before edge between them.
#[derive(Clone, Debug)]
pub struct Race {
    /// The location both accesses touch.
    pub loc: Loc,
    /// Index (into the lowered op list) of the earlier access.
    pub prior_op: usize,
    /// Index of the racing access.
    pub op: usize,
    /// Thread of the racing access.
    pub thread: u32,
    /// Kind of the racing access.
    pub kind: AccessKind,
}

/// Result counters of one happens-before analysis.
#[derive(Clone, Debug, Default)]
pub struct HbAnalysis {
    /// Ops processed.
    pub ops: usize,
    /// Distinct sync objects seen.
    pub sync_objects: usize,
    /// Distinct shared locations seen.
    pub locations: usize,
    /// All races found, in detection order.
    pub races: Vec<Race>,
}

/// Per-location access history: last-writer and last-readers clocks plus
/// the op index of the most recent access of each kind (for reporting).
#[derive(Clone, Debug, Default)]
struct LocState {
    write: VectorClock,
    read: VectorClock,
    last_write_op: usize,
    last_read_op: usize,
}

/// Runs the vector-clock analysis over `ops`, pushing one `MMIO-C001`
/// diagnostic per race into `report`.
pub fn detect_races(ops: &[Op], report: &mut Report) -> HbAnalysis {
    let mut analysis = HbAnalysis::default();
    let mut threads: Vec<VectorClock> = Vec::new();
    let mut syncs: HashMap<u64, VectorClock> = HashMap::new();
    let mut locs: HashMap<Loc, LocState> = HashMap::new();

    let clock = |threads: &mut Vec<VectorClock>, t: usize| {
        if threads.len() <= t {
            threads.resize_with(t + 1, || {
                // Each thread starts with its own component at 1 so that
                // epoch 0 (the zero clock) is ordered before everything.
                VectorClock::new()
            });
        }
        if threads[t].get(t) == 0 {
            threads[t].tick(t);
        }
        t
    };

    for (i, op) in ops.iter().enumerate() {
        analysis.ops += 1;
        let t = clock(&mut threads, op.thread as usize);
        match op.kind {
            OpKind::Acquire(s) => {
                if let Some(l) = syncs.get(&s) {
                    let l = l.clone();
                    threads[t].join(&l);
                }
                syncs.entry(s).or_default();
            }
            OpKind::Release(s) => {
                let c = threads[t].clone();
                syncs.insert(s, c);
                threads[t].tick(t);
            }
            OpKind::Rmw(s) => {
                // Atomic read-modify-write: acquire + release in one step.
                if let Some(l) = syncs.get(&s) {
                    let l = l.clone();
                    threads[t].join(&l);
                }
                syncs.insert(s, threads[t].clone());
                threads[t].tick(t);
            }
            OpKind::Access(loc, kind) => {
                let st = locs.entry(loc).or_default();
                let c = &threads[t];
                let mut racy_with: Option<usize> = None;
                if !st.write.le(c) {
                    racy_with = Some(st.last_write_op);
                }
                if kind == AccessKind::Write && racy_with.is_none() && !st.read.le(c) {
                    racy_with = Some(st.last_read_op);
                }
                if let Some(prior) = racy_with {
                    report.push_with_hint(
                        codes::CONC_DATA_RACE,
                        Severity::Error,
                        Span::Thread(op.thread),
                        format!(
                            "{kind:?} of {loc:?} at op {i} is unordered with op {prior} \
                             (no happens-before edge)",
                        ),
                        "order the accesses through a release/acquire pair or a join",
                    );
                    analysis.races.push(Race {
                        loc,
                        prior_op: prior,
                        op: i,
                        thread: op.thread,
                        kind,
                    });
                }
                match kind {
                    AccessKind::Read => {
                        let v = c.get(t);
                        st.read.set(t, v);
                        st.last_read_op = i;
                    }
                    AccessKind::Write => {
                        let v = c.get(t);
                        st.write.set(t, v);
                        st.last_write_op = i;
                    }
                }
            }
        }
    }
    analysis.sync_objects = syncs.len();
    analysis.locations = locs.len();
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{AccessKind::*, Loc, Op, OpKind::*};

    fn op(thread: u32, kind: crate::lower::OpKind) -> Op {
        Op { thread, kind }
    }

    #[test]
    fn ordered_write_read_is_clean() {
        // t0 writes, releases s; t1 acquires s, reads. Classic handoff.
        let ops = vec![
            op(0, Access(Loc::Item(3), Write)),
            op(0, Release(1)),
            op(1, Acquire(1)),
            op(1, Access(Loc::Item(3), Read)),
        ];
        let mut r = Report::new();
        let a = detect_races(&ops, &mut r);
        assert!(a.races.is_empty(), "{:?}", a.races);
        assert!(!r.has_errors());
    }

    #[test]
    fn unordered_write_read_races() {
        let ops = vec![
            op(0, Access(Loc::Item(3), Write)),
            op(1, Access(Loc::Item(3), Read)),
        ];
        let mut r = Report::new();
        let a = detect_races(&ops, &mut r);
        assert_eq!(a.races.len(), 1);
        assert_eq!(a.races[0].prior_op, 0);
        assert_eq!(a.races[0].op, 1);
        assert!(r.has_code(mmio_analyze::codes::CONC_DATA_RACE));
    }

    #[test]
    fn unordered_write_write_races() {
        let ops = vec![
            op(0, Access(Loc::Memo(9), Write)),
            op(1, Access(Loc::Memo(9), Write)),
        ];
        let mut r = Report::new();
        assert_eq!(detect_races(&ops, &mut r).races.len(), 1);
    }

    #[test]
    fn read_read_never_races() {
        let ops = vec![
            op(0, Access(Loc::Item(0), Read)),
            op(1, Access(Loc::Item(0), Read)),
            op(2, Access(Loc::Item(0), Read)),
        ];
        let mut r = Report::new();
        assert!(detect_races(&ops, &mut r).races.is_empty());
    }

    #[test]
    fn distinct_locations_never_race() {
        let ops = vec![
            op(0, Access(Loc::Item(0), Write)),
            op(1, Access(Loc::Item(1), Write)),
        ];
        let mut r = Report::new();
        assert!(detect_races(&ops, &mut r).races.is_empty());
    }

    #[test]
    fn rmw_chain_orders_both_directions() {
        // Two threads alternating RMWs on the same atomic are ordered by
        // the RMW chain; their guarded accesses do not race.
        let ops = vec![
            op(0, Access(Loc::Item(0), Write)),
            op(0, Rmw(5)),
            op(1, Rmw(5)),
            op(1, Access(Loc::Item(0), Write)),
        ];
        let mut r = Report::new();
        assert!(detect_races(&ops, &mut r).races.is_empty());
    }

    #[test]
    fn release_without_acquire_does_not_order() {
        // t1 never acquires s, so the write handoff fails: race.
        let ops = vec![
            op(0, Access(Loc::Item(2), Write)),
            op(0, Release(1)),
            op(1, Access(Loc::Item(2), Read)),
        ];
        let mut r = Report::new();
        assert_eq!(detect_races(&ops, &mut r).races.len(), 1);
    }

    #[test]
    fn mutex_protocol_is_clean() {
        // Lock/unlock as acquire/release on the same sync object.
        let ops = vec![
            op(0, Acquire(1)),
            op(0, Access(Loc::Memo(4), Write)),
            op(0, Release(1)),
            op(1, Acquire(1)),
            op(1, Access(Loc::Memo(4), Read)),
            op(1, Release(1)),
        ];
        let mut r = Report::new();
        assert!(detect_races(&ops, &mut r).races.is_empty());
    }

    #[test]
    fn clock_algebra() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 2);
        b.set(1, 5);
        assert!(!a.le(&b) && !b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j) && b.le(&j));
        assert_eq!(j.get(0), 3);
        assert_eq!(j.get(1), 5);
        assert_eq!(j.get(2), 1);
    }
}
