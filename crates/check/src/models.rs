//! Virtual-scheduler models of the production concurrency, for the
//! bounded model checker.
//!
//! Model fidelity is the whole game: a paraphrased model proves nothing
//! about the real pool. These models therefore make their *decisions*
//! with the very functions the pool exports and uses itself —
//! [`split_ranges`], [`pick_victim`], [`chunk_count`], [`chunk_bounds`] —
//! and mirror its control flow statement by statement (own-range drain,
//! overshoot-undo, victim snapshot loads one relaxed read per step,
//! first-steal-miss terminates the worker). What the model checker then
//! proves — every interleaving claims every index exactly once — is a
//! statement about the algorithm the pool actually runs.
//!
//! Each model also has a deliberately broken variant (a claim whose
//! load and store are separate steps; a memo fill outside the critical
//! section that checked the cache). The explorer must *find* those bugs:
//! that is the self-test demonstrating the checker has teeth.

use crate::explore::Model;
use mmio_parallel::pool::{chunk_bounds, chunk_count, pick_victim, split_ranges};

/// Worker progress through the drain/steal loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Mode {
    /// Draining the worker's own range.
    Own,
    /// First claim on a freshly selected victim (`drain_one`): a miss
    /// here exits the steal loop.
    StealFirst,
    /// Continuing drain of a victim after a successful first steal.
    Steal,
}

impl Mode {
    fn after_hit(self) -> Mode {
        match self {
            Mode::Own => Mode::Own,
            Mode::StealFirst | Mode::Steal => Mode::Steal,
        }
    }
}

/// One virtual worker's program counter.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Pc {
    /// Atomic `fetch_add` claim on `range` (the correct pool).
    Claim { range: usize, mode: Mode },
    /// Broken claim, load half: read the cursor, remember it.
    ClaimLoad { range: usize, mode: Mode },
    /// Broken claim, store half: write back `i + 1` and take `i`.
    ClaimStore { range: usize, i: usize, mode: Mode },
    /// Compensating `fetch_sub` after an overshooting claim.
    Undo { range: usize, mode: Mode },
    /// Loading the per-range cursor snapshot (one load per step) that
    /// feeds victim selection.
    Select { loaded: Vec<usize> },
    /// Terminated.
    Done,
}

/// A bounded model of `Pool::map(n, f)` with `workers` virtual threads.
///
/// The output is the per-index claim count: the determinism contract is
/// `output == vec![1; n]` on every schedule. With `atomic: false` the
/// cursor claim is split into a load step and a store step — the lost
/// update the real `fetch_add` exists to prevent, which the explorer
/// demonstrably finds.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PoolMapModel {
    cursors: Vec<usize>,
    ends: Vec<usize>,
    atomic: bool,
    pcs: Vec<Pc>,
    claims: Vec<u8>,
}

impl PoolMapModel {
    /// The faithful model of `Pool::map(n, _)` at `workers` threads.
    pub fn new(n: usize, workers: usize) -> PoolMapModel {
        PoolMapModel::build(n, workers, true)
    }

    /// The broken variant: claims are a separate load and store.
    pub fn racy(n: usize, workers: usize) -> PoolMapModel {
        PoolMapModel::build(n, workers, false)
    }

    fn build(n: usize, workers: usize, atomic: bool) -> PoolMapModel {
        // `Pool::map` clamps the same way: never more workers than items,
        // never zero.
        let workers = workers.min(n).max(1);
        let ranges = split_ranges(n, workers);
        PoolMapModel {
            cursors: ranges.iter().map(|&(s, _)| s).collect(),
            ends: ranges.iter().map(|&(_, e)| e).collect(),
            atomic,
            pcs: (0..workers)
                .map(|w| PoolMapModel::claim_pc(atomic, w, Mode::Own))
                .collect(),
            claims: vec![0; n],
        }
    }

    fn claim_pc(atomic: bool, range: usize, mode: Mode) -> Pc {
        if atomic {
            Pc::Claim { range, mode }
        } else {
            Pc::ClaimLoad { range, mode }
        }
    }

    /// A claim of `i` on `range` landed: record it and advance `mode`.
    fn land(&mut self, t: usize, range: usize, i: usize, mode: Mode) {
        if i < self.ends[range] {
            // Cap at 3 ("three or more"): the racy variant can re-claim an
            // index unboundedly via cursor regress, and collapsing the
            // count folds those runaway futures into cycles the explorer
            // detects as livelocks instead of an infinite state space.
            self.claims[i] = (self.claims[i] + 1).min(3);
            self.pcs[t] = PoolMapModel::claim_pc(self.atomic, range, mode.after_hit());
        } else {
            self.pcs[t] = Pc::Undo { range, mode };
        }
    }
}

impl Model for PoolMapModel {
    type Output = Vec<u8>;

    fn threads(&self) -> usize {
        self.pcs.len()
    }

    fn enabled(&self, t: usize) -> bool {
        self.pcs[t] != Pc::Done
    }

    fn finished(&self, t: usize) -> bool {
        self.pcs[t] == Pc::Done
    }

    fn step(&mut self, t: usize) {
        match self.pcs[t].clone() {
            Pc::Claim { range, mode } => {
                let i = self.cursors[range];
                self.cursors[range] += 1;
                self.land(t, range, i, mode);
            }
            Pc::ClaimLoad { range, mode } => {
                let i = self.cursors[range];
                self.pcs[t] = Pc::ClaimStore { range, i, mode };
            }
            Pc::ClaimStore { range, i, mode } => {
                // The lost update: another thread may have loaded the same
                // cursor value between our load and this store.
                self.cursors[range] = i + 1;
                self.land(t, range, i, mode);
            }
            Pc::Undo { range, mode } => {
                // Saturating: with racy claims, interleaved undos can
                // otherwise push a cursor below zero.
                self.cursors[range] = self.cursors[range].saturating_sub(1);
                self.pcs[t] = match mode {
                    // After a failed own-drain or exhausted steal-drain the
                    // worker (re)enters the steal loop; a first-steal miss
                    // terminates it (`break` in `Pool::map`).
                    Mode::Own | Mode::Steal => Pc::Select { loaded: Vec::new() },
                    Mode::StealFirst => Pc::Done,
                };
            }
            Pc::Select { mut loaded } => {
                // One relaxed cursor load per step, like the real snapshot.
                let r = loaded.len();
                loaded.push(self.ends[r].saturating_sub(self.cursors[r]));
                self.pcs[t] = if loaded.len() == self.cursors.len() {
                    let victim = pick_victim(loaded).expect("at least one range");
                    PoolMapModel::claim_pc(self.atomic, victim, Mode::StealFirst)
                } else {
                    Pc::Select { loaded }
                };
            }
            Pc::Done => unreachable!("stepping a finished thread"),
        }
    }

    fn next_object(&self, t: usize) -> Option<u64> {
        match &self.pcs[t] {
            Pc::Claim { range, .. }
            | Pc::ClaimLoad { range, .. }
            | Pc::ClaimStore { range, .. }
            | Pc::Undo { range, .. } => Some(*range as u64),
            Pc::Select { loaded } => Some(loaded.len() as u64),
            Pc::Done => None,
        }
    }

    fn output(&self) -> Vec<u8> {
        self.claims.clone()
    }
}

/// A bounded model of `Pool::map_chunks`: the same claim machine over the
/// chunk index space, plus the caller's fixed-order fold.
///
/// The output is the folded total where chunk `c` contributes its claim
/// count times a per-chunk value derived from [`chunk_bounds`] — so a
/// chunk claimed twice (or never) shifts the total, exactly like a lost
/// or duplicated update would shift a sharded counter.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ChunksModel {
    inner: PoolMapModel,
    n: usize,
    /// Number of chunks, from the production [`chunk_count`] arithmetic.
    pub chunks: usize,
}

impl ChunksModel {
    /// Models `Pool::map_chunks(n, chunks_per_worker, ..)` at `workers`
    /// threads with the production chunk arithmetic.
    pub fn new(n: usize, workers: usize, chunks_per_worker: usize) -> ChunksModel {
        let chunks = chunk_count(workers, chunks_per_worker, n);
        ChunksModel {
            inner: PoolMapModel::new(chunks, workers.min(chunks)),
            n,
            chunks,
        }
    }

    /// The fold value of one chunk: Σ (i+1) over its item range.
    fn chunk_value(&self, c: usize) -> u64 {
        chunk_bounds(self.n, self.chunks, c)
            .map(|i| i as u64 + 1)
            .sum()
    }

    /// The serial result the fold must reproduce on every schedule.
    pub fn serial(&self) -> u64 {
        (0..self.chunks).map(|c| self.chunk_value(c)).sum()
    }
}

impl Model for ChunksModel {
    type Output = u64;

    fn threads(&self) -> usize {
        self.inner.threads()
    }
    fn enabled(&self, t: usize) -> bool {
        self.inner.enabled(t)
    }
    fn finished(&self, t: usize) -> bool {
        self.inner.finished(t)
    }
    fn step(&mut self, t: usize) {
        self.inner.step(t);
    }
    fn next_object(&self, t: usize) -> Option<u64> {
        self.inner.next_object(t)
    }

    fn output(&self) -> u64 {
        // The caller-side fold visits chunks in fixed index order; its
        // result depends only on the claim multiset, which is what the
        // exploration quantifies over.
        (0..self.chunks)
            .map(|c| u64::from(self.inner.claims[c]) * self.chunk_value(c))
            .sum()
    }
}

/// One memo thread's program counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum MemoPc {
    /// Waiting for the mutex.
    Lock,
    /// Holding the mutex: check the cache.
    Check,
    /// Correct protocol: build + insert while still holding the mutex.
    Fill,
    /// Release the mutex, then terminate.
    Unlock,
    /// Buggy protocol: release after the check, remembering the verdict.
    BuggyUnlock {
        /// Whether the entry was absent at check time.
        absent: bool,
    },
    /// Buggy protocol: re-acquire the mutex to insert.
    BuggyRelock,
    /// Buggy protocol: build + insert (unconditionally — the check is
    /// stale by now).
    BuggyFill,
    /// Terminated.
    Done,
}

/// A bounded model of `RoutingMemo::class`: `threads` virtual threads all
/// requesting the same `(algorithm, k)` key.
///
/// The correct protocol checks and fills inside one critical section;
/// every schedule fills exactly once. The buggy variant re-locks between
/// check and fill (check-then-act), and the explorer finds schedules
/// where two threads both observed "absent" and both fill.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemoModel {
    lock_held: bool,
    present: bool,
    fills: u8,
    hits: u8,
    pcs: Vec<MemoPc>,
    // Steers only the Check transition: release-then-relock vs fill in place.
    buggy: bool,
}

impl MemoModel {
    /// The faithful model of the memo's lock-check-fill-unlock protocol.
    pub fn new(threads: usize) -> MemoModel {
        MemoModel::build(threads, false)
    }

    /// The broken check-then-act variant.
    pub fn buggy(threads: usize) -> MemoModel {
        MemoModel::build(threads, true)
    }

    fn build(threads: usize, buggy: bool) -> MemoModel {
        MemoModel {
            lock_held: false,
            present: false,
            fills: 0,
            hits: 0,
            pcs: vec![MemoPc::Lock; threads],
            buggy,
        }
    }
}

impl Model for MemoModel {
    type Output = (u8, u8);

    fn threads(&self) -> usize {
        self.pcs.len()
    }

    fn enabled(&self, t: usize) -> bool {
        match self.pcs[t] {
            MemoPc::Lock | MemoPc::BuggyRelock => !self.lock_held,
            MemoPc::Done => false,
            _ => true,
        }
    }

    fn finished(&self, t: usize) -> bool {
        self.pcs[t] == MemoPc::Done
    }

    fn step(&mut self, t: usize) {
        match self.pcs[t] {
            MemoPc::Lock | MemoPc::BuggyRelock => {
                debug_assert!(!self.lock_held);
                self.lock_held = true;
                self.pcs[t] = if self.pcs[t] == MemoPc::BuggyRelock {
                    MemoPc::BuggyFill
                } else {
                    MemoPc::Check
                };
            }
            MemoPc::Check => {
                if self.present {
                    self.hits += 1;
                    self.pcs[t] = MemoPc::Unlock;
                } else if self.buggy {
                    self.pcs[t] = MemoPc::BuggyUnlock { absent: true };
                } else {
                    self.pcs[t] = MemoPc::Fill;
                }
            }
            MemoPc::Fill | MemoPc::BuggyFill => {
                self.present = true;
                self.fills += 1;
                self.pcs[t] = MemoPc::Unlock;
            }
            MemoPc::Unlock => {
                self.lock_held = false;
                self.pcs[t] = MemoPc::Done;
            }
            MemoPc::BuggyUnlock { absent } => {
                self.lock_held = false;
                self.pcs[t] = if absent {
                    MemoPc::BuggyRelock
                } else {
                    MemoPc::Done
                };
            }
            MemoPc::Done => unreachable!("stepping a finished thread"),
        }
    }

    fn next_object(&self, t: usize) -> Option<u64> {
        match self.pcs[t] {
            MemoPc::Done => None,
            _ => Some(0), // everything contends on the one mutex/entry
        }
    }

    fn output(&self) -> (u8, u8) {
        (self.fills, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Limits};

    #[test]
    fn pool_map_model_matches_production_split() {
        let m = PoolMapModel::new(6, 2);
        assert_eq!(m.cursors, vec![0, 3]);
        assert_eq!(m.ends, vec![3, 6]);
    }

    #[test]
    fn atomic_map_is_serial_on_every_schedule() {
        for n in 1..=5 {
            let e = explore(&PoolMapModel::new(n, 2), Limits::default());
            assert!(
                e.all_equal_to(&vec![1u8; n]),
                "n={n}: outputs {:?}, deadlocks {}",
                e.outputs,
                e.deadlocks
            );
            assert!(e.schedules >= 1);
        }
    }

    #[test]
    fn racy_map_loses_updates_somewhere() {
        // The split load/store claim must produce at least one schedule
        // whose claim counts differ from serial.
        let e = explore(&PoolMapModel::racy(2, 2), Limits::default());
        assert!(
            e.outputs.iter().any(|o| o != &vec![1u8; 2]),
            "the explorer failed to find the planted lost update: {:?}",
            e.outputs
        );
    }

    #[test]
    fn chunks_model_is_serial_on_every_schedule() {
        let m = ChunksModel::new(8, 2, 2);
        assert_eq!(m.chunks, 4);
        let serial = m.serial();
        let e = explore(&m, Limits::default());
        assert!(e.all_equal_to(&serial), "{:?}", e.outputs);
    }

    #[test]
    fn memo_fills_once_on_every_schedule() {
        for threads in [2, 3] {
            let e = explore(&MemoModel::new(threads), Limits::default());
            assert!(
                e.all_equal_to(&(1, threads as u8 - 1)),
                "threads={threads}: {:?}",
                e.outputs
            );
        }
    }

    #[test]
    fn buggy_memo_double_fills_somewhere() {
        let e = explore(&MemoModel::buggy(2), Limits::default());
        assert!(
            e.outputs.iter().any(|&(fills, _)| fills == 2),
            "the explorer failed to find the double fill: {:?}",
            e.outputs
        );
        assert_eq!(e.deadlocks, 0);
    }

    #[test]
    fn por_agrees_with_full_exploration() {
        for model in [PoolMapModel::new(4, 2), PoolMapModel::racy(3, 2)] {
            let full = explore(&model, Limits::default());
            let por = explore(
                &model,
                Limits {
                    por: true,
                    ..Limits::default()
                },
            );
            let mut a = full.outputs.clone();
            let mut b = por.outputs.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "POR must preserve the reachable outputs");
            assert_eq!(full.deadlocks, por.deadlocks);
        }
    }
}
