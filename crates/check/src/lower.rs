//! Lowering recorded sync traces to the race detector's op language, plus
//! direct semantic checks on the trace itself.
//!
//! A [`SyncTrace`](mmio_parallel::events::SyncTrace) records what the
//! instrumented pool and memo *did*; the happens-before detector wants an
//! abstract sequence of acquires, releases, atomic RMWs, and plain shared
//! accesses. The mapping mirrors the real synchronization:
//!
//! - a cursor `fetch_add`/`fetch_sub` is an [`OpKind::Rmw`] on that range's
//!   cursor object; a *hit* additionally writes the claimed result slot
//!   ([`Loc::Item`]) — the worker computes `f(i)` into memory only it may
//!   touch;
//! - `WorkerDone`/`WorkerJoin` are the release/acquire halves of
//!   `thread::join` on a per-worker handoff object — the only edge that
//!   publishes result slots to the caller;
//! - after joining all workers, the caller *reads* every claimed slot (the
//!   merge), which is exactly where a missing join materializes as a race;
//! - `MemoLock`/`MemoUnlock` are acquire/release on the memo mutex;
//!   `MemoFill`/`MemoHit` write/read the per-key entry ([`Loc::Memo`]).
//!
//! [`scan_trace`] separately checks two properties that need no clocks,
//! only counting: every index claimed at most once (`MMIO-C002` otherwise)
//! and every memo key filled at most once (`MMIO-C003`).

use mmio_analyze::{codes, Report, Severity, Span};
use mmio_parallel::events::{SyncEvent, SyncTrace};
use std::collections::HashMap;

/// A shared location the detector tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Loc {
    /// Result slot of index `i` in a `Pool::map` output.
    Item(u64),
    /// The memo entry for a hashed `(algorithm, k)` key.
    Memo(u64),
}

/// Whether an access reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Read of a shared location.
    Read,
    /// Write of a shared location.
    Write,
}

/// The detector's op language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Acquire on a sync object.
    Acquire(u64),
    /// Release on a sync object.
    Release(u64),
    /// Atomic read-modify-write (acquire + release) on a sync object.
    Rmw(u64),
    /// Plain access to a shared location.
    Access(Loc, AccessKind),
}

/// One lowered operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op {
    /// Trace-local thread that performed it.
    pub thread: u32,
    /// What it did.
    pub kind: OpKind,
}

/// Sync-object id spaces (disjoint by construction).
const CURSOR_BASE: u64 = 1 << 32;
const JOIN_BASE: u64 = 2 << 32;
const MEMO_MUTEX: u64 = 3 << 32;

/// Lowers a recorded trace to the detector's op language (see the module
/// docs for the mapping).
pub fn lower(trace: &SyncTrace) -> Vec<Op> {
    let mut ops = Vec::with_capacity(trace.len() + 16);
    let mut claimed: Vec<u64> = Vec::new();
    let mut joiner: Option<u32> = None;
    for e in &trace.events {
        let t = e.thread;
        let push = |ops: &mut Vec<Op>, kind| ops.push(Op { thread: t, kind });
        match e.event {
            SyncEvent::CursorFetchAdd {
                range,
                claimed: i,
                hit,
            } => {
                push(&mut ops, OpKind::Rmw(CURSOR_BASE + u64::from(range)));
                if hit {
                    push(&mut ops, OpKind::Access(Loc::Item(i), AccessKind::Write));
                    claimed.push(i);
                }
            }
            SyncEvent::CursorUndo { range } => {
                push(&mut ops, OpKind::Rmw(CURSOR_BASE + u64::from(range)));
            }
            SyncEvent::StealSelect { .. } => {
                // Relaxed loads of the cursors: no HB edge, no shared
                // non-atomic access. Nothing to lower.
            }
            SyncEvent::WorkerDone { worker } => {
                push(&mut ops, OpKind::Release(JOIN_BASE + u64::from(worker)));
            }
            SyncEvent::WorkerJoin { worker } => {
                push(&mut ops, OpKind::Acquire(JOIN_BASE + u64::from(worker)));
                joiner = Some(t);
            }
            SyncEvent::ChunkMerge { chunk } => {
                push(&mut ops, OpKind::Access(Loc::Item(chunk), AccessKind::Read));
            }
            SyncEvent::MemoLock => push(&mut ops, OpKind::Acquire(MEMO_MUTEX)),
            SyncEvent::MemoUnlock => push(&mut ops, OpKind::Release(MEMO_MUTEX)),
            SyncEvent::MemoHit { key } => {
                push(&mut ops, OpKind::Access(Loc::Memo(key), AccessKind::Read));
            }
            SyncEvent::MemoFill { key } => {
                push(&mut ops, OpKind::Access(Loc::Memo(key), AccessKind::Write));
            }
        }
    }
    // The caller's merge: after the joins, every claimed slot is read by
    // the joining thread. (map_chunks traces additionally carry explicit
    // ChunkMerge reads; duplicates are harmless.)
    if let Some(t) = joiner {
        claimed.sort_unstable();
        claimed.dedup();
        for i in claimed {
            ops.push(Op {
                thread: t,
                kind: OpKind::Access(Loc::Item(i), AccessKind::Read),
            });
        }
    }
    ops
}

/// Counting results of [`scan_trace`].
#[derive(Clone, Debug, Default)]
pub struct TraceScan {
    /// Successful cursor claims (hits).
    pub claims: u64,
    /// Indices claimed more than once.
    pub duplicate_claims: u64,
    /// Memo fills.
    pub fills: u64,
    /// Keys filled more than once.
    pub double_fills: u64,
}

/// Checks claim-uniqueness (`MMIO-C002`) and fill-uniqueness (`MMIO-C003`)
/// by direct counting over the trace.
pub fn scan_trace(trace: &SyncTrace, report: &mut Report) -> TraceScan {
    let mut scan = TraceScan::default();
    let mut claims: HashMap<(u32, u64), u32> = HashMap::new();
    let mut fills: HashMap<u64, u32> = HashMap::new();
    for e in &trace.events {
        match e.event {
            SyncEvent::CursorFetchAdd {
                range,
                claimed,
                hit: true,
            } => {
                scan.claims += 1;
                let c = claims.entry((range, claimed)).or_insert(0);
                *c += 1;
                if *c == 2 {
                    scan.duplicate_claims += 1;
                    report.push_with_hint(
                        codes::CONC_LOST_UPDATE,
                        Severity::Error,
                        Span::Thread(e.thread),
                        format!("index {claimed} of range {range} was claimed twice"),
                        "a duplicated claim overwrites another worker's result (lost update)",
                    );
                }
            }
            SyncEvent::MemoFill { key } => {
                scan.fills += 1;
                let c = fills.entry(key).or_insert(0);
                *c += 1;
                if *c == 2 {
                    scan.double_fills += 1;
                    report.push_with_hint(
                        codes::CONC_DOUBLE_FILL,
                        Severity::Error,
                        Span::Thread(e.thread),
                        format!("memo key {key:#x} was filled twice"),
                        "the build must stay inside the critical section that checks the cache",
                    );
                }
            }
            _ => {}
        }
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_parallel::events::TraceEvent;

    fn trace(events: Vec<(u32, SyncEvent)>) -> SyncTrace {
        SyncTrace {
            events: events
                .into_iter()
                .map(|(thread, event)| TraceEvent { thread, event })
                .collect(),
        }
    }

    #[test]
    fn clean_two_worker_trace_lowers_and_scans_clean() {
        let t = trace(vec![
            (
                1,
                SyncEvent::CursorFetchAdd {
                    range: 0,
                    claimed: 0,
                    hit: true,
                },
            ),
            (
                2,
                SyncEvent::CursorFetchAdd {
                    range: 1,
                    claimed: 1,
                    hit: true,
                },
            ),
            (
                1,
                SyncEvent::CursorFetchAdd {
                    range: 0,
                    claimed: 1,
                    hit: false,
                },
            ),
            (1, SyncEvent::CursorUndo { range: 0 }),
            (1, SyncEvent::WorkerDone { worker: 0 }),
            (2, SyncEvent::WorkerDone { worker: 1 }),
            (0, SyncEvent::WorkerJoin { worker: 0 }),
            (0, SyncEvent::WorkerJoin { worker: 1 }),
        ]);
        let ops = lower(&t);
        // Joined reads of both claimed slots appended at the end.
        assert!(matches!(
            ops.last(),
            Some(Op {
                thread: 0,
                kind: OpKind::Access(Loc::Item(1), AccessKind::Read)
            })
        ));
        let mut r = Report::new();
        let hb = crate::hb::detect_races(&ops, &mut r);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
        let scan = scan_trace(&t, &mut r);
        assert_eq!(scan.claims, 2);
        assert_eq!(scan.duplicate_claims, 0);
        assert!(!r.has_errors());
    }

    #[test]
    fn missing_join_is_a_race() {
        // Worker 1's slot is read by the main thread without joining it.
        let t = trace(vec![
            (
                1,
                SyncEvent::CursorFetchAdd {
                    range: 0,
                    claimed: 0,
                    hit: true,
                },
            ),
            (1, SyncEvent::WorkerDone { worker: 0 }),
            (
                2,
                SyncEvent::CursorFetchAdd {
                    range: 1,
                    claimed: 1,
                    hit: true,
                },
            ),
            (2, SyncEvent::WorkerDone { worker: 1 }),
            (0, SyncEvent::WorkerJoin { worker: 0 }), // worker 1 never joined
        ]);
        let mut r = Report::new();
        let hb = crate::hb::detect_races(&lower(&t), &mut r);
        assert_eq!(hb.races.len(), 1);
        assert!(matches!(hb.races[0].loc, Loc::Item(1)));
        assert!(r.has_code(mmio_analyze::codes::CONC_DATA_RACE));
    }

    #[test]
    fn duplicate_claim_fires_lost_update() {
        let t = trace(vec![
            (
                1,
                SyncEvent::CursorFetchAdd {
                    range: 0,
                    claimed: 3,
                    hit: true,
                },
            ),
            (
                2,
                SyncEvent::CursorFetchAdd {
                    range: 0,
                    claimed: 3,
                    hit: true,
                },
            ),
        ]);
        let mut r = Report::new();
        let scan = scan_trace(&t, &mut r);
        assert_eq!(scan.duplicate_claims, 1);
        assert!(r.has_code(mmio_analyze::codes::CONC_LOST_UPDATE));
    }

    #[test]
    fn same_index_different_ranges_is_fine() {
        // map_chunks reuses index 0 in each range's local coordinates?
        // No — ranges partition one global index space, but the scan keys
        // on (range, index) so equal indices in different ranges (as a
        // defensive matter) do not alias.
        let t = trace(vec![
            (
                1,
                SyncEvent::CursorFetchAdd {
                    range: 0,
                    claimed: 0,
                    hit: true,
                },
            ),
            (
                2,
                SyncEvent::CursorFetchAdd {
                    range: 1,
                    claimed: 0,
                    hit: true,
                },
            ),
        ]);
        let mut r = Report::new();
        assert_eq!(scan_trace(&t, &mut r).duplicate_claims, 0);
    }

    #[test]
    fn double_fill_fires() {
        let t = trace(vec![
            (0, SyncEvent::MemoLock),
            (0, SyncEvent::MemoFill { key: 42 }),
            (0, SyncEvent::MemoUnlock),
            (1, SyncEvent::MemoLock),
            (1, SyncEvent::MemoFill { key: 42 }),
            (1, SyncEvent::MemoUnlock),
        ]);
        let mut r = Report::new();
        let scan = scan_trace(&t, &mut r);
        assert_eq!(scan.double_fills, 1);
        assert!(r.has_code(mmio_analyze::codes::CONC_DOUBLE_FILL));
        // The mutex orders the two fills, so HB sees no race — the bug is
        // semantic (wasted duplicate build), which is why C003 exists
        // separately from C001.
        let mut r2 = Report::new();
        assert!(crate::hb::detect_races(&lower(&t), &mut r2)
            .races
            .is_empty());
    }
}
