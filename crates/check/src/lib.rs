//! # mmio-check
//!
//! Concurrency soundness for the parallel layer: the paper's bounds are
//! statements about *every* legal execution (Theorem 1 holds for all
//! schedules of the P-processor machine), so the tooling that produces
//! certificates in parallel must be correct on every interleaving too —
//! not just on the runs CI happened to observe. Three layers, stacked
//! from observation to proof:
//!
//! 1. **Recorded traces** ([`lower`], backed by `mmio-parallel`'s
//!    feature-gated sync-event instrumentation): real executions of the
//!    work-stealing pool and the routing memo, replayed through a
//!    vector-clock happens-before race detector ([`hb`]) and direct
//!    claim/fill-uniqueness scans. Witnesses one legal execution each.
//! 2. **Bounded model checking** ([`explore`], [`models`]): virtual
//!    replicas of `Pool::map`, `Pool::map_chunks`, and the memo protocol
//!    — built on the *production* decision functions (`split_ranges`,
//!    `pick_victim`, `chunk_count`, `chunk_bounds`) — explored over every
//!    reachable state at small bounds, proving byte-identical output to
//!    serial on every schedule plus absence of deadlocks, lost updates,
//!    and double fills.
//! 3. **Distributed-run audits** (in `mmio-analyze::distsim`, driven from
//!    the suite here): event-level re-verification of traced `distsim`
//!    runs across the whole registry.
//!
//! Findings use `mmio-analyze`'s diagnostic framework with the stable
//! `MMIO-Cxxx` (concurrency) and `MMIO-Dxxx` (distributed) codes, and the
//! suite self-tests its detectors against planted defects ([`fixtures`])
//! on every run. Front door: [`suite::run_suite`], wired to `mmio check`.

#![forbid(unsafe_code)]

pub mod explore;
pub mod fixtures;
pub mod hb;
pub mod lower;
pub mod models;
pub mod suite;

pub use explore::{explore, Exploration, Limits, Model};
pub use hb::{detect_races, HbAnalysis, VectorClock};
pub use lower::{lower, scan_trace, Loc, Op, OpKind};
pub use models::{ChunksModel, MemoModel, PoolMapModel};
pub use suite::{run_suite, CheckOutcome};
