//! The full `mmio check` suite: recorded-trace analysis, exhaustive
//! bounded model checking, detector self-tests, and the registry-wide
//! distributed-run audit, assembled into one report + JSON summary.
//!
//! Determinism contract: the summary contains no schedule-dependent
//! quantity. Recorded real-thread traces vary run to run (stealing is a
//! race by design), so the suite reports only their *verdicts* (race,
//! duplicate-claim, and double-fill counts — all provably zero), never
//! raw event counts; explorer statistics are exact state-space counts and
//! identical on every machine. `mmio check --json` is therefore
//! byte-identical across `--threads 1/2/8` and across runs.

use crate::explore::{explore, Exploration, Limits};
use crate::fixtures;
use crate::hb::detect_races;
use crate::lower::{lower, scan_trace};
use crate::models::{ChunksModel, MemoModel, PoolMapModel};
use mmio_algos::registry::all_base_graphs;
use mmio_analyze::{audit_dist_trace, codes, Report, Severity, Span};
use mmio_cdag::build::build_cdag;
use mmio_core::transport::RoutingMemo;
use mmio_parallel::assign::{all_on_one, block_per_rank, by_top_subproblem, cyclic_per_rank};
use mmio_parallel::distsim::simulate_traced;
use mmio_parallel::events::{record, SyncTrace};
use mmio_parallel::Pool;
use mmio_pebble::orders::recursive_order;
use serde::{Serialize, Value};

/// One analyzed real-thread recording: what was checked and what the
/// detectors concluded. All counts are provably schedule-independent.
#[derive(Clone, Debug)]
pub struct TraceVerdict {
    /// What was recorded (e.g. `"pool::map 2 threads"`).
    pub name: String,
    /// Happens-before races found.
    pub races: u64,
    /// Indices claimed twice.
    pub duplicate_claims: u64,
    /// Memo keys filled twice.
    pub double_fills: u64,
}

/// One bounded model-checking run.
#[derive(Clone, Debug)]
pub struct ExplorerVerdict {
    /// The explored configuration (e.g. `"map n=6 workers=2"`).
    pub name: String,
    /// Distinct reachable states.
    pub states: u64,
    /// Distinct maximal schedules.
    pub schedules: u64,
    /// Distinct terminal outputs (1 = deterministic).
    pub outputs: u64,
    /// Deadlocked states.
    pub deadlocks: u64,
    /// Cycles in the state graph (schedules that can run forever).
    pub livelocks: u64,
    /// Whether every schedule reproduced the serial output.
    pub serial_equal: bool,
}

/// One detector self-test on a planted defect.
#[derive(Clone, Debug)]
pub struct SelfTest {
    /// Fixture name.
    pub name: String,
    /// The code the planted defect must fire.
    pub expected: &'static str,
    /// Whether it fired.
    pub fired: bool,
    /// Every code the fixture fired (sorted), for the curious.
    pub all_codes: Vec<String>,
}

/// The complete outcome of one `mmio check` invocation.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// Diagnostics from the clean-path analyses (traces, explorer,
    /// registry sweep). Planted-fixture diagnostics are *not* merged here
    /// — they are expected findings, accounted in `selftests`.
    pub report: Report,
    /// Recorded-trace verdicts.
    pub traces: Vec<TraceVerdict>,
    /// Model-checker verdicts.
    pub explorations: Vec<ExplorerVerdict>,
    /// Detector self-tests.
    pub selftests: Vec<SelfTest>,
    /// Distributed-run audits executed in the registry sweep.
    pub distsim_audits: u64,
}

impl CheckOutcome {
    /// Whether the whole suite passed: no error findings on the clean
    /// paths and every self-test fired its code.
    pub fn ok(&self) -> bool {
        !self.report.has_errors() && self.selftests.iter().all(|s| s.fired)
    }
}

/// Records one real execution and runs both trace detectors over it.
fn check_recording(name: &str, report: &mut Report, f: impl FnOnce()) -> TraceVerdict {
    let ((), trace) = record(f);
    verdict_of(name, &trace, report)
}

fn verdict_of(name: &str, trace: &SyncTrace, report: &mut Report) -> TraceVerdict {
    let hb = detect_races(&lower(trace), report);
    let scan = scan_trace(trace, report);
    TraceVerdict {
        name: name.to_string(),
        races: hb.races.len() as u64,
        duplicate_claims: scan.duplicate_claims,
        double_fills: scan.double_fills,
    }
}

/// Runs one exploration and folds its verdict into the report.
fn check_exploration<M: crate::explore::Model>(
    name: &str,
    model: &M,
    serial: &M::Output,
    report: &mut Report,
) -> ExplorerVerdict {
    let e: Exploration<M::Output> = explore(model, Limits::default());
    if e.truncated {
        report.push(
            codes::CONC_SCHEDULE_DIVERGES,
            Severity::Warning,
            Span::Global,
            format!("{name}: state space truncated; exploration is not exhaustive"),
        );
    }
    if e.deadlocks > 0 {
        report.push(
            codes::CONC_DEADLOCK,
            Severity::Error,
            Span::Global,
            format!("{name}: {} deadlocked state(s) reachable", e.deadlocks),
        );
    }
    if e.livelocks > 0 {
        report.push(
            codes::CONC_DEADLOCK,
            Severity::Error,
            Span::Global,
            format!(
                "{name}: {} state-graph cycle(s) — some schedule never terminates",
                e.livelocks
            ),
        );
    }
    for out in e.outputs.iter().filter(|o| *o != serial) {
        report.push_with_hint(
            codes::CONC_SCHEDULE_DIVERGES,
            Severity::Error,
            Span::Global,
            format!("{name}: a schedule produced {out:?}, serial produces {serial:?}"),
            "the determinism contract must hold on every interleaving",
        );
    }
    ExplorerVerdict {
        name: name.to_string(),
        states: e.states,
        schedules: e.schedules,
        outputs: e.outputs.len() as u64,
        deadlocks: e.deadlocks,
        livelocks: e.livelocks,
        serial_equal: e.all_equal_to(serial),
    }
}

fn selftest(name: &str, expected: &'static str, report: Report) -> SelfTest {
    SelfTest {
        name: name.to_string(),
        expected,
        fired: report.has_code(expected),
        all_codes: report.codes().iter().map(|c| c.to_string()).collect(),
    }
}

/// Runs the complete check suite. The pool argument is deliberately
/// absent: the suite fixes its own thread counts so its output never
/// depends on `--threads` (that independence is itself golden-tested).
pub fn run_suite() -> CheckOutcome {
    let mut report = Report::new();
    let mut traces = Vec::new();
    let mut explorations = Vec::new();

    // 1. Recorded real executions: the instrumented pool and memo, checked
    //    by the happens-before detector and the trace scanners.
    for threads in [2, 3] {
        traces.push(check_recording(
            &format!("pool::map {threads} threads"),
            &mut report,
            || {
                let out = Pool::new(threads).map(64, |i| i * i);
                assert_eq!(out.len(), 64);
            },
        ));
    }
    traces.push(check_recording(
        "pool::map_chunks 2 threads",
        &mut report,
        || {
            let total =
                Pool::new(2).map_chunks(128, 2, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| a + b);
            assert_eq!(total, 127 * 128 / 2);
        },
    ));
    traces.push(check_recording(
        "routing memo fill + hit",
        &mut report,
        || {
            let pool = Pool::serial();
            let memo = RoutingMemo::new();
            let base = mmio_algos::strassen::strassen();
            let a = memo.class(&base, 1, &pool);
            let b = memo.class(&base, 1, &pool);
            assert!(a.is_some() && b.is_some());
        },
    ));

    // 2. Bounded model checking: every interleaving of the virtual pool
    //    and memo at the acceptance configurations.
    for n in 1..=6 {
        let model = PoolMapModel::new(n, 2);
        explorations.push(check_exploration(
            &format!("map n={n} workers=2"),
            &model,
            &vec![1u8; n],
            &mut report,
        ));
    }
    for n in [3, 4] {
        let model = PoolMapModel::new(n, 3);
        explorations.push(check_exploration(
            &format!("map n={n} workers=3"),
            &model,
            &vec![1u8; n],
            &mut report,
        ));
    }
    let chunks = ChunksModel::new(8, 2, 2); // 2 threads × 2 chunks/worker = 4 chunks
    let serial = chunks.serial();
    explorations.push(check_exploration(
        "map_chunks n=8 chunks=4 workers=2",
        &chunks,
        &serial,
        &mut report,
    ));
    for threads in [2, 3] {
        let model = MemoModel::new(threads);
        explorations.push(check_exploration(
            &format!("memo fill {threads} threads"),
            &model,
            &(1, threads as u8 - 1),
            &mut report,
        ));
    }

    // 3. Detector self-tests on the planted defect fixtures. Their
    //    (expected) diagnostics go into throwaway reports.
    let mut selftests = Vec::new();
    {
        let mut r = Report::new();
        scan_trace(&fixtures::planted_lost_update(), &mut r);
        detect_races(&lower(&fixtures::planted_lost_update()), &mut r);
        selftests.push(selftest("planted lost update", codes::CONC_LOST_UPDATE, r));
    }
    {
        let mut r = Report::new();
        scan_trace(&fixtures::planted_double_fill(), &mut r);
        selftests.push(selftest("planted double fill", codes::CONC_DOUBLE_FILL, r));
    }
    {
        let mut r = Report::new();
        detect_races(&lower(&fixtures::planted_unjoined_read()), &mut r);
        selftests.push(selftest("planted unjoined read", codes::CONC_DATA_RACE, r));
    }
    {
        let mut r = Report::new();
        let (g, a, t) = fixtures::planted_unmatched_recv();
        audit_dist_trace(&g, &a, &t, &mut r);
        selftests.push(selftest(
            "planted unmatched recv",
            codes::DIST_UNMATCHED_RECV,
            r,
        ));
    }
    {
        // The explorer's own teeth: the broken claim and the broken memo
        // protocol must be *found*. Lowered to self-tests so a silently
        // weakened explorer fails the suite.
        let e = explore(&PoolMapModel::racy(2, 2), Limits::default());
        let mut r = Report::new();
        if e.outputs.iter().any(|o| o != &vec![1u8; 2]) {
            r.push(
                codes::CONC_LOST_UPDATE,
                Severity::Error,
                Span::Global,
                "torn claim loses an update (found by exploration)",
            );
        }
        selftests.push(selftest(
            "explorer finds torn claim",
            codes::CONC_LOST_UPDATE,
            r,
        ));
        let e = explore(&MemoModel::buggy(2), Limits::default());
        let mut r = Report::new();
        if e.outputs.iter().any(|&(fills, _)| fills >= 2) {
            r.push(
                codes::CONC_DOUBLE_FILL,
                Severity::Error,
                Span::Global,
                "check-then-act memo double-fills (found by exploration)",
            );
        }
        selftests.push(selftest(
            "explorer finds double fill",
            codes::CONC_DOUBLE_FILL,
            r,
        ));
    }

    // 4. Registry-wide distributed-run audit: every algorithm at r ≤ 2,
    //    several assignment strategies, every run re-verified eventwise.
    let mut distsim_audits = 0u64;
    for base in all_base_graphs() {
        for r in 1..=2u32 {
            let g = build_cdag(&base, r);
            let order = recursive_order(&g);
            let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(0) + 1;
            let m = need.max(16);
            let assignments = [
                cyclic_per_rank(&g, 4),
                block_per_rank(&g, 4),
                by_top_subproblem(&g, 4),
                all_on_one(&g, 4),
            ];
            for a in &assignments {
                let t = simulate_traced(&g, a, &order, m);
                let audit = audit_dist_trace(&g, a, &t, &mut report);
                distsim_audits += 1;
                debug_assert!(audit.events as u64 >= audit.execs);
            }
        }
    }

    CheckOutcome {
        report,
        traces,
        explorations,
        selftests,
        distsim_audits,
    }
}

impl Serialize for TraceVerdict {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("races".to_string(), Value::UInt(self.races)),
            (
                "duplicate_claims".to_string(),
                Value::UInt(self.duplicate_claims),
            ),
            ("double_fills".to_string(), Value::UInt(self.double_fills)),
        ])
    }
}

impl Serialize for ExplorerVerdict {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("states".to_string(), Value::UInt(self.states)),
            ("schedules".to_string(), Value::UInt(self.schedules)),
            ("outputs".to_string(), Value::UInt(self.outputs)),
            ("deadlocks".to_string(), Value::UInt(self.deadlocks)),
            ("livelocks".to_string(), Value::UInt(self.livelocks)),
            ("serial_equal".to_string(), Value::Bool(self.serial_equal)),
        ])
    }
}

impl Serialize for SelfTest {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "expected".to_string(),
                Value::Str(self.expected.to_string()),
            ),
            ("fired".to_string(), Value::Bool(self.fired)),
            (
                "all_codes".to_string(),
                Value::Array(
                    self.all_codes
                        .iter()
                        .map(|c| Value::Str(c.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Serialize for CheckOutcome {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("ok".to_string(), Value::Bool(self.ok())),
            ("traces".to_string(), self.traces.to_value()),
            ("explorations".to_string(), self.explorations.to_value()),
            ("selftests".to_string(), self.selftests.to_value()),
            (
                "distsim_audits".to_string(),
                Value::UInt(self.distsim_audits),
            ),
            ("report".to_string(), self.report.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_is_clean_and_deterministic() {
        let a = run_suite();
        assert!(a.ok(), "{:?}", a.report.diagnostics);
        assert_eq!(a.report.error_count(), 0);
        // Every recorded trace is race- and anomaly-free.
        for t in &a.traces {
            assert_eq!(
                (t.races, t.duplicate_claims, t.double_fills),
                (0, 0, 0),
                "{}",
                t.name
            );
        }
        // Every exploration proved serial equivalence exhaustively.
        for e in &a.explorations {
            assert!(e.serial_equal, "{}: {e:?}", e.name);
            assert_eq!(e.outputs, 1);
            assert_eq!(e.deadlocks, 0);
            assert_eq!(e.livelocks, 0);
            assert!(e.schedules >= 1);
        }
        // Every self-test fired its exact code.
        for s in &a.selftests {
            assert!(s.fired, "{} must fire {}", s.name, s.expected);
        }
        assert!(a.distsim_audits > 0);
        // Byte-identical JSON on repeat runs (the CLI golden test re-checks
        // this across thread counts through the real binary).
        let b = run_suite();
        assert_eq!(
            serde_json::to_string(&a.to_value()).unwrap(),
            serde_json::to_string(&b.to_value()).unwrap()
        );
    }
}
