//! The bounded interleaving model checker: exhaustive exploration of a
//! virtual scheduler's state space.
//!
//! A [`Model`] is a small deterministic transition system: a set of
//! virtual threads, each with an enabled/disabled next step, stepping
//! under an arbitrary scheduler. [`explore`] walks *every* reachable
//! state by depth-first search with state-hashing — two interleavings
//! that reach the same state share their future, so the walk traverses
//! the state graph once, not the (exponentially many) schedules.
//! The number of distinct acyclic schedules is still computed exactly, by
//! dynamic programming over the same memo table: `schedules(s) = Σ_t
//! schedules(step(s, t))`, with terminal states counting 1. Back edges
//! (a state reachable from itself — possible in deliberately broken
//! models) are detected with a gray set and reported as livelocks.
//!
//! Every terminal state's output is collected (deduplicated); a state
//! with no enabled thread and an unfinished thread is a deadlock. The
//! caller compares [`Exploration::outputs`] against the serial result:
//! one output equal to serial on every schedule *is* the determinism
//! proof for the bounded configuration.
//!
//! A conservative partial-order reduction is available ([`Limits::por`]):
//! when an enabled thread's next step is invisible (touches no shared
//! object — [`Model::next_object`] returns `None`), that single thread is
//! a persistent set: an invisible step commutes with every other thread's
//! steps and cannot enable or disable them, so exploring it first loses
//! no behavior. Exhaustive and reduced exploration are cross-checked in
//! the test suite.

use std::collections::HashMap;
use std::hash::Hash;

/// A virtual concurrent program the explorer can drive.
pub trait Model: Clone + Eq + Hash {
    /// Terminal result of one complete execution.
    type Output: Clone + Eq + std::fmt::Debug;

    /// Number of virtual threads.
    fn threads(&self) -> usize;

    /// Whether thread `t` has an enabled next step.
    fn enabled(&self, t: usize) -> bool;

    /// Whether thread `t` has terminated.
    fn finished(&self, t: usize) -> bool;

    /// Executes thread `t`'s next step. Only called when enabled.
    fn step(&mut self, t: usize);

    /// The shared object thread `t`'s next step touches, or `None` for a
    /// purely thread-local step. Used only by partial-order reduction.
    fn next_object(&self, t: usize) -> Option<u64>;

    /// The output of a terminal state (all threads finished).
    fn output(&self) -> Self::Output;
}

/// Exploration limits and switches.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Abort (marking the result truncated) past this many distinct states.
    pub max_states: usize,
    /// Enable the invisible-step partial-order reduction.
    pub por: bool,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_states: 1 << 22,
            por: false,
        }
    }
}

/// The result of exploring a model's full bounded state space.
#[derive(Clone, Debug)]
pub struct Exploration<O> {
    /// Distinct reachable states visited.
    pub states: u64,
    /// Exact number of distinct maximal *acyclic* schedules (saturating).
    pub schedules: u64,
    /// Distinct terminal outputs, in first-reached order.
    pub outputs: Vec<O>,
    /// Distinct deadlocked states (some thread unfinished, none enabled).
    pub deadlocks: u64,
    /// Back edges found: a state reachable from itself, i.e. a schedule
    /// that can run forever without terminating (livelock).
    pub livelocks: u64,
    /// Whether the walk hit `max_states` and stopped early.
    pub truncated: bool,
}

impl<O: Eq> Exploration<O> {
    /// Whether every schedule terminated in the single expected output.
    pub fn all_equal_to(&self, expected: &O) -> bool {
        !self.truncated
            && self.deadlocks == 0
            && self.livelocks == 0
            && self.outputs.len() == 1
            && self.outputs[0] == *expected
    }
}

/// One in-progress state on the explicit DFS stack.
struct Frame<M: Model> {
    state: M,
    /// Successors not yet explored.
    pending: Vec<M>,
    /// Accumulated schedule count of explored successors.
    count: u64,
}

/// The enabled successors of `state`, after the optional persistent-set
/// reduction; empty iff `state` is maximal (terminal or deadlocked).
fn successors<M: Model>(state: &M, limits: Limits) -> Vec<M> {
    let enabled: Vec<usize> = (0..state.threads()).filter(|&t| state.enabled(t)).collect();
    // Persistent-set reduction: an invisible next step commutes with
    // everything and cannot enable/disable other threads, so it alone is
    // a sound persistent set.
    let pick: Vec<usize> = if limits.por {
        match enabled.iter().find(|&&t| state.next_object(t).is_none()) {
            Some(&t) => vec![t],
            None => enabled,
        }
    } else {
        enabled
    };
    pick.into_iter()
        .map(|t| {
            let mut next = state.clone();
            next.step(t);
            next
        })
        .collect()
}

/// Exhaustively explores `model`'s bounded state space under `limits`.
///
/// Iterative DFS with an explicit stack (model state spaces can be deep)
/// and a gray set for cycle detection: an edge back into an in-progress
/// state is a livelock — some schedule revisits a state and can therefore
/// run forever. Cyclic futures contribute no terminal schedules to the
/// count; every reachable terminal output is still collected, because
/// every edge is traversed exactly once.
pub fn explore<M: Model>(model: &M, limits: Limits) -> Exploration<M::Output> {
    let mut memo: HashMap<M, u64> = HashMap::new();
    let mut outputs: Vec<M::Output> = Vec::new();
    let mut deadlocks = 0u64;
    let mut livelocks = 0u64;
    let mut truncated = false;
    let mut gray: std::collections::HashSet<M> = std::collections::HashSet::new();
    let mut stack: Vec<Frame<M>> = Vec::new();
    let mut root_count = 0u64;

    // Opens a frame for a not-yet-visited state, or resolves it on the
    // spot when terminal. Returns the resolved count, or None if pushed.
    let mut open = |state: M,
                    memo: &mut HashMap<M, u64>,
                    gray: &mut std::collections::HashSet<M>,
                    stack: &mut Vec<Frame<M>>|
     -> Option<u64> {
        if memo.len() + gray.len() >= limits.max_states {
            truncated = true;
            return Some(0);
        }
        let pending = successors(&state, limits);
        if pending.is_empty() {
            if (0..state.threads()).all(|t| state.finished(t)) {
                let out = state.output();
                if !outputs.contains(&out) {
                    outputs.push(out);
                }
            } else {
                deadlocks += 1;
            }
            memo.insert(state, 1);
            Some(1)
        } else {
            gray.insert(state.clone());
            stack.push(Frame {
                state,
                pending,
                count: 0,
            });
            None
        }
    };

    if let Some(c) = open(model.clone(), &mut memo, &mut gray, &mut stack) {
        root_count = c;
    }
    while !stack.is_empty() {
        let next = stack.last_mut().expect("nonempty").pending.pop();
        match next {
            Some(next) => {
                let resolved = if let Some(&c) = memo.get(&next) {
                    Some(c)
                } else if gray.contains(&next) {
                    // Back edge: `next` is an ancestor of itself.
                    livelocks += 1;
                    Some(0)
                } else {
                    // Either resolves on the spot or pushes a child frame
                    // (in which case the child's count flows up at pop).
                    open(next, &mut memo, &mut gray, &mut stack)
                };
                if let Some(c) = resolved {
                    let top = stack.last_mut().expect("frame still open");
                    top.count = top.count.saturating_add(c);
                }
            }
            None => {
                let Frame { state, count, .. } = stack.pop().expect("nonempty");
                gray.remove(&state);
                memo.insert(state, count);
                match stack.last_mut() {
                    Some(parent) => parent.count = parent.count.saturating_add(count),
                    None => root_count = count,
                }
            }
        }
    }

    Exploration {
        states: memo.len() as u64,
        schedules: root_count,
        outputs,
        deadlocks,
        livelocks,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each appending their id to a shared log: 2 interleavings
    /// of 2 steps each... with one step per thread, schedules = 2.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Appender {
        log: Vec<u8>,
        done: [bool; 2],
    }

    impl Model for Appender {
        type Output = Vec<u8>;
        fn threads(&self) -> usize {
            2
        }
        fn enabled(&self, t: usize) -> bool {
            !self.done[t]
        }
        fn finished(&self, t: usize) -> bool {
            self.done[t]
        }
        fn step(&mut self, t: usize) {
            self.log.push(t as u8);
            self.done[t] = true;
        }
        fn next_object(&self, _t: usize) -> Option<u64> {
            Some(0) // both touch the shared log
        }
        fn output(&self) -> Vec<u8> {
            self.log.clone()
        }
    }

    #[test]
    fn appender_has_two_schedules_two_outputs() {
        let e = explore(
            &Appender {
                log: vec![],
                done: [false; 2],
            },
            Limits::default(),
        );
        assert_eq!(e.schedules, 2);
        assert_eq!(e.outputs.len(), 2);
        assert_eq!(e.deadlocks, 0);
        assert!(!e.truncated);
    }

    /// Classic deadlock: two threads acquiring two locks in opposite order.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct DiningPair {
        locks: [Option<u8>; 2],
        pc: [u8; 2], // 0: want first lock, 1: want second, 2: done (drops both)
    }

    impl DiningPair {
        fn wants(&self, t: usize) -> usize {
            // Thread 0 takes lock 0 then 1; thread 1 takes 1 then 0.
            match (t, self.pc[t]) {
                (0, 0) => 0,
                (0, 1) => 1,
                (1, 0) => 1,
                (1, 1) => 0,
                _ => unreachable!(),
            }
        }
    }

    impl Model for DiningPair {
        type Output = u8;
        fn threads(&self) -> usize {
            2
        }
        fn enabled(&self, t: usize) -> bool {
            self.pc[t] < 2 && self.locks[self.wants(t)].is_none()
        }
        fn finished(&self, t: usize) -> bool {
            self.pc[t] == 2
        }
        fn step(&mut self, t: usize) {
            let l = self.wants(t);
            self.locks[l] = Some(t as u8);
            self.pc[t] += 1;
            if self.pc[t] == 2 {
                // Done: release everything held.
                for slot in &mut self.locks {
                    if *slot == Some(t as u8) {
                        *slot = None;
                    }
                }
            }
        }
        fn next_object(&self, t: usize) -> Option<u64> {
            Some(self.wants(t) as u64)
        }
        fn output(&self) -> u8 {
            0
        }
    }

    #[test]
    fn opposite_lock_order_deadlocks() {
        let e = explore(
            &DiningPair {
                locks: [None; 2],
                pc: [0; 2],
            },
            Limits::default(),
        );
        assert!(e.deadlocks > 0, "the classic deadlock must be found");
        assert_eq!(e.outputs, vec![0]); // the non-deadlocking schedules finish
    }

    /// A thread whose steps are all invisible: POR collapses the
    /// interleavings without changing outputs.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct OneLocal {
        local: u8,
        shared: Vec<u8>,
        done: [bool; 2],
    }

    impl Model for OneLocal {
        type Output = (u8, Vec<u8>);
        fn threads(&self) -> usize {
            2
        }
        fn enabled(&self, t: usize) -> bool {
            !self.done[t]
        }
        fn finished(&self, t: usize) -> bool {
            self.done[t]
        }
        fn step(&mut self, t: usize) {
            if t == 0 {
                self.local += 1;
            } else {
                self.shared.push(9);
            }
            self.done[t] = true;
        }
        fn next_object(&self, t: usize) -> Option<u64> {
            (t == 1).then_some(0)
        }
        fn output(&self) -> (u8, Vec<u8>) {
            (self.local, self.shared.clone())
        }
    }

    #[test]
    fn por_preserves_outputs_and_deadlocks() {
        let m = OneLocal {
            local: 0,
            shared: vec![],
            done: [false; 2],
        };
        let full = explore(&m, Limits::default());
        let por = explore(
            &m,
            Limits {
                por: true,
                ..Limits::default()
            },
        );
        assert_eq!(full.outputs, por.outputs);
        assert_eq!(full.deadlocks, por.deadlocks);
        assert_eq!(full.schedules, 2);
        assert_eq!(por.schedules, 1, "POR collapses the local-step order");
    }

    #[test]
    fn truncation_reports_honestly() {
        let e = explore(
            &Appender {
                log: vec![],
                done: [false; 2],
            },
            Limits {
                max_states: 1,
                por: false,
            },
        );
        assert!(e.truncated);
    }
}
