//! Property: for any registry base and legal depth, an engine-emitted
//! certificate survives serialize → deserialize → re-serialize byte-for-byte
//! and re-verifies identically (satellite of the mmio-cert tentpole).

use mmio_cert::{verify, Certificate};
use mmio_core::transport::{emit_certificate, RoutingClass};
use mmio_parallel::Pool;
use proptest::prelude::*;

fn cheap_bases() -> Vec<mmio_cdag::BaseGraph> {
    vec![
        mmio_algos::strassen::strassen(),
        mmio_algos::strassen::winograd(),
        mmio_algos::classical::classical(2),
    ]
}

fn roundtrip_identity(cert: &Certificate, what: &str) {
    let json = cert.to_json();
    let back: Certificate =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("{what}: decode failed: {e}"));
    assert_eq!(
        back.to_json(),
        json,
        "{what}: bytes drifted across round-trip"
    );
    let v1 = verify(cert);
    let v2 = verify(&back);
    assert_eq!(v1.accepted, v2.accepted, "{what}: verdict drifted");
    assert_eq!(v1.rejections, v2.rejections, "{what}: rejections drifted");
    assert!(
        v1.accepted,
        "{what}: engine cert rejected: {:?}",
        v1.rejections
    );
}

proptest! {
    #[test]
    fn routing_cert_roundtrips(algo in 0usize..3, k in 1u32..3, extra in 0u32..2) {
        let base = cheap_bases().swap_remove(algo);
        let r = k + extra;
        let pool = Pool::new(1);
        if let Some(class) = RoutingClass::build(&base, k, &pool) {
            let cert = emit_certificate(&class, r);
            roundtrip_identity(&cert, &format!("{} k={k} r={r}", base.name()));
        }
    }

    #[test]
    fn schedule_and_sweep_certs_roundtrip(algo in 0usize..3, slack in 0usize..8) {
        use mmio_cdag::build::build_cdag;
        use mmio_pebble::cert::{emit_schedule_certificate, emit_sweep_certificate};
        use mmio_pebble::sweep::sweep;
        use mmio_pebble::{orders, AutoScheduler, PolicySpec};

        let base = cheap_bases().swap_remove(algo);
        let g = build_cdag(&base, 2);
        let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap() + 1;
        let m = need + slack;
        let sched = AutoScheduler::try_new(&g, m).unwrap();
        let order = orders::rank_order(&g);
        let mut policy = PolicySpec::Lru.instantiate(g.n_vertices());
        let (_, schedule) = sched.run_recorded(&order, &mut *policy);
        let cert = emit_schedule_certificate(&g, m, &schedule);
        roundtrip_identity(&cert, &format!("{} schedule m={m}", base.name()));

        let pool = Pool::new(1);
        let points = sweep(&g, &[&order], &[PolicySpec::Lru], &[m], &pool);
        let cert = emit_sweep_certificate(&g, &PolicySpec::Lru, &points);
        roundtrip_identity(&cert, &format!("{} sweep m={m}", base.name()));
    }
}
