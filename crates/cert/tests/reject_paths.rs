//! Regression tests for the verifier's typed-rejection paths — the
//! sites the static auditor proves panic-free must keep answering with
//! stable codes, never by unwinding. Each test pins one previously
//! untested `MMIO-V0xx` rejection.

use mmio_cert::format::{Payload, RoutingPayload, SchedulePayload};
use mmio_cert::{fixtures, verify, verify_json, Certificate};

fn routing_mut(cert: &mut Certificate) -> &mut RoutingPayload {
    match &mut cert.payload {
        Payload::Routing(p) => p,
        other => panic!("expected routing payload, got {other:?}"),
    }
}

fn schedule_mut(cert: &mut Certificate) -> &mut SchedulePayload {
    match &mut cert.payload {
        Payload::Schedule(p) => p,
        other => panic!("expected schedule payload, got {other:?}"),
    }
}

#[test]
fn out_of_range_params_reject_with_v004() {
    // k = 0 breaks the Routing Theorem's 1 ≤ k precondition.
    let mut low = fixtures::unit_routing();
    routing_mut(&mut low).k = 0;
    let v = verify(&low);
    assert!(!v.accepted);
    assert!(v.has_code("MMIO-V004"), "{:?}", v.rejections);

    // k > r inverts the Fact-1 transport direction.
    let mut inverted = fixtures::unit_routing();
    routing_mut(&mut inverted).k = 5;
    let v = verify(&inverted);
    assert!(!v.accepted);
    assert!(v.has_code("MMIO-V004"), "{:?}", v.rejections);
}

#[test]
fn vertex_and_group_overload_reject_with_v012_v013() {
    // Route the same input-output pair nine times: vertex 4 (the
    // product) and its copy group are hit 9 > 6a^k = 6 times. The pair
    // duplication and path count are also wrong — the verifier must
    // still reach and report the congestion recount.
    let mut cert = fixtures::unit_routing();
    routing_mut(&mut cert).paths = vec![vec![0, 1, 4, 5]; 9];
    let v = verify(&cert);
    assert!(!v.accepted);
    assert!(v.has_code("MMIO-V012"), "{:?}", v.rejections);
    assert!(v.has_code("MMIO-V013"), "{:?}", v.rejections);
}

#[test]
fn compute_of_an_input_rejects_with_v024() {
    // Replay the legal unit schedule but compute vertex 0 (an input)
    // instead of loading it.
    let mut cert = fixtures::unit_schedule();
    let p = schedule_mut(&mut cert);
    assert_eq!(&p.ops[..1], "L");
    assert_eq!(p.vertices[0], 0);
    p.ops.replace_range(..1, "C");
    let v = verify(&cert);
    assert!(!v.accepted);
    assert!(v.has_code("MMIO-V024"), "{:?}", v.rejections);
}

#[test]
fn hostile_json_yields_a_renderable_verdict_not_a_panic() {
    for bad in [
        "",
        "not json at all",
        "[1,2,3]",
        "{}",
        r#"{"version":1,"kind":"routing"}"#,
        r#"{"version":1,"kind":"routing","base":null,"payload":{}}"#,
        "{\"version\":1,\"kind\":\"routing\",\"base\":\"\u{0000}\"}",
    ] {
        let v = verify_json(bad);
        assert!(!v.accepted, "{bad:?} must be rejected");
        assert!(!v.rejections.is_empty(), "{bad:?}: rejected with no code");
        // The verdict itself must always render to one JSON document.
        let rendered = v.to_json();
        assert!(
            rendered.contains("\"accepted\""),
            "verdict render degraded: {rendered}"
        );
    }
}
