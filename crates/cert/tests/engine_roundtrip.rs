//! Engine-emitted certificates must verify cleanly through the standalone
//! verifier — the zero-false-reject half of the harness contract — and the
//! serialized bytes must be identical across worker thread counts.

use mmio_cdag::build::build_cdag;
use mmio_cdag::BaseGraph;
use mmio_cert::format::Payload;

use mmio_cert::{verify, verify_json, Certificate};
use mmio_core::transport::{emit_certificate, RoutingClass};
use mmio_parallel::Pool;
use mmio_pebble::cert::{emit_schedule_certificate, emit_sweep_certificate};
use mmio_pebble::sweep::sweep;
use mmio_pebble::{orders, AutoScheduler, PolicySpec};

fn assert_clean(cert: &Certificate, what: &str) {
    let v = verify(cert);
    assert!(
        v.accepted,
        "{what}: in-memory rejections {:?}",
        v.rejections
    );
    let v = verify_json(&cert.to_json());
    assert!(
        v.accepted,
        "{what}: round-trip rejections {:?}",
        v.rejections
    );
}

/// Depth caps matching the analyzer's idiom: big bases stay shallow.
fn routing_k(base: &BaseGraph) -> u32 {
    if base.a() <= 4 {
        2
    } else {
        1
    }
}

#[test]
fn routing_certificates_verify_across_registry() {
    let pool = Pool::new(2);
    for base in mmio_algos::registry::fast_base_graphs() {
        let k = routing_k(&base);
        let r = k + 1; // more than one copy, so transport is non-trivial
        let Some(class) = RoutingClass::build(&base, k, &pool) else {
            continue;
        };
        let cert = emit_certificate(&class, r);
        assert_clean(&cert, base.name());
    }
}

#[test]
fn schedule_certificates_verify() {
    let base = mmio_algos::strassen::strassen();
    for r in [1u32, 2] {
        let g = build_cdag(&base, r);
        let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap() + 1;
        let m = need + 4;
        let sched = AutoScheduler::try_new(&g, m).unwrap();
        let order = orders::rank_order(&g);
        let mut policy = PolicySpec::Lru.instantiate(g.n_vertices());
        let (stats, schedule) = sched.run_recorded(&order, &mut *policy);
        let cert = emit_schedule_certificate(&g, m, &schedule);
        // The emitter's replay must agree with the engine's own accounting.
        match &cert.payload {
            Payload::Schedule(p) => {
                assert_eq!(
                    (p.loads, p.stores, p.computes),
                    (stats.loads, stats.stores, stats.computes)
                );
            }
            other => panic!("wrong payload kind {}", other.kind()),
        }
        assert_clean(&cert, &format!("strassen schedule r={r}"));
    }
}

#[test]
fn sweep_certificates_verify() {
    let pool = Pool::new(2);
    let base = mmio_algos::strassen::strassen();
    let g = build_cdag(&base, 2);
    let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap() + 1;
    let order = orders::rank_order(&g);
    let ms = [2, need, 4 * need];
    let points = sweep(&g, &[&order], &[PolicySpec::Lru], &ms, &pool);
    let cert = emit_sweep_certificate(&g, &PolicySpec::Lru, &points);
    match &cert.payload {
        Payload::Sweep(p) => {
            assert_eq!(p.feasible, vec![false, true, true]);
        }
        other => panic!("wrong payload kind {}", other.kind()),
    }
    assert_clean(&cert, "strassen lru sweep r=2");
}

#[test]
fn certificate_bytes_stable_across_thread_counts() {
    let base = mmio_algos::strassen::strassen();
    let mut routing_jsons = Vec::new();
    let mut sweep_jsons = Vec::new();
    for threads in [1usize, 2, 8] {
        let pool = Pool::new(threads);
        let class = RoutingClass::build(&base, 2, &pool).unwrap();
        routing_jsons.push(emit_certificate(&class, 3).to_json());

        let g = build_cdag(&base, 2);
        let order = orders::rank_order(&g);
        let points = sweep(&g, &[&order], &[PolicySpec::Lru], &[16, 32], &pool);
        sweep_jsons.push(emit_sweep_certificate(&g, &PolicySpec::Lru, &points).to_json());
    }
    assert_eq!(routing_jsons[0], routing_jsons[1]);
    assert_eq!(routing_jsons[0], routing_jsons[2]);
    assert_eq!(sweep_jsons[0], sweep_jsons[1]);
    assert_eq!(sweep_jsons[0], sweep_jsons[2]);
}

/// Registry-wide closed-form/builder equivalence at r=1: the verifier's
/// independently derived edges agree with the materialized graph for every
/// registered base, not just the hand-picked ones in the unit tests.
#[test]
fn view_matches_builder_across_registry() {
    for base in mmio_algos::registry::all_base_graphs() {
        let spec = mmio_cert::format::BaseSpec::from_base(&base);
        let view = mmio_cert::view::view_of(&spec, 1).unwrap();
        let g = build_cdag(&base, 1);
        assert_eq!(
            view.n_vertices() as usize,
            g.n_vertices(),
            "{}",
            base.name()
        );
        let mut preds = Vec::new();
        for v in g.vertices() {
            preds.clear();
            assert!(view.preds_into(v.0, &mut preds));
            let want: Vec<u32> = g.preds(v).iter().map(|p| p.0).collect();
            assert_eq!(preds, want, "preds of {} in {}", v.0, base.name());
        }
    }
}
