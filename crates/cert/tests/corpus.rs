//! Golden corrupted-certificate corpus: committed JSON files whose exact
//! rejection-code sets are pinned in `tests/corpus/manifest.json`. Any
//! verifier change that shifts a code, drops a rejection, or starts
//! accepting a corrupted certificate fails here before it ships.
//!
//! Regenerate (after an *intentional* format or verifier change) with:
//! `cargo test -p mmio-cert --test corpus -- --ignored regenerate_corpus`

use std::fs;
use std::path::{Path, PathBuf};

use mmio_cert::mutate::mutants_for;
use mmio_cert::{fixtures, verify_json};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Entry {
    file: String,
    accepted: bool,
    codes: Vec<String>,
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Verdict of one file, reduced to (accepted, sorted unique codes).
fn observed(json: &str) -> (bool, Vec<String>) {
    let v = verify_json(json);
    let mut codes: Vec<String> = v.rejections.iter().map(|r| r.code.clone()).collect();
    codes.sort();
    codes.dedup();
    (v.accepted, codes)
}

#[test]
fn golden_corpus_matches_verifier() {
    let dir = corpus_dir();
    let manifest_json = fs::read_to_string(dir.join("manifest.json"))
        .expect("corpus manifest missing — run the ignored `regenerate_corpus` test");
    let manifest: Vec<Entry> = serde_json::from_str(&manifest_json).expect("manifest decodes");
    assert!(
        manifest.len() >= 20,
        "corpus suspiciously small ({} entries)",
        manifest.len()
    );
    let mut corrupted = 0;
    for entry in &manifest {
        let json = fs::read_to_string(dir.join(&entry.file))
            .unwrap_or_else(|e| panic!("{}: {e}", entry.file));
        let (accepted, codes) = observed(&json);
        assert_eq!(accepted, entry.accepted, "{}: verdict flipped", entry.file);
        assert_eq!(codes, entry.codes, "{}: exact code set drifted", entry.file);
        if !entry.accepted {
            corrupted += 1;
            assert!(!codes.is_empty(), "{}: rejected with no codes", entry.file);
        }
    }
    assert!(corrupted >= 15, "only {corrupted} corrupted entries");
}

/// Zero-false-positive sweep: clean engine-emitted certificates for every
/// registry base must be accepted (the corpus pins rejections; this pins
/// the absence of spurious ones on real input).
#[test]
fn clean_registry_certs_accepted() {
    let pool = mmio_parallel::Pool::new(1);
    for base in mmio_algos::registry::fast_base_graphs() {
        let Some(class) = mmio_core::transport::RoutingClass::build(&base, 1, &pool) else {
            continue;
        };
        let cert = mmio_core::transport::emit_certificate(&class, 1);
        let v = verify_json(&cert.to_json());
        assert!(v.accepted, "{}: {:?}", base.name(), v.rejections);
    }
}

fn record(dir: &Path, manifest: &mut Vec<Entry>, name: String, json: String) -> Vec<String> {
    let (accepted, codes) = observed(&json);
    fs::write(dir.join(&name), json).unwrap();
    manifest.push(Entry {
        file: name,
        accepted,
        codes: codes.clone(),
    });
    codes
}

#[test]
#[ignore = "writes tests/corpus/; run only after intentional format or verifier changes"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    fs::create_dir_all(&dir).unwrap();
    let mut manifest = Vec::new();
    for cert in fixtures::all() {
        let kind = cert.payload.kind();
        let codes = record(
            &dir,
            &mut manifest,
            format!("clean__{kind}.json"),
            cert.to_json(),
        );
        assert!(codes.is_empty(), "clean {kind} fixture rejected: {codes:?}");
        for m in mutants_for(&cert) {
            let codes = record(
                &dir,
                &mut manifest,
                format!("mut__{kind}__{}.json", m.name),
                m.cert.to_json(),
            );
            // Refuse to write a corpus the verifier itself would not kill.
            assert!(
                m.expected.iter().any(|c| codes.iter().any(|got| got == c)),
                "{kind}/{}: expected one of {:?}, got {codes:?}",
                m.name,
                m.expected
            );
        }
    }
    record(
        &dir,
        &mut manifest,
        "garbage__not_json.json".into(),
        "certificate? what certificate".into(),
    );
    record(
        &dir,
        &mut manifest,
        "garbage__no_version.json".into(),
        r#"{"kind":"routing"}"#.into(),
    );
    record(
        &dir,
        &mut manifest,
        "garbage__future_version.json".into(),
        r#"{"version":999,"kind":"routing"}"#.into(),
    );
    record(
        &dir,
        &mut manifest,
        "garbage__wrong_kind.json".into(),
        r#"{"version":1,"kind":"lemma","base":{},"payload":{}}"#.into(),
    );
    let manifest_json = serde_json::to_string(&manifest).unwrap();
    fs::write(dir.join("manifest.json"), manifest_json).unwrap();
}
