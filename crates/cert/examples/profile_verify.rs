//! Ad-hoc profiling: `cargo run --release -p mmio-cert --example profile_verify <file>`
use std::time::Instant;

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: profile_verify <cert.json>");
    let text = std::fs::read_to_string(&path).unwrap();
    let t = Instant::now();
    let value: serde::Value = serde_json::from_str(&text).unwrap();
    println!("parse: {:?}", t.elapsed());
    let t = Instant::now();
    let cert = <mmio_cert::Certificate as serde::Deserialize>::from_value(&value).unwrap();
    println!("decode: {:?}", t.elapsed());
    let t = Instant::now();
    let v = mmio_cert::verify(&cert);
    println!("verify: {:?} accepted={}", t.elapsed(), v.accepted);
}
