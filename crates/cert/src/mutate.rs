//! Systematic certificate corruptions for mutation-testing the verifier.
//!
//! A verifier that accepts everything is worse than none: it launders lies
//! into "proofs". The only way to trust a checker is to feed it lies and
//! watch it object. [`mutants_for`] derives, from any *valid* certificate,
//! a battery of corrupted variants, each recording which reject codes a
//! sound verifier may raise for it. The harness (`mmio-check`'s
//! `cert_mutate` binary and this crate's tests) demands a 100% kill rate —
//! every mutant rejected with at least one expected code — and zero false
//! rejects on the uncorrupted originals.
//!
//! Mutations are semantic, not byte-level: each one tells a specific,
//! plausible lie (a hop swapped, a counter off by one, an occupancy
//! understated, a transport prefix out of range, a stale version stamp) so
//! a surviving mutant pinpoints the check that is missing or too lax.

use crate::codes;
use crate::format::{Certificate, Payload};
use crate::verify::Verdict;

/// One corrupted certificate plus the reject codes that justify killing it.
pub struct Mutant {
    /// Stable mutation name (used in harness reports).
    pub name: &'static str,
    /// The corrupted certificate.
    pub cert: Certificate,
    /// Codes a sound verifier may raise; at least one must appear.
    pub expected: &'static [&'static str],
}

impl Mutant {
    /// Whether `verdict` kills this mutant: rejected, with at least one of
    /// the expected codes among the rejections.
    pub fn is_killed_by(&self, verdict: &Verdict) -> bool {
        !verdict.accepted && self.expected.iter().any(|c| verdict.has_code(c))
    }
}

fn mutant(
    name: &'static str,
    expected: &'static [&'static str],
    base: &Certificate,
    corrupt: impl FnOnce(&mut Certificate),
) -> Mutant {
    let mut cert = base.clone();
    corrupt(&mut cert);
    Mutant {
        name,
        cert,
        expected,
    }
}

/// Derives every applicable mutation of a (presumed valid) certificate.
pub fn mutants_for(cert: &Certificate) -> Vec<Mutant> {
    let mut out = Vec::new();

    out.push(mutant(
        "stale-format-version",
        &[codes::V_VERSION],
        cert,
        |c| c.version += 1,
    ));
    out.push(mutant(
        "tensor-coefficient-flip",
        &[codes::V_BASE_INVALID],
        cert,
        |c| {
            use mmio_matrix::Rational;
            let cur = c.base.dec[(0, 0)];
            c.base.dec[(0, 0)] = if cur.is_zero() {
                Rational::ONE
            } else {
                Rational::ZERO
            };
        },
    ));

    match &cert.payload {
        Payload::Routing(p) => {
            if p.paths.first().is_some_and(|p0| p0.len() >= 2) {
                out.push(mutant(
                    "path-edge-swap",
                    &[codes::V_ROUTE_NON_EDGE],
                    cert,
                    |c| {
                        if let Payload::Routing(p) = &mut c.payload {
                            // A self-hop is never an edge.
                            p.paths[0][1] = p.paths[0][0];
                        }
                    },
                ));
            }
            if !p.paths.is_empty() {
                out.push(mutant(
                    "path-drop",
                    &[codes::V_ROUTE_PATH_COUNT, codes::V_ROUTE_PAIRS],
                    cert,
                    |c| {
                        if let Payload::Routing(p) = &mut c.payload {
                            p.paths.pop();
                        }
                    },
                ));
            }
            out.push(mutant(
                "hit-count-off-by-one",
                &[codes::V_ROUTE_CLAIM_MISMATCH],
                cert,
                |c| {
                    if let Payload::Routing(p) = &mut c.payload {
                        p.max_vertex_hits += 1;
                    }
                },
            ));
            out.push(mutant(
                "bound-inflate",
                &[codes::V_ROUTE_BOUND],
                cert,
                |c| {
                    if let Payload::Routing(p) = &mut c.payload {
                        p.bound += 1;
                    }
                },
            ));
            if !p.copy_prefixes.is_empty() {
                out.push(mutant(
                    "transport-prefix-lie",
                    &[codes::V_ROUTE_TRANSPORT],
                    cert,
                    |c| {
                        if let Payload::Routing(p) = &mut c.payload {
                            // Far outside [0, b^{r-k}) for any real graph.
                            *p.copy_prefixes.last_mut().unwrap() = u64::MAX;
                        }
                    },
                ));
            }
            if p.copy_prefixes.len() >= 2 {
                out.push(mutant(
                    "transport-prefix-dup",
                    &[codes::V_ROUTE_TRANSPORT],
                    cert,
                    |c| {
                        if let Payload::Routing(p) = &mut c.payload {
                            *p.copy_prefixes.last_mut().unwrap() = p.copy_prefixes[0];
                        }
                    },
                ));
            }
        }
        Payload::Schedule(p) => {
            let first =
                |p: &crate::format::SchedulePayload, op: char| p.ops.chars().position(|o| o == op);
            if first(p, 'L').is_some() {
                out.push(mutant(
                    "elide-load",
                    &[
                        codes::V_SCHED_MISSING_OPERAND,
                        codes::V_SCHED_BAD_LOAD,
                        codes::V_SCHED_COUNTER_MISMATCH,
                    ],
                    cert,
                    |c| {
                        if let Payload::Schedule(p) = &mut c.payload {
                            let i = p.ops.chars().position(|o| o == 'L').unwrap();
                            p.ops.remove(i);
                            p.vertices.remove(i);
                        }
                    },
                ));
            }
            if first(p, 'S').is_some() {
                out.push(mutant(
                    "elide-store",
                    &[
                        codes::V_SCHED_INCOMPLETE,
                        codes::V_SCHED_BAD_LOAD,
                        codes::V_SCHED_COUNTER_MISMATCH,
                    ],
                    cert,
                    |c| {
                        if let Payload::Schedule(p) = &mut c.payload {
                            let i = p.ops.chars().position(|o| o == 'S').unwrap();
                            p.ops.remove(i);
                            p.vertices.remove(i);
                        }
                    },
                ));
            }
            if p.peak_occupancy > 0 {
                out.push(mutant(
                    "occupancy-understate",
                    &[codes::V_SCHED_WITNESS_MISMATCH],
                    cert,
                    |c| {
                        if let Payload::Schedule(p) = &mut c.payload {
                            p.peak_occupancy -= 1;
                        }
                    },
                ));
            }
            out.push(mutant(
                "counter-lie",
                &[codes::V_SCHED_COUNTER_MISMATCH],
                cert,
                |c| {
                    if let Payload::Schedule(p) = &mut c.payload {
                        p.loads += 1;
                    }
                },
            ));
            if !p.res_end.is_empty() {
                out.push(mutant(
                    "residency-stretch",
                    &[codes::V_SCHED_WITNESS_MISMATCH],
                    cert,
                    |c| {
                        if let Payload::Schedule(p) = &mut c.payload {
                            p.res_end[0] += 1;
                        }
                    },
                ));
            }
        }
        Payload::Sweep(p) => {
            let feas = p.feasible.iter().position(|&f| f);
            if feas.is_some() {
                out.push(mutant(
                    "sweep-work-lie",
                    &[codes::V_SWEEP_WORK],
                    cert,
                    |c| {
                        if let Payload::Sweep(p) = &mut c.payload {
                            let i = p.feasible.iter().position(|&f| f).unwrap();
                            p.computes[i] += 1;
                        }
                    },
                ));
                out.push(mutant(
                    "sweep-floor-lie",
                    &[codes::V_SWEEP_FLOOR],
                    cert,
                    |c| {
                        if let Payload::Sweep(p) = &mut c.payload {
                            let i = p.feasible.iter().position(|&f| f).unwrap();
                            p.stores[i] = 0;
                        }
                    },
                ));
            }
            if p.feasible.iter().any(|&f| !f) {
                out.push(mutant(
                    "sweep-feasibility-lie",
                    &[codes::V_SWEEP_FLOOR],
                    cert,
                    |c| {
                        if let Payload::Sweep(p) = &mut c.payload {
                            let i = p.feasible.iter().position(|&f| !f).unwrap();
                            p.feasible[i] = true;
                        }
                    },
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::verify::verify;

    #[test]
    fn fixtures_have_zero_false_rejects() {
        for cert in fixtures::all() {
            let v = verify(&cert);
            assert!(
                v.accepted,
                "{} fixture rejected: {:?}",
                cert.payload.kind(),
                v.rejections
            );
        }
    }

    #[test]
    fn all_mutants_killed_with_expected_codes() {
        for cert in fixtures::all() {
            let mutants = mutants_for(&cert);
            assert!(
                mutants.len() >= 4,
                "{} fixture yields too few mutants",
                cert.payload.kind()
            );
            for m in mutants {
                // Kill both in-memory and through the serialized form.
                let v = verify(&m.cert);
                assert!(
                    m.is_killed_by(&v),
                    "mutant {} survived in-memory: {:?}",
                    m.name,
                    v.rejections
                );
                let v = crate::verify::verify_json(&m.cert.to_json());
                assert!(
                    m.is_killed_by(&v),
                    "mutant {} survived round-trip: {:?}",
                    m.name,
                    v.rejections
                );
            }
        }
    }
}
