//! Tiny hand-built certificates over the 1×1 "unit" algorithm — the
//! smallest complete witnesses of each kind. Used by the crate's own tests,
//! the mutation harness, and the golden corpus as known-good baselines that
//! need no engine to produce.

use crate::format::{
    BaseSpec, Certificate, Payload, RoutingPayload, SchedulePayload, SweepPayload,
};
use mmio_matrix::{Matrix, Rational};

/// The 1×1 algorithm: one multiplication, all coefficients 1.
pub fn unit_base() -> BaseSpec {
    let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
    BaseSpec {
        name: "unit".into(),
        n0: 1,
        enc_a: one.clone(),
        enc_b: one.clone(),
        dec: one,
    }
}

/// A correct routing certificate for unit `G_1` (6 vertices in two chains
/// through the product): both (input, output) pairs routed, peak vertex
/// and copy-group congestion 2, one transport copy.
pub fn unit_routing() -> Certificate {
    // Dense ids: EncA 0 (input), 1 (combo); EncB 2 (input), 3 (combo);
    // Dec 4 (product), 5 (output).
    Certificate::new(
        unit_base(),
        Payload::Routing(RoutingPayload {
            k: 1,
            r: 1,
            bound: 6,
            max_vertex_hits: 2,
            max_meta_hits: 2,
            paths: vec![vec![0, 1, 4, 5], vec![2, 3, 4, 5]],
            copy_prefixes: vec![0],
        }),
    )
}

/// A legal, claim-consistent schedule certificate for unit `G_1` under
/// `M = 5` (its true peak occupancy).
pub fn unit_schedule() -> Certificate {
    Certificate::new(
        unit_base(),
        Payload::Schedule(SchedulePayload {
            r: 1,
            m: 5,
            ops: "LCLCCDDDCSD".into(),
            vertices: vec![0, 1, 2, 3, 4, 0, 2, 1, 5, 5, 3],
            loads: 2,
            stores: 1,
            computes: 4,
            peak_occupancy: 5,
            res_vertex: vec![0, 1, 2, 3, 4, 5],
            res_start: vec![0, 1, 2, 3, 4, 8],
            res_end: vec![5, 7, 6, 10, 11, 11],
        }),
    )
}

/// A floor-consistent sweep certificate for unit `G_1`: one infeasible and
/// one feasible grid point (`need = 3`, 2 used inputs, 1 output, 4
/// computes).
pub fn unit_sweep() -> Certificate {
    Certificate::new(
        unit_base(),
        Payload::Sweep(SweepPayload {
            r: 1,
            policy: "lru".into(),
            ms: vec![2, 5],
            feasible: vec![false, true],
            loads: vec![0, 2],
            stores: vec![0, 1],
            computes: vec![0, 4],
        }),
    )
}

/// All three fixture certificates.
pub fn all() -> Vec<Certificate> {
    vec![unit_routing(), unit_schedule(), unit_sweep()]
}
