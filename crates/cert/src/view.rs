//! The verifier's closed-form model of `G_r` — a thin re-export of the
//! shared [`mmio_cdag::view`] module.
//!
//! The implementation originated here (PR 5) and was promoted into
//! `mmio-cdag` so the engines can be generic over the same audited
//! [`IndexView`]. The verifier's trust base is unchanged: `mmio-cdag` was
//! already trusted (for `hits` and `index`), `mmio-core`/`mmio-pebble`
//! still are not, and this module pins the exact surface the verifier
//! consumes. The adapters below bind the crate's untrusted [`BaseSpec`]
//! wire format to the shared constructors.

use crate::format::BaseSpec;
pub use mmio_cdag::view::{checked_pow, IndexView, ViewError};

/// Builds the closed-form view of `G_r` from an untrusted certificate
/// [`BaseSpec`], validating shapes and the id space (never panics).
pub fn view_of(spec: &BaseSpec, r: u32) -> Result<IndexView, ViewError> {
    IndexView::new(spec.n0, &spec.enc_a, &spec.enc_b, &spec.dec, r)
}

/// Re-checks the matrix-multiplication tensor identity
/// `Σ_m dec[y][m]·enc_a[m][x]·enc_b[m][z] = T(x, z, y)` directly on the
/// embedded coefficients (shapes must already be consistent — build the
/// [`IndexView`] first). Returns the first violated triple.
pub fn check_tensor(spec: &BaseSpec) -> Result<(), String> {
    mmio_cdag::view::check_tensor(spec.n0, &spec.enc_a, &spec.enc_b, &spec.dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_cdag::BaseGraph;
    use mmio_matrix::Rational;

    fn spec_of(g: &BaseGraph) -> BaseSpec {
        BaseSpec::from_base(g)
    }

    /// The registry-scale equivalence suite lives in `mmio-cdag` (unit
    /// tests) and `mmio-integration` (property tests); this spot-check
    /// pins the BaseSpec adapter itself against the builder.
    #[test]
    fn spec_adapter_matches_builder() {
        let g = strassen();
        for r in [1u32, 2, 3] {
            let view = view_of(&spec_of(&g), r).unwrap();
            let cdag = build_cdag(&g, r);
            assert_eq!(view.n_vertices() as usize, cdag.n_vertices());
            let mut preds = Vec::new();
            for v in cdag.vertices() {
                preds.clear();
                assert!(view.preds_into(v.0, &mut preds));
                let want: Vec<u32> = cdag.preds(v).iter().map(|p| p.0).collect();
                assert_eq!(preds, want, "preds of {} at r={r}", v.0);
            }
        }
    }

    #[test]
    fn tensor_check_accepts_real_and_rejects_corrupt() {
        let g = strassen();
        let mut spec = spec_of(&g);
        assert!(check_tensor(&spec).is_ok());
        let flipped = if spec.dec[(0, 0)].is_zero() {
            Rational::ONE
        } else {
            Rational::ZERO
        };
        spec.dec[(0, 0)] = flipped;
        assert!(check_tensor(&spec).is_err());
    }

    #[test]
    fn bad_specs_rejected() {
        let g = strassen();
        assert!(view_of(&spec_of(&g), 0).is_err());
        let mut bad = spec_of(&g);
        bad.n0 = 3; // enc shapes no longer match n0²
        assert!(view_of(&bad, 2).is_err());
    }
}
