//! [`IndexView`]: the verifier's closed-form model of `G_r`.
//!
//! The engines materialize `G_r` through `mmio_cdag::build_cdag`. Trusting
//! that builder inside the verifier would put the very code under audit into
//! the trust base, so this module re-derives everything from pure mixed-radix
//! index arithmetic over the embedded coefficient matrices:
//!
//! - the segment layout (EncA levels `0..=r`, EncB `0..=r`, Dec `0..=r`) and
//!   the dense-id ↔ structured-address bijection;
//! - predecessors of any vertex, from the encoding/decoding rows alone;
//! - the copy grouping (a vertex joins its predecessor's group iff it has a
//!   single predecessor with coefficient 1 — i.e. its row is trivial);
//! - the Fact-1 lift of a standalone `G_k` vertex into a copy of `G_k`
//!   inside `G_r` selected by a multiplication prefix.
//!
//! Everything is checked: malformed shapes and id-space overflows surface as
//! `Err`/`None`, never as panics, because the input is untrusted. No graph
//! is ever materialized — the memory footprint is `O(a·b)` regardless of
//! `r`, which is also the first concrete step toward the roadmap's implicit
//! `CdagView` for the engines themselves.

use crate::format::BaseSpec;
use mmio_cdag::hits::UnionFind;
use mmio_matrix::{Matrix, Rational};
use std::fmt;

/// Why a view could not be constructed — split so the verifier can map
/// shape defects and parameter/size defects to distinct reject codes.
#[derive(Clone, Debug)]
pub enum ViewError {
    /// The embedded coefficient matrices have inconsistent dimensions.
    Shape(String),
    /// The requested parameters are out of the verifiable range (`r == 0`,
    /// or the implied graph overflows the dense id space).
    Params(String),
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::Shape(s) | ViewError::Params(s) => f.write_str(s),
        }
    }
}

/// `base^exp` without panicking on overflow.
pub fn checked_pow(base: u64, exp: u32) -> Option<u64> {
    let mut acc: u64 = 1;
    for _ in 0..exp {
        acc = acc.checked_mul(base)?;
    }
    Some(acc)
}

/// The three vertex segments of `G_r`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Seg {
    /// Encoding of the left operand.
    EncA,
    /// Encoding of the right operand.
    EncB,
    /// Decoding (rank 0 = products, rank `r` = outputs).
    Dec,
}

/// A structured vertex address: segment, level, multiplication index, entry
/// index. Encoding level `t` has `mul ∈ [b^t]`, `entry ∈ [a^{r-t}]`;
/// decoding level `k` has `mul ∈ [b^{r-k}]`, `entry ∈ [a^k]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VRef {
    /// Which segment.
    pub seg: Seg,
    /// Level within the segment (`0..=r`).
    pub level: u32,
    /// Multiplication index.
    pub mul: u64,
    /// Entry index.
    pub entry: u64,
}

/// Sparsity pattern of one coefficient matrix, row-wise: which columns are
/// nonzero, and whether the row is *trivial* (exactly one nonzero, equal
/// to 1 — the condition for copy-group membership).
struct RowTable {
    cols: Vec<Vec<usize>>,
    trivial: Vec<bool>,
}

impl RowTable {
    fn new(m: &Matrix<Rational>) -> RowTable {
        let mut cols = Vec::with_capacity(m.rows());
        let mut trivial = Vec::with_capacity(m.rows());
        for row in 0..m.rows() {
            let nz: Vec<usize> = (0..m.cols()).filter(|&c| !m[(row, c)].is_zero()).collect();
            trivial.push(nz.len() == 1 && m[(row, nz[0])].is_one());
            cols.push(nz);
        }
        RowTable { cols, trivial }
    }

    /// Number of columns touched by at least one row.
    fn used_cols(&self, width: usize) -> u64 {
        let mut used = vec![false; width];
        for row in &self.cols {
            for &c in row {
                used[c] = true;
            }
        }
        used.iter().filter(|&&u| u).count() as u64
    }

    fn max_row_len(&self) -> usize {
        self.cols.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The closed-form view of `G_r` for one base algorithm. See the module
/// docs for what it derives and why it exists.
pub struct IndexView {
    r: u32,
    a: usize,
    b: usize,
    /// `3(r+1)+1` cumulative segment offsets, in EncA/EncB/Dec order.
    seg_offsets: Vec<u64>,
    enc_a: RowTable,
    enc_b: RowTable,
    dec: RowTable,
}

impl IndexView {
    /// Builds the view, validating the embedded shapes and the id space.
    /// Rejects (never panics) on inconsistent matrix dimensions, `r == 0`,
    /// or a graph that would not fit dense `u32` ids.
    pub fn new(spec: &BaseSpec, r: u32) -> Result<IndexView, ViewError> {
        if spec.n0 < 1 {
            return Err(ViewError::Shape("n0 must be at least 1".into()));
        }
        let a = spec
            .n0
            .checked_mul(spec.n0)
            .ok_or_else(|| ViewError::Shape("n0² overflows".into()))?;
        let b = spec.enc_a.rows();
        if b < 1 {
            return Err(ViewError::Shape("enc_a must have at least one row".into()));
        }
        if spec.enc_a.cols() != a
            || spec.enc_b.rows() != b
            || spec.enc_b.cols() != a
            || spec.dec.rows() != a
            || spec.dec.cols() != b
        {
            return Err(ViewError::Shape(format!(
                "inconsistent shapes: enc_a {}x{}, enc_b {}x{}, dec {}x{} for n0 = {}",
                spec.enc_a.rows(),
                spec.enc_a.cols(),
                spec.enc_b.rows(),
                spec.enc_b.cols(),
                spec.dec.rows(),
                spec.dec.cols(),
                spec.n0
            )));
        }
        if r == 0 {
            return Err(ViewError::Params(
                "recursion depth r must be at least 1".into(),
            ));
        }
        let (au, bu) = (a as u64, b as u64);
        let mut seg_offsets = Vec::with_capacity(3 * (r as usize + 1) + 1);
        let mut total: u64 = 0;
        seg_offsets.push(0);
        let push_seg = |total: &mut u64, size: Option<u64>| -> Result<u64, ViewError> {
            let size =
                size.ok_or_else(|| ViewError::Params("segment size overflows u64".into()))?;
            *total = total
                .checked_add(size)
                .ok_or_else(|| ViewError::Params("vertex count overflows u64".into()))?;
            Ok(*total)
        };
        for _side in 0..2 {
            for t in 0..=r {
                let size = checked_pow(bu, t).and_then(|p| p.checked_mul(checked_pow(au, r - t)?));
                seg_offsets.push(push_seg(&mut total, size)?);
            }
        }
        for k in 0..=r {
            let size = checked_pow(bu, r - k).and_then(|p| p.checked_mul(checked_pow(au, k)?));
            seg_offsets.push(push_seg(&mut total, size)?);
        }
        if total > u32::MAX as u64 {
            return Err(ViewError::Params(format!(
                "G_r has {total} vertices, exceeding u32 ids"
            )));
        }
        Ok(IndexView {
            r,
            a,
            b,
            seg_offsets,
            enc_a: RowTable::new(&spec.enc_a),
            enc_b: RowTable::new(&spec.enc_b),
            dec: RowTable::new(&spec.dec),
        })
    }

    /// The recursion depth `r` of the viewed graph.
    pub fn r(&self) -> u32 {
        self.r
    }

    /// `a = n₀²`.
    pub fn a(&self) -> usize {
        self.a
    }

    /// `b`: multiplications per recursion step.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Total vertex count of `G_r`.
    pub fn n_vertices(&self) -> u32 {
        *self.seg_offsets.last().unwrap() as u32
    }

    fn seg_index(&self, seg: Seg, level: u32) -> usize {
        let l = match seg {
            Seg::EncA => 0,
            Seg::EncB => 1,
            Seg::Dec => 2,
        };
        l * (self.r as usize + 1) + level as usize
    }

    fn entry_width(&self, seg: Seg, level: u32) -> u64 {
        let suffix_len = match seg {
            Seg::EncA | Seg::EncB => self.r - level,
            Seg::Dec => level,
        };
        // Cannot overflow: bounded by a segment size already checked in new().
        checked_pow(self.a as u64, suffix_len).unwrap()
    }

    /// The dense id of a structured address, or `None` if out of range.
    pub fn id(&self, v: VRef) -> Option<u32> {
        if v.level > self.r {
            return None;
        }
        let si = self.seg_index(v.seg, v.level);
        let width = self.entry_width(v.seg, v.level);
        let seg_size = self.seg_offsets[si + 1] - self.seg_offsets[si];
        if v.entry >= width {
            return None;
        }
        let local = v.mul.checked_mul(width)?.checked_add(v.entry)?;
        if local >= seg_size {
            return None;
        }
        Some((self.seg_offsets[si] + local) as u32)
    }

    /// The structured address of a dense id, or `None` if out of range.
    pub fn vref(&self, id: u32) -> Option<VRef> {
        let id = id as u64;
        if id >= *self.seg_offsets.last().unwrap() {
            return None;
        }
        // 3(r+1) segments: a linear scan is fine at certificate scales.
        let si = self.seg_offsets.iter().rposition(|&off| off <= id).unwrap();
        let levels = self.r as usize + 1;
        let (seg, level) = match si / levels {
            0 => (Seg::EncA, si % levels),
            1 => (Seg::EncB, si % levels),
            _ => (Seg::Dec, si % levels),
        };
        let width = self.entry_width(seg, level as u32);
        let local = id - self.seg_offsets[si];
        Some(VRef {
            seg,
            level: level as u32,
            mul: local / width,
            entry: local % width,
        })
    }

    fn enc_rows(&self, seg: Seg) -> &RowTable {
        match seg {
            Seg::EncA => &self.enc_a,
            Seg::EncB => &self.enc_b,
            Seg::Dec => unreachable!("enc_rows is only called for encoding segments"),
        }
    }

    /// Appends the predecessors of `id` (dense ids) to `out`. Returns
    /// `false` if `id` is out of range. Encoding level-0 vertices (the
    /// inputs) have no predecessors.
    pub fn preds_into(&self, id: u32, out: &mut Vec<u32>) -> bool {
        let Some(v) = self.vref(id) else {
            return false;
        };
        match v.seg {
            Seg::EncA | Seg::EncB => {
                if v.level == 0 {
                    return true;
                }
                // Parent at level t-1 drops the mul's least-significant
                // digit τ and gains the encoded column as the entry's
                // most-significant digit.
                let tau = (v.mul % self.b as u64) as usize;
                let m_parent = v.mul / self.b as u64;
                let width = self.entry_width(v.seg, v.level);
                for &x in &self.enc_rows(v.seg).cols[tau] {
                    let e_parent = (x as u64) * width + v.entry;
                    out.push(
                        self.id(VRef {
                            seg: v.seg,
                            level: v.level - 1,
                            mul: m_parent,
                            entry: e_parent,
                        })
                        .expect("derived parent address is in range"),
                    );
                }
            }
            Seg::Dec => {
                if v.level == 0 {
                    // Product vertex: the two rank-r encoding combinations.
                    for seg in [Seg::EncA, Seg::EncB] {
                        out.push(
                            self.id(VRef {
                                seg,
                                level: self.r,
                                mul: v.mul,
                                entry: 0,
                            })
                            .expect("rank-r encoding address is in range"),
                        );
                    }
                } else {
                    let width = self.entry_width(Seg::Dec, v.level - 1);
                    let upsilon = (v.entry / width) as usize;
                    let e_rest = v.entry % width;
                    for &tau in &self.dec.cols[upsilon] {
                        let m_parent = v.mul * self.b as u64 + tau as u64;
                        out.push(
                            self.id(VRef {
                                seg: Seg::Dec,
                                level: v.level - 1,
                                mul: m_parent,
                                entry: e_rest,
                            })
                            .expect("derived parent address is in range"),
                        );
                    }
                }
            }
        }
        true
    }

    /// Whether `(u, v)` is an edge of `G_r` in either direction.
    pub fn is_edge(&self, u: u32, v: u32) -> bool {
        let mut preds = Vec::new();
        if !self.preds_into(v, &mut preds) {
            return false;
        }
        if preds.contains(&u) {
            return true;
        }
        preds.clear();
        self.preds_into(u, &mut preds) && preds.contains(&v)
    }

    /// Whether `id` is an input (encoding level 0 of either side).
    pub fn is_input(&self, id: u32) -> bool {
        let id = id as u64;
        let enc_b0 = self.seg_index(Seg::EncB, 0);
        id < self.seg_offsets[1]
            || (self.seg_offsets[enc_b0]..self.seg_offsets[enc_b0 + 1]).contains(&id)
    }

    /// Whether `id` is an output (decoding level `r`).
    pub fn is_output(&self, id: u32) -> bool {
        let last = self.seg_offsets.len() - 2;
        (self.seg_offsets[last]..self.seg_offsets[last + 1]).contains(&(id as u64))
    }

    /// Number of inputs, `2a^r`.
    pub fn inputs_count(&self) -> u64 {
        2 * self.entry_width(Seg::EncA, 0)
    }

    /// Dense ordinal of an input among all `2a^r` inputs (`A` side first),
    /// or `None` if `id` is not an input.
    pub fn input_ord(&self, id: u32) -> Option<u64> {
        let idu = id as u64;
        let a_r = self.seg_offsets[1];
        if idu < a_r {
            return Some(idu);
        }
        let enc_b0 = self.seg_index(Seg::EncB, 0);
        let (lo, hi) = (self.seg_offsets[enc_b0], self.seg_offsets[enc_b0 + 1]);
        (lo..hi).contains(&idu).then(|| a_r + (idu - lo))
    }

    /// Dense ordinal of an output among the `a^r` outputs, or `None` if
    /// `id` is not an output.
    pub fn output_ord(&self, id: u32) -> Option<u64> {
        let last = self.seg_offsets.len() - 2;
        let (lo, hi) = (self.seg_offsets[last], self.seg_offsets[last + 1]);
        (lo..hi).contains(&(id as u64)).then(|| id as u64 - lo)
    }

    /// Number of outputs, `a^r`.
    pub fn outputs_count(&self) -> u64 {
        self.entry_width(Seg::Dec, self.r)
    }

    /// Inputs with at least one successor: `(used columns of enc) · a^{r-1}`
    /// per side. Every such input must be loaded by any complete schedule.
    pub fn used_inputs(&self) -> u64 {
        let per_entry = self.entry_width(Seg::EncA, 1);
        (self.enc_a.used_cols(self.a) + self.enc_b.used_cols(self.a)) * per_entry
    }

    /// Maximum in-degree over `G_r` (products always have 2; combination
    /// vertices have their row's nonzero count).
    pub fn max_indegree(&self) -> usize {
        [
            2,
            self.enc_a.max_row_len(),
            self.enc_b.max_row_len(),
            self.dec.max_row_len(),
        ]
        .into_iter()
        .max()
        .unwrap()
    }

    /// The copy grouping as a flat root table (`roots[v]` = representative
    /// of `v`'s group), derived from row triviality: a vertex merges with
    /// its sole predecessor iff its encoding/decoding row has exactly one
    /// nonzero coefficient, equal to 1.
    pub fn copy_roots(&self) -> Vec<u32> {
        let n = self.n_vertices();
        let mut uf = UnionFind::new(n as usize);
        let mut preds = Vec::new();
        for id in 0..n {
            let v = self.vref(id).unwrap();
            let trivial = match v.seg {
                Seg::EncA | Seg::EncB => {
                    v.level > 0 && self.enc_rows(v.seg).trivial[(v.mul % self.b as u64) as usize]
                }
                Seg::Dec => {
                    v.level > 0 && {
                        let width = self.entry_width(Seg::Dec, v.level - 1);
                        self.dec.trivial[(v.entry / width) as usize]
                    }
                }
            };
            if trivial {
                preds.clear();
                self.preds_into(id, &mut preds);
                debug_assert_eq!(preds.len(), 1);
                uf.union(id, preds[0]);
            }
        }
        uf.roots()
    }

    /// The Fact-1 lift: maps vertex `v_local` of the standalone `G_k`
    /// (viewed by `local`) into the copy of `G_k` inside this `G_r`
    /// selected by multiplication `prefix ∈ [b^{r-k}]`. Returns `None` when
    /// the views are incompatible or anything is out of range.
    pub fn lift(&self, local: &IndexView, prefix: u64, v_local: u32) -> Option<u32> {
        let k = local.r;
        if local.a != self.a || local.b != self.b || k > self.r {
            return None;
        }
        let copies = checked_pow(self.b as u64, self.r - k)?;
        if prefix >= copies {
            return None;
        }
        let v = local.vref(v_local)?;
        let lifted = match v.seg {
            // Local encoding level t' sits at global level r-k+t', with the
            // prefix prepended to the multiplication index (t' digits).
            Seg::EncA | Seg::EncB => VRef {
                seg: v.seg,
                level: self.r - k + v.level,
                mul: prefix.checked_mul(checked_pow(self.b as u64, v.level)?)? + v.mul,
                entry: v.entry,
            },
            // Local decoding level k' keeps its global level, with the
            // prefix prepended to the k-k'-digit multiplication index.
            Seg::Dec => VRef {
                seg: Seg::Dec,
                level: v.level,
                mul: prefix.checked_mul(checked_pow(self.b as u64, k - v.level)?)? + v.mul,
                entry: v.entry,
            },
        };
        self.id(lifted)
    }
}

/// Re-checks the matrix-multiplication tensor identity
/// `Σ_m dec[y][m]·enc_a[m][x]·enc_b[m][z] = T(x, z, y)` directly on the
/// embedded coefficients (shapes must already be consistent — build the
/// [`IndexView`] first). Returns the first violated triple.
pub fn check_tensor(spec: &BaseSpec) -> Result<(), String> {
    let n0 = spec.n0;
    let b = spec.enc_a.rows();
    for i in 0..n0 {
        for k in 0..n0 {
            for k2 in 0..n0 {
                for j in 0..n0 {
                    for i2 in 0..n0 {
                        for j2 in 0..n0 {
                            let x = i * n0 + k;
                            let z = k2 * n0 + j;
                            let y = i2 * n0 + j2;
                            let got: Rational = (0..b)
                                .map(|m| spec.dec[(y, m)] * spec.enc_a[(m, x)] * spec.enc_b[(m, z)])
                                .sum();
                            let want = if i == i2 && j == j2 && k == k2 {
                                Rational::ONE
                            } else {
                                Rational::ZERO
                            };
                            if got != want {
                                return Err(format!(
                                    "tensor mismatch at a({i},{k})·b({k2},{j})→c({i2},{j2}): \
                                     got {got}, want {want}"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_cdag::build::build_cdag;
    use mmio_cdag::BaseGraph;

    fn spec_of(g: &BaseGraph) -> BaseSpec {
        BaseSpec::from_base(g)
    }

    fn check_against_builder(g: &BaseGraph, r: u32) {
        let spec = spec_of(g);
        let view = IndexView::new(&spec, r).unwrap();
        let cdag = build_cdag(g, r);
        assert_eq!(view.n_vertices() as usize, cdag.n_vertices());
        let mut preds = Vec::new();
        for v in cdag.vertices() {
            preds.clear();
            assert!(view.preds_into(v.0, &mut preds));
            let want: Vec<u32> = cdag.preds(v).iter().map(|p| p.0).collect();
            assert_eq!(preds, want, "preds of {} in {} at r={r}", v.0, g.name());
            assert_eq!(
                view.is_input(v.0),
                cdag.preds(v).is_empty(),
                "input status of {}",
                v.0
            );
            // Round-trip the structured address.
            let vr = view.vref(v.0).unwrap();
            assert_eq!(view.id(vr), Some(v.0));
        }
        assert_eq!(
            (0..view.n_vertices())
                .filter(|&v| view.is_output(v))
                .count() as u64,
            view.outputs_count()
        );
        let max_in = cdag.vertices().map(|v| cdag.preds(v).len()).max().unwrap();
        assert_eq!(view.max_indegree(), max_in);
    }

    #[test]
    fn matches_builder_strassen() {
        let g = mmio_algos::strassen::strassen();
        check_against_builder(&g, 1);
        check_against_builder(&g, 2);
        check_against_builder(&g, 3);
    }

    #[test]
    fn matches_builder_classical_and_winograd() {
        check_against_builder(&mmio_algos::classical::classical(2), 2);
        check_against_builder(&mmio_algos::strassen::winograd(), 2);
    }

    #[test]
    fn tensor_check_accepts_real_and_rejects_corrupt() {
        let g = mmio_algos::strassen::strassen();
        let mut spec = spec_of(&g);
        assert!(check_tensor(&spec).is_ok());
        let flipped = if spec.dec[(0, 0)].is_zero() {
            Rational::ONE
        } else {
            Rational::ZERO
        };
        spec.dec[(0, 0)] = flipped;
        assert!(check_tensor(&spec).is_err());
    }

    #[test]
    fn rejects_bad_shapes_and_zero_r() {
        let g = mmio_algos::strassen::strassen();
        let spec = spec_of(&g);
        assert!(IndexView::new(&spec, 0).is_err());
        let mut bad = spec_of(&g);
        bad.n0 = 3; // enc shapes no longer match n0²
        assert!(IndexView::new(&bad, 2).is_err());
    }

    #[test]
    fn out_of_range_ids_are_none_not_panics() {
        let g = mmio_algos::strassen::strassen();
        let view = IndexView::new(&spec_of(&g), 2).unwrap();
        let n = view.n_vertices();
        assert!(view.vref(n).is_none());
        assert!(view.vref(u32::MAX).is_none());
        let mut preds = Vec::new();
        assert!(!view.preds_into(n, &mut preds));
        assert!(!view.is_edge(n, 0));
    }

    #[test]
    fn lift_lands_in_subcomputation_copies() {
        // Cross-check the closed-form lift against mmio_cdag::fact1.
        let g = mmio_algos::strassen::strassen();
        let (r, k) = (3u32, 1u32);
        let spec = spec_of(&g);
        let rv = IndexView::new(&spec, r).unwrap();
        let kv = IndexView::new(&spec, k).unwrap();
        let gr = build_cdag(&g, r);
        let gk = build_cdag(&g, k);
        let subs = mmio_cdag::fact1::Subcomputation::count(&gr, k);
        assert_eq!(subs, checked_pow(g.b() as u64, r - k).unwrap());
        for prefix in [0, 1, subs - 1] {
            let sub = mmio_cdag::fact1::Subcomputation::new(&gr, k, prefix);
            for v in gk.vertices() {
                let want = sub.local_to_global(gk.vref(v));
                let got = rv.lift(&kv, prefix, v.0);
                assert_eq!(got, Some(want.0), "lift of {} at prefix {prefix}", v.0);
            }
        }
        // Out-of-range prefix must be rejected.
        assert!(rv.lift(&kv, subs, 0).is_none());
    }

    #[test]
    fn copy_roots_match_materialized_meta_grouping() {
        let g = mmio_algos::strassen::strassen();
        let r = 2;
        let view = IndexView::new(&spec_of(&g), r).unwrap();
        let roots = view.copy_roots();
        let cdag = build_cdag(&g, r);
        let meta = mmio_cdag::MetaVertices::compute(&cdag);
        for v in cdag.vertices() {
            for w in cdag.vertices() {
                let same_meta = meta.meta_of(v) == meta.meta_of(w);
                let same_root = roots[v.idx()] == roots[w.idx()];
                assert_eq!(same_meta, same_root, "grouping of ({}, {})", v.0, w.0);
            }
        }
    }

    #[test]
    fn used_inputs_counts_columns_with_successors() {
        let g = mmio_algos::strassen::strassen();
        let view = IndexView::new(&spec_of(&g), 2).unwrap();
        // Strassen touches every input entry: all 2·a^r inputs are used.
        assert_eq!(view.used_inputs(), view.inputs_count());
        let cdag = build_cdag(&g, 2);
        let used = cdag
            .vertices()
            .filter(|&v| cdag.preds(v).is_empty() && !cdag.succs(v).is_empty())
            .count() as u64;
        assert_eq!(view.used_inputs(), used);
    }
}
