//! The standalone certificate verifier.
//!
//! Everything a certificate claims is re-derived here from the embedded
//! coefficients and the closed-form [`IndexView`]: the tensor identity,
//! every edge every path traverses, the copy grouping and hit counts, the
//! Fact-1 transport images, schedule legality by full replay, and sweep
//! I/O floors. Nothing is taken from the routing or scheduling engines.
//!
//! The verifier **never panics on untrusted input**: malformed JSON, stale
//! versions, inconsistent shapes, out-of-range ids, and oversized claims
//! all surface as structured `MMIO-V0xx` rejections in a [`Verdict`].
//! Rejections accumulate — one corrupt certificate reports every defect the
//! verifier can still reach — but per-code detail is capped so adversarial
//! input cannot balloon the verdict itself.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::codes;
use crate::format::{
    self, Certificate, Payload, RoutingPayload, SchedulePayload, SweepPayload, FORMAT_VERSION,
};
use crate::view::{checked_pow, IndexView, ViewError};
use mmio_cdag::hits::HitCounter;

/// Hard ceiling on the vertex count of any graph the verifier will walk
/// per-vertex (copy grouping, schedule replay). Registry certificates are
/// orders of magnitude below; anything above is rejected as out of range
/// rather than allowed to allocate gigabytes.
const MAX_WALK_VERTICES: u64 = 1 << 26;
/// Hard ceiling on `paths × transport copies` re-walk work.
const MAX_TRANSPORT_WORK: u64 = 1 << 26;
/// Hard ceiling on the expected path count of a routing certificate.
const MAX_PATHS: u64 = 1 << 24;
/// Detailed rejections kept per code before summarizing.
const MAX_DETAILS_PER_CODE: u64 = 8;

/// One structured rejection.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejection {
    /// Stable `MMIO-V0xx` code (see [`crate::codes`]).
    pub code: String,
    /// Human-readable specifics for this instance.
    pub detail: String,
}

/// The machine-readable verdict of one verification run.
#[derive(Clone, Debug, Serialize)]
pub struct Verdict {
    /// The certificate's declared format version (0 if unreadable).
    pub format_version: u64,
    /// Payload kind (`"routing"`, `"schedule"`, `"sweep"`, or `""`).
    pub kind: String,
    /// The embedded algorithm name (informational).
    pub algo: String,
    /// Whether the certificate verified with zero rejections.
    pub accepted: bool,
    /// Every rejection found, in check order.
    pub rejections: Vec<Rejection>,
}

impl Verdict {
    /// Serializes the verdict to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| {
            // A verdict that cannot render must still reject: degrade to
            // a hand-built non-accepting verdict rather than panic.
            format!(
                "{{\"format_version\":0,\"kind\":\"\",\"algo\":\"\",\"accepted\":false,\
                 \"rejections\":[{{\"code\":\"{}\",\"detail\":\"verdict render failed: {}\"}}]}}",
                codes::V_MALFORMED,
                e.to_string().replace(['"', '\\'], "?")
            )
        })
    }

    /// Whether `code` appears among the rejections.
    pub fn has_code(&self, code: &str) -> bool {
        self.rejections.iter().any(|r| r.code == code)
    }
}

/// Rejection accumulator with per-code detail capping.
struct Ctx {
    rejections: Vec<Rejection>,
    counts: BTreeMap<String, u64>,
}

impl Ctx {
    fn new() -> Ctx {
        Ctx {
            rejections: Vec::new(),
            counts: BTreeMap::new(),
        }
    }

    fn reject(&mut self, code: &str, detail: impl Into<String>) {
        let n = self.counts.entry(code.to_string()).or_insert(0);
        *n += 1;
        if *n <= MAX_DETAILS_PER_CODE {
            self.rejections.push(Rejection {
                code: code.to_string(),
                detail: detail.into(),
            });
        }
    }

    fn finish(mut self, format_version: u64, kind: &str, algo: &str) -> Verdict {
        for (code, n) in &self.counts {
            if *n > MAX_DETAILS_PER_CODE {
                self.rejections.push(Rejection {
                    code: code.clone(),
                    detail: format!("… and {} more", n - MAX_DETAILS_PER_CODE),
                });
            }
        }
        Verdict {
            format_version,
            kind: kind.to_string(),
            algo: algo.to_string(),
            accepted: self.rejections.is_empty(),
            rejections: self.rejections,
        }
    }
}

/// Verifies a serialized certificate. Parse failures and stale versions are
/// rejected without attempting a full decode.
pub fn verify_json(s: &str) -> Verdict {
    let value: serde::Value = match serde_json::from_str(s) {
        Ok(v) => v,
        Err(e) => {
            let mut ctx = Ctx::new();
            ctx.reject(codes::V_MALFORMED, format!("JSON parse failure: {e}"));
            return ctx.finish(0, "", "");
        }
    };
    let Some(version) = format::peek_version(&value) else {
        let mut ctx = Ctx::new();
        ctx.reject(codes::V_MALFORMED, "missing or non-integer `version` field");
        return ctx.finish(0, "", "");
    };
    if version != FORMAT_VERSION as u64 {
        let mut ctx = Ctx::new();
        ctx.reject(
            codes::V_VERSION,
            format!("certificate has format version {version}, verifier supports {FORMAT_VERSION}"),
        );
        return ctx.finish(version, "", "");
    }
    match Certificate::from_value(&value) {
        Ok(cert) => verify(&cert),
        Err(e) => {
            let mut ctx = Ctx::new();
            ctx.reject(codes::V_MALFORMED, format!("decode failure: {e}"));
            ctx.finish(version, "", "")
        }
    }
}

/// Verifies an in-memory certificate.
pub fn verify(cert: &Certificate) -> Verdict {
    let kind = cert.payload.kind();
    let algo = cert.base.name.as_str();
    let version = cert.version as u64;
    let mut ctx = Ctx::new();

    if cert.version != FORMAT_VERSION {
        ctx.reject(
            codes::V_VERSION,
            format!(
                "certificate has format version {}, verifier supports {FORMAT_VERSION}",
                cert.version
            ),
        );
        return ctx.finish(version, kind, algo);
    }

    match &cert.payload {
        Payload::Routing(p) => verify_routing(cert, p, &mut ctx),
        Payload::Schedule(p) => verify_schedule(cert, p, &mut ctx),
        Payload::Sweep(p) => verify_sweep(cert, p, &mut ctx),
    }
    ctx.finish(version, kind, algo)
}

/// Builds the view, mapping construction failures to reject codes. Also
/// enforces the per-vertex walk ceiling when `walk` is set.
fn build_view(cert: &Certificate, r: u32, walk: bool, ctx: &mut Ctx) -> Option<IndexView> {
    let view = match crate::view::view_of(&cert.base, r) {
        Ok(v) => v,
        Err(ViewError::Shape(e)) => {
            ctx.reject(codes::V_BASE_INVALID, e);
            return None;
        }
        Err(ViewError::Params(e)) => {
            ctx.reject(codes::V_PARAMS, e);
            return None;
        }
    };
    if walk && view.n_vertices() as u64 > MAX_WALK_VERTICES {
        ctx.reject(
            codes::V_PARAMS,
            format!(
                "G_{r} has {} vertices, above the verifier's walk ceiling",
                view.n_vertices()
            ),
        );
        return None;
    }
    if let Err(e) = crate::view::check_tensor(&cert.base) {
        ctx.reject(codes::V_BASE_INVALID, e);
        return None;
    }
    Some(view)
}

fn verify_routing(cert: &Certificate, p: &RoutingPayload, ctx: &mut Ctx) {
    if p.k < 1 || p.k > p.r {
        ctx.reject(
            codes::V_PARAMS,
            format!("routing requires 1 ≤ k ≤ r, got k = {}, r = {}", p.k, p.r),
        );
        return;
    }
    // The k-view is walked per-vertex (copy grouping); the r-view is only
    // probed through lift/preds, so it needs no walk ceiling.
    let Some(kview) = build_view(cert, p.k, true, ctx) else {
        return;
    };
    let Some(rview) = build_view(cert, p.r, false, ctx) else {
        return;
    };

    // a^k fits whenever the k-view built, but reject rather than assume.
    let Some(ak) = checked_pow(kview.a() as u64, p.k) else {
        ctx.reject(codes::V_PARAMS, "a^k overflows the id space");
        return;
    };
    let Some(expected_paths) = ak.checked_mul(ak).and_then(|x| x.checked_mul(2)) else {
        ctx.reject(codes::V_PARAMS, "expected path count 2a^{2k} overflows");
        return;
    };
    if expected_paths > MAX_PATHS {
        ctx.reject(
            codes::V_PARAMS,
            format!("{expected_paths} paths exceed the verifier's ceiling"),
        );
        return;
    }

    let true_bound = 6 * ak; // cannot overflow: ak ≤ MAX_PATHS
    if p.bound != true_bound {
        ctx.reject(
            codes::V_ROUTE_BOUND,
            format!(
                "claimed bound {} but the Routing Theorem gives 6a^k = {true_bound}",
                p.bound
            ),
        );
    }
    if p.paths.len() as u64 != expected_paths {
        ctx.reject(
            codes::V_ROUTE_PATH_COUNT,
            format!(
                "{} paths, an in-out routing of G_{} has {expected_paths}",
                p.paths.len(),
                p.k
            ),
        );
    }

    // Per-path structural validation on the standalone G_k, plus pair
    // coverage and the hit recount over structurally valid paths.
    let n_local = kview.n_vertices();
    let mut counter = HitCounter::with_groups(kview.copy_roots());
    let outputs = kview.outputs_count();
    let mut pair_seen = vec![false; expected_paths as usize];
    let mut preds = Vec::new();
    for (i, path) in p.paths.iter().enumerate() {
        if path.is_empty() {
            ctx.reject(codes::V_ROUTE_NON_EDGE, format!("path {i} is empty"));
            continue;
        }
        if let Some(&bad) = path.iter().find(|&&v| v >= n_local) {
            ctx.reject(
                codes::V_MALFORMED,
                format!("path {i} references vertex {bad}, G_{} has {n_local}", p.k),
            );
            continue;
        }
        let mut ok = true;
        for (j, w) in path.windows(2).enumerate() {
            let &[u, v] = w else { continue };
            // Forward orientation: each hop's later vertex lists the earlier
            // one among its predecessors; accept either direction so path
            // storage order is not part of the format contract.
            preds.clear();
            kview.preds_into(v, &mut preds);
            let mut edge = preds.contains(&u);
            if !edge {
                preds.clear();
                kview.preds_into(u, &mut preds);
                edge = preds.contains(&v);
            }
            if !edge {
                ctx.reject(
                    codes::V_ROUTE_NON_EDGE,
                    format!("path {i} hop {j}: ({u}, {v}) is not an edge of G_{}", p.k),
                );
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        let (Some(&s), Some(&t)) = (path.first(), path.last()) else {
            continue; // unreachable: emptiness rejected above
        };
        let pair = match (kview.input_ord(s), kview.output_ord(t)) {
            (Some(iord), Some(oord)) => Some((iord, oord)),
            _ => match (kview.input_ord(t), kview.output_ord(s)) {
                (Some(iord), Some(oord)) => Some((iord, oord)),
                _ => {
                    ctx.reject(
                        codes::V_ROUTE_PAIRS,
                        format!("path {i} endpoints ({s}, {t}) are not an input-output pair"),
                    );
                    None
                }
            },
        };
        if let Some((iord, oord)) = pair {
            let slot = (iord * outputs + oord) as usize;
            match pair_seen.get_mut(slot) {
                Some(true) => {
                    ctx.reject(
                        codes::V_ROUTE_PAIRS,
                        format!("pair (input {iord}, output {oord}) routed twice"),
                    );
                }
                Some(seen) => *seen = true,
                // Ordinals are bounded by the view's own input/output
                // counts, which size the table — defensive only.
                None => ctx.reject(
                    codes::V_ROUTE_PAIRS,
                    format!("pair (input {iord}, output {oord}) out of range"),
                ),
            }
        }
        counter.add_path(path.iter().copied());
    }
    let missing = pair_seen.iter().filter(|&&seen| !seen).count();
    if missing > 0 {
        ctx.reject(
            codes::V_ROUTE_PAIRS,
            format!("{missing} of {expected_paths} (input, output) pairs have no path"),
        );
    }

    let s = counter.summary();
    if s.max_vertex_hits > true_bound {
        let worst = counter.argmax_vertex().unwrap_or(0);
        ctx.reject(
            codes::V_ROUTE_VERTEX_OVERLOAD,
            format!(
                "vertex {worst} lies on {} paths, above the 6a^k = {true_bound} bound",
                s.max_vertex_hits
            ),
        );
    }
    if s.max_group_hits > true_bound {
        let worst = counter.argmax_group().unwrap_or(0);
        ctx.reject(
            codes::V_ROUTE_META_OVERLOAD,
            format!(
                "copy-group of vertex {worst} is hit by {} paths, above 6a^k = {true_bound}",
                s.max_group_hits
            ),
        );
    }
    if s.max_vertex_hits != p.max_vertex_hits || s.max_group_hits != p.max_meta_hits {
        ctx.reject(
            codes::V_ROUTE_CLAIM_MISMATCH,
            format!(
                "claimed hits (vertex {}, meta {}) but recount gives (vertex {}, meta {})",
                p.max_vertex_hits, p.max_meta_hits, s.max_vertex_hits, s.max_group_hits
            ),
        );
    }

    verify_transport(p, &kview, &rview, ctx);
}

/// Re-checks the Fact-1 transport: the prefix set must be exactly
/// `[b^{r-k}]`, and every lifted hop of every path must be an edge of `G_r`.
fn verify_transport(p: &RoutingPayload, kview: &IndexView, rview: &IndexView, ctx: &mut Ctx) {
    let Some(copies) = checked_pow(kview.b() as u64, p.r - p.k) else {
        ctx.reject(codes::V_PARAMS, "b^{r-k} overflows the id space");
        return;
    };
    if p.copy_prefixes.len() as u64 != copies {
        ctx.reject(
            codes::V_ROUTE_TRANSPORT,
            format!(
                "{} transport prefixes, Fact 1 gives b^{{r-k}} = {copies} copies",
                p.copy_prefixes.len()
            ),
        );
    }
    let mut seen = vec![false; copies as usize];
    let mut prefixes_ok = Vec::new();
    for &prefix in &p.copy_prefixes {
        match usize::try_from(prefix).ok().and_then(|i| seen.get_mut(i)) {
            None => ctx.reject(
                codes::V_ROUTE_TRANSPORT,
                format!("prefix {prefix} out of range [0, {copies})"),
            ),
            Some(true) => ctx.reject(
                codes::V_ROUTE_TRANSPORT,
                format!("prefix {prefix} duplicated"),
            ),
            Some(s) => {
                *s = true;
                prefixes_ok.push(prefix);
            }
        }
    }

    let work = (prefixes_ok.len() as u64).saturating_mul(p.paths.len() as u64);
    if work > MAX_TRANSPORT_WORK {
        ctx.reject(
            codes::V_PARAMS,
            format!("transport re-walk of {work} path-copies exceeds the verifier's ceiling"),
        );
        return;
    }
    let n_local = kview.n_vertices();
    let mut preds = Vec::new();
    for &prefix in &prefixes_ok {
        let mut bad = false;
        for path in &p.paths {
            if path.is_empty() || path.iter().any(|&v| v >= n_local) {
                continue; // already rejected structurally
            }
            for w in path.windows(2) {
                let &[hu, hv] = w else { continue };
                let (Some(lu), Some(lv)) =
                    (rview.lift(kview, prefix, hu), rview.lift(kview, prefix, hv))
                else {
                    ctx.reject(
                        codes::V_ROUTE_TRANSPORT,
                        format!("prefix {prefix}: hop ({hu}, {hv}) does not lift into G_r"),
                    );
                    bad = true;
                    break;
                };
                preds.clear();
                rview.preds_into(lv, &mut preds);
                let mut edge = preds.contains(&lu);
                if !edge {
                    preds.clear();
                    rview.preds_into(lu, &mut preds);
                    edge = preds.contains(&lv);
                }
                if !edge {
                    ctx.reject(
                        codes::V_ROUTE_TRANSPORT,
                        format!(
                            "prefix {prefix}: lifted hop ({lu}, {lv}) is not an edge of G_{}",
                            p.r
                        ),
                    );
                    bad = true;
                    break;
                }
            }
            if bad {
                break; // one broken copy is enough evidence for this prefix
            }
        }
    }
}

/// Total-access replay column: reads off the end yield the zero value,
/// writes off the end are dropped. Vertex ids are validated against the
/// view size before replay begins, so the defensive path never executes
/// — it exists to keep the replay free of panic sites.
struct Col<T: Copy + Default>(Vec<T>);

impl<T: Copy + Default> Col<T> {
    fn new(n: usize) -> Col<T> {
        Col(vec![T::default(); n])
    }
    fn get(&self, i: usize) -> T {
        self.0.get(i).copied().unwrap_or_default()
    }
    fn set(&mut self, i: usize, val: T) {
        if let Some(slot) = self.0.get_mut(i) {
            *slot = val;
        }
    }
}

fn verify_schedule(cert: &Certificate, p: &SchedulePayload, ctx: &mut Ctx) {
    if p.ops.len() != p.vertices.len() {
        ctx.reject(
            codes::V_MALFORMED,
            format!("{} ops but {} vertices", p.ops.len(), p.vertices.len()),
        );
        return;
    }
    if p.res_vertex.len() != p.res_start.len() || p.res_vertex.len() != p.res_end.len() {
        ctx.reject(codes::V_MALFORMED, "residency columns have unequal lengths");
        return;
    }
    let Some(view) = build_view(cert, p.r, true, ctx) else {
        return;
    };
    let n = view.n_vertices();
    if let Some(&bad) = p.vertices.iter().find(|&&v| v >= n) {
        ctx.reject(
            codes::V_MALFORMED,
            format!("schedule references vertex {bad}, G_{} has {n}", p.r),
        );
        return;
    }

    // Full replay under the machine-model rules of the pebble simulator,
    // with its exact error precedence. The replay stops at the first
    // illegality — later state would be fiction.
    let mut in_cache = Col::<bool>::new(n as usize);
    let mut computed = Col::<bool>::new(n as usize);
    let mut stored = Col::<bool>::new(n as usize);
    let mut open = Col::<u64>::new(n as usize);
    let mut intervals: Vec<(u32, u64, u64)> = Vec::new();
    let mut occupancy: u64 = 0;
    let mut peak: u64 = 0;
    let (mut loads, mut stores, mut computes) = (0u64, 0u64, 0u64);
    let mut preds = Vec::new();
    let mut legal = true;

    for (i, (op, &v)) in p.ops.chars().zip(&p.vertices).enumerate() {
        let vi = v as usize;
        match op {
            'L' => {
                if !view.is_input(v) && !stored.get(vi) {
                    ctx.reject(
                        codes::V_SCHED_BAD_LOAD,
                        format!("action {i}: load of {v}, which is not in slow memory"),
                    );
                    legal = false;
                } else if in_cache.get(vi) {
                    ctx.reject(
                        codes::V_SCHED_BAD_LOAD,
                        format!("action {i}: load of {v}, which is already cached"),
                    );
                    legal = false;
                } else if occupancy >= p.m {
                    ctx.reject(
                        codes::V_SCHED_CAPACITY,
                        format!("action {i}: load of {v} into a full cache (M = {})", p.m),
                    );
                    legal = false;
                } else {
                    in_cache.set(vi, true);
                    open.set(vi, i as u64);
                    occupancy += 1;
                    loads += 1;
                }
            }
            'S' => {
                if !in_cache.get(vi) {
                    ctx.reject(
                        codes::V_SCHED_NOT_RESIDENT,
                        format!("action {i}: store of non-resident {v}"),
                    );
                    legal = false;
                } else {
                    stored.set(vi, true);
                    stores += 1;
                }
            }
            'D' => {
                if !in_cache.get(vi) {
                    ctx.reject(
                        codes::V_SCHED_NOT_RESIDENT,
                        format!("action {i}: drop of non-resident {v}"),
                    );
                    legal = false;
                } else {
                    in_cache.set(vi, false);
                    intervals.push((v, open.get(vi), i as u64));
                    occupancy -= 1;
                }
            }
            'C' => {
                preds.clear();
                view.preds_into(v, &mut preds);
                if view.is_input(v) {
                    ctx.reject(
                        codes::V_SCHED_BAD_COMPUTE,
                        format!("action {i}: compute of input {v}"),
                    );
                    legal = false;
                } else if computed.get(vi) {
                    ctx.reject(
                        codes::V_SCHED_BAD_COMPUTE,
                        format!("action {i}: recomputation of {v}"),
                    );
                    legal = false;
                } else if let Some(&missing) = preds.iter().find(|&&q| !in_cache.get(q as usize)) {
                    ctx.reject(
                        codes::V_SCHED_MISSING_OPERAND,
                        format!("action {i}: compute of {v} with operand {missing} not cached"),
                    );
                    legal = false;
                } else if occupancy >= p.m {
                    ctx.reject(
                        codes::V_SCHED_CAPACITY,
                        format!("action {i}: compute of {v} into a full cache (M = {})", p.m),
                    );
                    legal = false;
                } else {
                    in_cache.set(vi, true);
                    open.set(vi, i as u64);
                    occupancy += 1;
                    computed.set(vi, true);
                    computes += 1;
                }
            }
            other => {
                ctx.reject(
                    codes::V_MALFORMED,
                    format!("action {i}: unknown op character {other:?}"),
                );
                legal = false;
            }
        }
        if !legal {
            return;
        }
        peak = peak.max(occupancy);
    }

    // Terminal conditions: every non-input computed, every output stored.
    for v in 0..n {
        if !view.is_input(v) && !computed.get(v as usize) {
            ctx.reject(
                codes::V_SCHED_INCOMPLETE,
                format!("vertex {v} never computed"),
            );
        }
        if view.is_output(v) && !stored.get(v as usize) {
            ctx.reject(
                codes::V_SCHED_INCOMPLETE,
                format!("output {v} never stored"),
            );
        }
    }

    if (loads, stores, computes) != (p.loads, p.stores, p.computes) {
        ctx.reject(
            codes::V_SCHED_COUNTER_MISMATCH,
            format!(
                "claimed (loads {}, stores {}, computes {}) but replay gives ({loads}, {stores}, {computes})",
                p.loads, p.stores, p.computes
            ),
        );
    }
    if peak != p.peak_occupancy {
        ctx.reject(
            codes::V_SCHED_WITNESS_MISMATCH,
            format!(
                "claimed peak occupancy {} but replay gives {peak}",
                p.peak_occupancy
            ),
        );
    }
    // Residency intervals: values still resident at termination close at
    // the trace length. Compare as sorted multisets.
    let len = p.ops.len() as u64;
    for v in 0..n as usize {
        if in_cache.get(v) {
            intervals.push((v as u32, open.get(v), len));
        }
    }
    let mut claimed: Vec<(u32, u64, u64)> = p
        .res_vertex
        .iter()
        .zip(&p.res_start)
        .zip(&p.res_end)
        .map(|((&v, &s), &e)| (v, s, e))
        .collect();
    intervals.sort_unstable();
    claimed.sort_unstable();
    if intervals != claimed {
        ctx.reject(
            codes::V_SCHED_WITNESS_MISMATCH,
            format!(
                "claimed {} residency intervals disagree with the replay's {}",
                claimed.len(),
                intervals.len()
            ),
        );
    }
}

fn verify_sweep(cert: &Certificate, p: &SweepPayload, ctx: &mut Ctx) {
    let cols = [
        p.feasible.len(),
        p.loads.len(),
        p.stores.len(),
        p.computes.len(),
    ];
    if cols.iter().any(|&l| l != p.ms.len()) {
        ctx.reject(
            codes::V_SWEEP_MALFORMED,
            format!(
                "grid has {} cache sizes but columns of lengths {cols:?}",
                p.ms.len()
            ),
        );
        return;
    }
    for (i, &m) in p.ms.iter().enumerate() {
        if p.ms.iter().take(i).any(|&prior| prior == m) {
            ctx.reject(codes::V_SWEEP_MALFORMED, format!("cache size {m} repeats"));
        }
    }
    // Floors come from closed forms only — no per-vertex walk, so no size
    // ceiling is needed here.
    let Some(view) = build_view(cert, p.r, false, ctx) else {
        return;
    };
    let need = view.max_indegree() as u64 + 1;
    let used_inputs = view.used_inputs();
    let outputs = view.outputs_count();
    let work = view.n_vertices() as u64 - view.inputs_count();
    let rows =
        p.ms.iter()
            .zip(&p.feasible)
            .zip(&p.loads)
            .zip(&p.stores)
            .zip(&p.computes);
    for ((((&m, &feasible), &loads), &stores), &computes) in rows {
        if feasible != (m >= need) {
            ctx.reject(
                codes::V_SWEEP_FLOOR,
                format!(
                    "M = {m}: declared {}feasible but the minimum cache is {need}",
                    if feasible { "" } else { "in" }
                ),
            );
            continue;
        }
        if !feasible {
            if loads != 0 || stores != 0 || computes != 0 {
                ctx.reject(
                    codes::V_SWEEP_FLOOR,
                    format!("M = {m}: infeasible point carries nonzero I/O claims"),
                );
            }
            continue;
        }
        if loads < used_inputs {
            ctx.reject(
                codes::V_SWEEP_FLOOR,
                format!("M = {m}: {loads} loads, below the {used_inputs} used inputs"),
            );
        }
        if stores < outputs {
            ctx.reject(
                codes::V_SWEEP_FLOOR,
                format!("M = {m}: {stores} stores, below the {outputs} outputs"),
            );
        }
        if computes != work {
            ctx.reject(
                codes::V_SWEEP_WORK,
                format!("M = {m}: {computes} computes, the non-input vertex count is {work}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{unit_base, unit_routing, unit_schedule};

    #[test]
    fn unit_routing_accepted() {
        let v = verify(&unit_routing());
        assert!(v.accepted, "rejections: {:?}", v.rejections);
        // And survives a JSON round trip.
        let v = verify_json(&unit_routing().to_json());
        assert!(v.accepted, "rejections: {:?}", v.rejections);
    }

    #[test]
    fn unit_schedule_replay() {
        // The schedule above is illegal: peak occupancy 5 exceeds M = 4.
        let mut cert = unit_schedule();
        if let Payload::Schedule(p) = &mut cert.payload {
            p.m = 4;
        }
        let v = verify(&cert);
        assert!(!v.accepted);
        assert!(v.has_code(codes::V_SCHED_CAPACITY), "{:?}", v.rejections);

        // With M = 5 it is legal and all claims match.
        let mut cert = unit_schedule();
        if let Payload::Schedule(p) = &mut cert.payload {
            p.m = 5;
        }
        let v = verify(&cert);
        assert!(v.accepted, "rejections: {:?}", v.rejections);
    }

    #[test]
    fn stale_version_rejected_before_decode() {
        let mut cert = unit_routing();
        cert.version = 99;
        let v = verify_json(&cert.to_json());
        assert!(!v.accepted);
        assert!(v.has_code(codes::V_VERSION));
        assert_eq!(v.format_version, 99);
    }

    #[test]
    fn garbage_never_panics() {
        for s in [
            "",
            "{",
            "[1,2,3]",
            "{\"version\":true}",
            "{\"a\":1}",
            "null",
        ] {
            let v = verify_json(s);
            assert!(!v.accepted);
            assert!(
                v.has_code(codes::V_MALFORMED) || v.has_code(codes::V_VERSION),
                "input {s:?} gave {:?}",
                v.rejections
            );
        }
    }

    #[test]
    fn corrupt_routing_rejections() {
        // Non-edge hop.
        let mut cert = unit_routing();
        if let Payload::Routing(p) = &mut cert.payload {
            p.paths[0][1] = p.paths[0][0];
        }
        let v = verify(&cert);
        assert!(!v.accepted);
        assert!(v.has_code(codes::V_ROUTE_NON_EDGE), "{:?}", v.rejections);

        // Wrong bound.
        let mut cert = unit_routing();
        if let Payload::Routing(p) = &mut cert.payload {
            p.bound += 1;
        }
        assert!(verify(&cert).has_code(codes::V_ROUTE_BOUND));

        // Dropped path: count and pair coverage both fire.
        let mut cert = unit_routing();
        if let Payload::Routing(p) = &mut cert.payload {
            p.paths.pop();
            p.max_meta_hits = 1;
        }
        let v = verify(&cert);
        assert!(v.has_code(codes::V_ROUTE_PATH_COUNT));
        assert!(v.has_code(codes::V_ROUTE_PAIRS));

        // Claim mismatch.
        let mut cert = unit_routing();
        if let Payload::Routing(p) = &mut cert.payload {
            p.max_vertex_hits += 1;
        }
        assert!(verify(&cert).has_code(codes::V_ROUTE_CLAIM_MISMATCH));

        // Transport prefix out of range.
        let mut cert = unit_routing();
        if let Payload::Routing(p) = &mut cert.payload {
            p.copy_prefixes = vec![1];
        }
        let v = verify(&cert);
        assert!(v.has_code(codes::V_ROUTE_TRANSPORT), "{:?}", v.rejections);
    }

    #[test]
    fn corrupt_base_rejected() {
        use mmio_matrix::Rational;
        let mut cert = unit_routing();
        cert.base.dec[(0, 0)] = Rational::ZERO;
        let v = verify(&cert);
        assert!(!v.accepted);
        assert!(v.has_code(codes::V_BASE_INVALID));
    }

    #[test]
    fn sweep_floors_enforced() {
        // unit at r=1: need = 3, used inputs = 2, outputs = 1, work = 4.
        let sweep = |ms: Vec<u64>,
                     feasible: Vec<bool>,
                     loads: Vec<u64>,
                     stores: Vec<u64>,
                     computes: Vec<u64>| {
            Certificate::new(
                unit_base(),
                Payload::Sweep(crate::format::SweepPayload {
                    r: 1,
                    policy: "lru".into(),
                    ms,
                    feasible,
                    loads,
                    stores,
                    computes,
                }),
            )
        };
        let ok = sweep(
            vec![2, 5],
            vec![false, true],
            vec![0, 2],
            vec![0, 1],
            vec![0, 4],
        );
        let v = verify(&ok);
        assert!(v.accepted, "rejections: {:?}", v.rejections);

        let bad = sweep(
            vec![2, 5],
            vec![false, true],
            vec![0, 1],
            vec![0, 1],
            vec![0, 4],
        );
        assert!(verify(&bad).has_code(codes::V_SWEEP_FLOOR));

        let bad = sweep(
            vec![2, 5],
            vec![false, true],
            vec![0, 2],
            vec![0, 1],
            vec![0, 5],
        );
        assert!(verify(&bad).has_code(codes::V_SWEEP_WORK));

        let bad = sweep(
            vec![5, 5],
            vec![true, true],
            vec![2, 2],
            vec![1, 1],
            vec![4, 4],
        );
        assert!(verify(&bad).has_code(codes::V_SWEEP_MALFORMED));
    }
}
