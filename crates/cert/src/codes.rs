//! The `MMIO-Vxxx` reject-code registry of the certificate verifier.
//!
//! Codes are stable identifiers: the golden corrupted-certificate corpus,
//! the mutation harness, and downstream tooling match on them, so a code is
//! never reused for a different meaning. The family sits alongside the
//! analyzer's `Axxx`/`Sxxx`/`Rxxx`/`Cxxx`/`Dxxx` families (see
//! `mmio-analyze::codes`); `Vxxx` is reserved for the *standalone* verifier,
//! which re-derives structure instead of linking against the engines.

/// Unsupported certificate format version.
pub const V_VERSION: &str = "MMIO-V001";
/// Malformed certificate: JSON parse failure, missing or mistyped fields,
/// inconsistent array lengths, or vertex ids out of range.
pub const V_MALFORMED: &str = "MMIO-V002";
/// The embedded base graph is not a matrix-multiplication algorithm
/// (inconsistent coefficient shapes or tensor-identity violations).
pub const V_BASE_INVALID: &str = "MMIO-V003";
/// Certificate parameters out of range (`k` or `r` outside the supported
/// window, or the implied graph exceeds the dense `u32` id space).
pub const V_PARAMS: &str = "MMIO-V004";

/// A routing path is empty or traverses a hop that is not an edge of `G_k`
/// under the closed-form predecessor rules.
pub const V_ROUTE_NON_EDGE: &str = "MMIO-V010";
/// Endpoint/pair-coverage violation: a path does not connect an input to an
/// output, or some (input, output) pair is missing or duplicated.
pub const V_ROUTE_PAIRS: &str = "MMIO-V011";
/// A vertex lies on more paths than the claimed bound.
pub const V_ROUTE_VERTEX_OVERLOAD: &str = "MMIO-V012";
/// A copy-group (meta-vertex) is hit by more paths than the claimed bound.
pub const V_ROUTE_META_OVERLOAD: &str = "MMIO-V013";
/// The claimed hit counts disagree with the verifier's recount.
pub const V_ROUTE_CLAIM_MISMATCH: &str = "MMIO-V014";
/// Wrong number of paths (an in-out routing has `2a^{2k}`).
pub const V_ROUTE_PATH_COUNT: &str = "MMIO-V015";
/// Fact-1 transport invalid: prefix out of range, duplicated, wrong prefix
/// count, or a transported path breaks an edge of `G_r`.
pub const V_ROUTE_TRANSPORT: &str = "MMIO-V016";
/// The claimed bound is not the Routing Theorem's `6a^k`.
pub const V_ROUTE_BOUND: &str = "MMIO-V017";

/// Illegal load: value not residing in slow memory, or already cached.
pub const V_SCHED_BAD_LOAD: &str = "MMIO-V020";
/// Store or drop of a value not resident in cache.
pub const V_SCHED_NOT_RESIDENT: &str = "MMIO-V021";
/// Cache occupancy would exceed `M`.
pub const V_SCHED_CAPACITY: &str = "MMIO-V022";
/// Compute with a predecessor missing from cache.
pub const V_SCHED_MISSING_OPERAND: &str = "MMIO-V023";
/// Illegal compute: input vertex, or recomputation.
pub const V_SCHED_BAD_COMPUTE: &str = "MMIO-V024";
/// Terminal conditions violated: a vertex never computed or an output never
/// stored.
pub const V_SCHED_INCOMPLETE: &str = "MMIO-V025";
/// Claimed I/O counters (loads/stores/computes) disagree with the replay.
pub const V_SCHED_COUNTER_MISMATCH: &str = "MMIO-V026";
/// Claimed residency intervals or peak occupancy disagree with the replay.
pub const V_SCHED_WITNESS_MISMATCH: &str = "MMIO-V027";

/// Sweep witness malformed: column lengths differ or a cache size repeats.
pub const V_SWEEP_MALFORMED: &str = "MMIO-V030";
/// Sweep point violates a structural floor (loads below the used-input
/// count, stores below the output count, or feasibility misdeclared).
pub const V_SWEEP_FLOOR: &str = "MMIO-V031";
/// Sweep point's compute count differs from the non-input vertex count.
pub const V_SWEEP_WORK: &str = "MMIO-V032";

/// `(code, one-line description)` for every registered code, in order —
/// the source of the documentation table in `DESIGN.md`.
pub const TABLE: &[(&str, &str)] = &[
    (V_VERSION, "unsupported certificate format version"),
    (V_MALFORMED, "malformed certificate (parse/shape/id errors)"),
    (
        V_BASE_INVALID,
        "embedded base graph fails the tensor identity",
    ),
    (V_PARAMS, "parameters out of the supported range"),
    (V_ROUTE_NON_EDGE, "path empty or traverses a non-edge"),
    (
        V_ROUTE_PAIRS,
        "in-out pair missing, duplicated, or malformed",
    ),
    (
        V_ROUTE_VERTEX_OVERLOAD,
        "vertex hits exceed the claimed bound",
    ),
    (
        V_ROUTE_META_OVERLOAD,
        "copy-group hits exceed the claimed bound",
    ),
    (
        V_ROUTE_CLAIM_MISMATCH,
        "claimed hit counts disagree with recount",
    ),
    (V_ROUTE_PATH_COUNT, "wrong number of paths (need 2a^{2k})"),
    (
        V_ROUTE_TRANSPORT,
        "Fact-1 transport prefix or edge lift invalid",
    ),
    (V_ROUTE_BOUND, "claimed bound is not 6a^k"),
    (
        V_SCHED_BAD_LOAD,
        "illegal load (unavailable or already cached)",
    ),
    (V_SCHED_NOT_RESIDENT, "store/drop of non-resident value"),
    (V_SCHED_CAPACITY, "cache occupancy exceeds M"),
    (V_SCHED_MISSING_OPERAND, "compute with non-resident operand"),
    (V_SCHED_BAD_COMPUTE, "compute of input or recomputation"),
    (
        V_SCHED_INCOMPLETE,
        "vertex never computed or output never stored",
    ),
    (
        V_SCHED_COUNTER_MISMATCH,
        "claimed I/O counters disagree with replay",
    ),
    (
        V_SCHED_WITNESS_MISMATCH,
        "residency/peak witness disagrees with replay",
    ),
    (
        V_SWEEP_MALFORMED,
        "sweep columns inconsistent or M repeated",
    ),
    (V_SWEEP_FLOOR, "sweep point below a structural I/O floor"),
    (
        V_SWEEP_WORK,
        "sweep compute count is not the non-input count",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = HashSet::new();
        for (code, desc) in TABLE {
            assert!(code.starts_with("MMIO-V"), "{code}");
            assert_eq!(code.len(), "MMIO-V000".len(), "{code}");
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(!desc.is_empty());
        }
    }
}
