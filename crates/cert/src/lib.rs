//! # mmio-cert
//!
//! Proof-carrying certificates for the path-routing pipeline: a stable,
//! versioned, serialized format for the objects the engines construct —
//! `6a^k`-routings with their Fact-1 transport, schedule-legality witnesses,
//! and pebble-sweep I/O witnesses — plus a standalone verifier with a
//! deliberately minimal trust base.
//!
//! The paper's contribution *is* a checkable object: the existence of the
//! routing certifies the lower bound. Until now the only thing checking our
//! routings was the same workspace that produced them. This crate turns
//! results into portable proof objects:
//!
//! - [`format`] — the certificate types and their JSON encoding. Every
//!   certificate embeds the base-graph coefficients, so a certificate is
//!   self-contained: no registry lookup, no shared state.
//! - [`view`] — [`view::IndexView`], the verifier's closed-form model of
//!   `G_r`: segment offsets, dense-id ↔ structured-address conversion,
//!   predecessor derivation, copy grouping, and the Fact-1 lift, all from
//!   pure mixed-radix index arithmetic over the embedded coefficients.
//!   **No materialized graph is ever built** — this is the first concrete
//!   step toward the implicit `CdagView` of the roadmap.
//! - [`verify`] — the verifier: parses, re-derives, recounts, and replays;
//!   rejects with structured `MMIO-V0xx` codes ([`codes`]) in a
//!   machine-readable [`verify::Verdict`]. It never panics on untrusted
//!   input.
//! - [`mutate`] — systematic certificate corruptions for the mutation-
//!   testing harness: every mutant must be killed by the verifier, with the
//!   expected reject codes recorded next to the corruption.
//!
//! ## Trust boundary
//!
//! The verifier trusts: exact rational arithmetic (`mmio-matrix`), the
//! shared hit-counting primitives (`mmio_cdag::hits`), mixed-radix helpers
//! (`mmio_cdag::index`), and the JSON shim. It re-derives everything else:
//! the tensor identity of the embedded algorithm, every edge a path
//! traverses, the copy grouping, the transport images, hit counts, schedule
//! legality, and sweep floors. It takes *nothing* from `mmio-core` or
//! `mmio-pebble` — those crates depend on `mmio-cert` to emit, never the
//! reverse.

#![deny(clippy::perf)]
#![forbid(unsafe_code)]

pub mod codes;
pub mod fixtures;
pub mod format;
pub mod mutate;
pub mod verify;
pub mod view;

pub use format::{Certificate, Payload, FORMAT_VERSION};
pub use verify::{verify, verify_json, Verdict};
