//! The versioned certificate format.
//!
//! A [`Certificate`] is a self-contained proof object: it embeds the base
//! graph's exact coefficients (so the verifier re-checks the tensor identity
//! instead of trusting an algorithm name) plus one [`Payload`] — a routing
//! witness, a schedule-legality witness, or a sweep I/O witness.
//!
//! ## Version/compat policy
//!
//! [`FORMAT_VERSION`] is bumped on any change that alters the meaning of an
//! existing field or the verification semantics. The verifier accepts
//! exactly the current version and rejects everything else with
//! `MMIO-V001` — a certificate is a proof, and a proof under different
//! rules is not a proof. Purely additive evolutions (new payload kinds)
//! keep the version; unknown kinds are rejected as malformed by old
//! verifiers, which is the safe direction.
//!
//! ## Encoding
//!
//! JSON via the workspace shims, with insertion-ordered object fields —
//! serialization is deterministic, so byte-stability across thread counts
//! reduces to value-stability of the emitting engines (which the
//! round-trip tests pin). Schedules are encoded as one action-kind
//! character per step (`L`oad/`S`tore/`C`ompute/`D`rop) plus a parallel
//! vertex array: compact, diffable, and free of nested enums the offline
//! serde shim cannot derive.

use serde::{de, Deserialize, Serialize, Value};

use mmio_matrix::{Matrix, Rational};

/// Current certificate format version (see the module docs for the policy).
pub const FORMAT_VERSION: u32 = 1;

/// The embedded base-graph coefficients: everything the closed-form view
/// needs to re-derive `G_r`. Mirrors `mmio_cdag::BaseGraph` data, but kept
/// as plain matrices so deserialization never runs engine constructors
/// (which panic on inconsistent shapes — the verifier must reject instead).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaseSpec {
    /// Algorithm name (informational; never trusted for structure).
    pub name: String,
    /// Block side `n₀` of one recursion step.
    pub n0: usize,
    /// `b × a` encoding of `A` (`a = n₀²`).
    pub enc_a: Matrix<Rational>,
    /// `b × a` encoding of `B`.
    pub enc_b: Matrix<Rational>,
    /// `a × b` decoding.
    pub dec: Matrix<Rational>,
}

impl BaseSpec {
    /// Snapshots an engine base graph's coefficients into the certificate
    /// form. This is the emitters' bridge; the verifier never goes the
    /// other way.
    pub fn from_base(g: &mmio_cdag::BaseGraph) -> BaseSpec {
        use mmio_cdag::base::Side;
        BaseSpec {
            name: g.name().to_string(),
            n0: g.n0(),
            enc_a: g.enc(Side::A).clone(),
            enc_b: g.enc(Side::B).clone(),
            dec: g.dec().clone(),
        }
    }
}

/// A `6a^k`-routing witness with its Fact-1 transport into `G_r`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutingPayload {
    /// Depth of the routed subgraph `G_k`.
    pub k: u32,
    /// Depth of the enclosing `G_r` the routing is transported into.
    pub r: u32,
    /// Claimed Routing Theorem bound (`6a^k`).
    pub bound: u64,
    /// Claimed maximum per-vertex hits over the paths.
    pub max_vertex_hits: u64,
    /// Claimed maximum per-copy-group hits (once per touching path).
    pub max_meta_hits: u64,
    /// The `2a^{2k}` paths, as dense vertex ids of the *standalone* `G_k`.
    pub paths: Vec<Vec<u32>>,
    /// Fact-1 transport: the multiplication prefixes (one per copy of `G_k`
    /// inside `G_r`) the routing is claimed to hold in. A complete
    /// transport lists all `b^{r-k}` prefixes.
    pub copy_prefixes: Vec<u64>,
}

/// A schedule-legality witness: the full action trace plus the claims the
/// verifier re-derives by replay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SchedulePayload {
    /// Recursion depth of the scheduled `G_r`.
    pub r: u32,
    /// Cache size `M` the schedule claims to respect.
    pub m: u64,
    /// One character per action: `L`oad, `S`tore, `C`ompute, `D`rop.
    pub ops: String,
    /// The acted-on vertex per action (dense `G_r` ids), parallel to `ops`.
    pub vertices: Vec<u32>,
    /// Claimed number of loads.
    pub loads: u64,
    /// Claimed number of stores.
    pub stores: u64,
    /// Claimed number of computes.
    pub computes: u64,
    /// Claimed peak cache occupancy over the whole trace.
    pub peak_occupancy: u64,
    /// Operand residency intervals: vertex `res_vertex[i]` is resident from
    /// just after action `res_start[i]` until just before action
    /// `res_end[i]` (`== ops.len()` when still resident at termination).
    pub res_vertex: Vec<u32>,
    /// Interval start action indices, parallel to `res_vertex`.
    pub res_start: Vec<u64>,
    /// Interval end action indices, parallel to `res_vertex`.
    pub res_end: Vec<u64>,
}

/// A pebble-sweep I/O witness: claimed exact I/O statistics over a cache-
/// size grid, checked against closed-form structural floors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepPayload {
    /// Recursion depth of the swept `G_r`.
    pub r: u32,
    /// Replacement-policy name (informational).
    pub policy: String,
    /// The cache-size grid.
    pub ms: Vec<u64>,
    /// Whether each grid point was feasible (`M ≥ max_indegree + 1`),
    /// parallel to `ms`.
    pub feasible: Vec<bool>,
    /// Claimed loads per feasible point (0 for infeasible), parallel to `ms`.
    pub loads: Vec<u64>,
    /// Claimed stores per point, parallel to `ms`.
    pub stores: Vec<u64>,
    /// Claimed computes per point, parallel to `ms`.
    pub computes: Vec<u64>,
}

/// The payload variants a certificate can carry.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A routing witness.
    Routing(RoutingPayload),
    /// A schedule-legality witness.
    Schedule(SchedulePayload),
    /// A sweep I/O witness.
    Sweep(SweepPayload),
}

impl Payload {
    /// The payload's kind tag as serialized.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Routing(_) => "routing",
            Payload::Schedule(_) => "schedule",
            Payload::Sweep(_) => "sweep",
        }
    }
}

/// A complete, self-contained certificate.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Format version ([`FORMAT_VERSION`] when emitted by this build).
    pub version: u32,
    /// The embedded base-graph coefficients.
    pub base: BaseSpec,
    /// The witness itself.
    pub payload: Payload,
}

impl Certificate {
    /// Wraps a payload in a current-version envelope.
    pub fn new(base: BaseSpec, payload: Payload) -> Certificate {
        Certificate {
            version: FORMAT_VERSION,
            base,
            payload,
        }
    }

    /// Serializes to compact, deterministic JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("certificates always serialize")
    }
}

impl Serialize for Certificate {
    fn to_value(&self) -> Value {
        let payload = match &self.payload {
            Payload::Routing(p) => p.to_value(),
            Payload::Schedule(p) => p.to_value(),
            Payload::Sweep(p) => p.to_value(),
        };
        Value::Object(vec![
            ("version".to_string(), self.version.to_value()),
            ("kind".to_string(), Value::Str(self.payload.kind().into())),
            ("base".to_string(), self.base.to_value()),
            ("payload".to_string(), payload),
        ])
    }
}

impl Deserialize for Certificate {
    fn from_value(v: &Value) -> Result<Certificate, de::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| de::Error::custom(format!("missing field `{name}`")))
        };
        let version = u32::from_value(field("version")?)?;
        let kind = String::from_value(field("kind")?)?;
        let base = BaseSpec::from_value(field("base")?)?;
        let payload = field("payload")?;
        let payload = match kind.as_str() {
            "routing" => Payload::Routing(RoutingPayload::from_value(payload)?),
            "schedule" => Payload::Schedule(SchedulePayload::from_value(payload)?),
            "sweep" => Payload::Sweep(SweepPayload::from_value(payload)?),
            other => {
                return Err(de::Error::custom(format!(
                    "unknown certificate kind `{other}`"
                )))
            }
        };
        Ok(Certificate {
            version,
            base,
            payload,
        })
    }
}

/// Reads just the `version` field of a certificate [`Value`], so the
/// verifier can distinguish "stale format" from "malformed" before
/// attempting a full decode.
pub fn peek_version(v: &Value) -> Option<u64> {
    match v.get("version") {
        Some(&Value::Int(i)) if i >= 0 => Some(i as u64),
        Some(&Value::UInt(u)) => Some(u),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> BaseSpec {
        let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
        BaseSpec {
            name: "unit".into(),
            n0: 1,
            enc_a: one.clone(),
            enc_b: one.clone(),
            dec: one,
        }
    }

    #[test]
    fn routing_roundtrip_is_identity_and_byte_stable() {
        let cert = Certificate::new(
            tiny_base(),
            Payload::Routing(RoutingPayload {
                k: 1,
                r: 2,
                bound: 6,
                max_vertex_hits: 2,
                max_meta_hits: 2,
                paths: vec![vec![0, 1, 2], vec![2, 1, 0]],
                copy_prefixes: vec![0],
            }),
        );
        let json = cert.to_json();
        let back: Certificate = serde_json::from_str(&json).unwrap();
        assert_eq!(back.to_json(), json, "serialization must be a fixpoint");
        assert_eq!(back.version, FORMAT_VERSION);
        match back.payload {
            Payload::Routing(p) => assert_eq!(p.paths.len(), 2),
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn schedule_and_sweep_roundtrip() {
        let sched = Certificate::new(
            tiny_base(),
            Payload::Schedule(SchedulePayload {
                r: 1,
                m: 3,
                ops: "LCS".into(),
                vertices: vec![0, 1, 1],
                loads: 1,
                stores: 1,
                computes: 1,
                peak_occupancy: 2,
                res_vertex: vec![0, 1],
                res_start: vec![0, 1],
                res_end: vec![3, 3],
            }),
        );
        let back: Certificate = serde_json::from_str(&sched.to_json()).unwrap();
        assert_eq!(back.payload.kind(), "schedule");

        let sweep = Certificate::new(
            tiny_base(),
            Payload::Sweep(SweepPayload {
                r: 1,
                policy: "lru".into(),
                ms: vec![2, 4],
                feasible: vec![false, true],
                loads: vec![0, 2],
                stores: vec![0, 1],
                computes: vec![0, 3],
            }),
        );
        let back: Certificate = serde_json::from_str(&sweep.to_json()).unwrap();
        assert_eq!(back.payload.kind(), "sweep");
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut cert_json = Certificate::new(
            tiny_base(),
            Payload::Sweep(SweepPayload {
                r: 1,
                policy: "lru".into(),
                ms: vec![],
                feasible: vec![],
                loads: vec![],
                stores: vec![],
                computes: vec![],
            }),
        )
        .to_json();
        cert_json = cert_json.replace("\"sweep\"", "\"oracle\"");
        assert!(serde_json::from_str::<Certificate>(&cert_json).is_err());
    }

    #[test]
    fn peek_version_reads_envelope_only() {
        let v: Value = serde_json::from_str(r#"{"version": 7, "junk": []}"#).unwrap();
        assert_eq!(peek_version(&v), Some(7));
        let v: Value = serde_json::from_str(r#"{"nope": 1}"#).unwrap();
        assert_eq!(peek_version(&v), None);
    }
}
