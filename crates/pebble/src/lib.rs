//! # mmio-pebble
//!
//! The paper's machine model, executable: a two-level memory hierarchy
//! (unbounded slow memory + cache of size `M`) in which CDAG computations
//! are scheduled and their I/O counted — the red–blue pebble game of Hong
//! and Kung [10], which the paper adopts verbatim (Section 1, "Machine
//! model").
//!
//! Model rules:
//!
//! - initially all inputs reside in slow memory and the cache is empty;
//! - moving one value between slow memory and cache costs one I/O (a *load*
//!   or a *store*);
//! - a vertex may be computed only when all its predecessors are in cache;
//!   the result appears in cache (needing a free slot);
//! - no value is ever computed twice;
//! - the computation ends when every output has been stored to slow memory.
//!
//! The *I/O-complexity* of an algorithm is the minimum number of I/Os over
//! all valid schedules. This crate provides:
//!
//! - [`sim`]: a strict validator/counter for explicit schedules;
//! - [`auto`]: a scheduler that turns a *compute order* into a valid
//!   schedule under a [`policy`] (LRU, Belady's MIN, random) and counts its
//!   I/O — the workhorse of every upper-bound measurement;
//! - [`orders`]: compute orders — rank-by-rank (pessimal locality), the
//!   recursive depth-first order of the actual Strassen-like algorithm
//!   (which attains the Theorem 1 lower bound, cf. [3]), and random
//!   topological orders;
//! - [`game`]: exact minimum-I/O search for tiny CDAGs (0-1 Dijkstra over
//!   pebbling states), used to validate the scheduler against ground truth;
//! - [`blocked`]: the classical blocked-multiplication I/O model
//!   (Hong–Kung `Θ(n³/√M)`), the baseline of experiment E10;
//! - [`sweep`]: pooled batch runs of (order × policy × M) grids with
//!   deterministic, thread-count-independent results.
//!
//! [`auto`] is the amortized-O(log M) heap-based engine; the original
//! scan-based engine survives as [`auto::reference`] and every release is
//! held to an exact equivalence contract between the two (same stats, same
//! schedules, same eviction sequences — see `tests/engine_equivalence.rs`).
//!
//! ```
//! use mmio_algos::strassen::strassen;
//! use mmio_cdag::build::build_cdag;
//! use mmio_pebble::{AutoScheduler, orders::recursive_order, policy::Lru};
//!
//! let g = build_cdag(&strassen(), 3); // 8×8 matmul CDAG
//! let order = recursive_order(&g);
//! let stats = AutoScheduler::new(&g, 16).run(&order, &mut Lru::new(g.n_vertices()));
//! assert!(stats.io() >= 2 * 64 + 64); // at least compulsory traffic
//! assert_eq!(stats.computes as usize, order.len());
//! ```

// The scheduler engine is the hot loop of every upper-bound experiment;
// performance lints are errors here, not suggestions.
#![deny(clippy::perf)]
#![forbid(unsafe_code)]

pub mod auto;
pub mod blocked;
pub mod cert;
pub mod game;
pub mod graph;
pub mod hierarchy;
#[cfg(feature = "mutate")]
pub mod mutate;
pub mod orders;
pub mod policy;
pub mod schedule;
pub mod sim;
pub mod stats;
pub mod sweep;
pub mod trace;

pub use auto::{AutoScheduler, CacheTooSmall, RunOptions, RunOutput, SchedScratch};
pub use graph::{PebbleGraph, ViewGraph};
pub use schedule::{Action, Schedule};
pub use stats::{EngineCounters, IoStats};
pub use sweep::{GridPoint, PolicySpec, SweepError, SweepPoint, SweepRun};

#[cfg(test)]
pub(crate) mod testutil {
    use mmio_cdag::BaseGraph;
    use mmio_matrix::{Matrix, Rational};

    /// Classical 2×2 base graph, the crate tests' workhorse.
    pub fn classical2_base() -> BaseGraph {
        let n0 = 2;
        let mut enc_a = Matrix::zeros(8, 4);
        let mut enc_b = Matrix::zeros(8, 4);
        let mut dec = Matrix::zeros(4, 8);
        let mut m = 0;
        for i in 0..n0 {
            for j in 0..n0 {
                for k in 0..n0 {
                    enc_a[(m, i * n0 + k)] = Rational::ONE;
                    enc_b[(m, k * n0 + j)] = Rational::ONE;
                    dec[(i * n0 + j, m)] = Rational::ONE;
                    m += 1;
                }
            }
        }
        BaseGraph::new("classical2", n0, enc_a, enc_b, dec)
    }
}
