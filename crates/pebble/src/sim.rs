//! Strict simulation of explicit schedules against the model rules.
//!
//! Cache state is a membership bitmap (`Vec<bool>`) plus an occupancy
//! counter — the simulator only ever asks "is v cached?" and "how many are
//! cached?", so the old `HashSet` bought nothing but hashing overhead on
//! the validation path of every recorded schedule.

use crate::graph::PebbleGraph;
use crate::schedule::{Action, Schedule};
use crate::stats::IoStats;
use mmio_cdag::VertexId;

/// A violation of the machine-model rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Load of a value not residing in slow memory (not an input, never
    /// stored).
    LoadUnavailable(VertexId),
    /// Load into a full cache.
    CacheFull(VertexId),
    /// Load of a value already in cache.
    AlreadyCached(VertexId),
    /// Store or drop of a value not in cache.
    NotCached(VertexId),
    /// Compute with a predecessor missing from cache.
    MissingOperand { vertex: VertexId, operand: VertexId },
    /// Vertex computed twice (the model forbids recomputation).
    Recompute(VertexId),
    /// Compute of an input vertex (inputs are given, not computed).
    ComputeInput(VertexId),
    /// Schedule ended with an output never stored to slow memory.
    OutputNotStored(VertexId),
    /// Schedule ended with a vertex never computed.
    NotComputed(VertexId),
}

/// Runs `schedule` on the CDAG under cache size `m`, verifying every rule.
/// Returns the exact I/O counts.
///
/// The terminal conditions require *all* vertices computed (the schedule is
/// for the whole algorithm) and all outputs stored.
///
/// Error precedence is part of the contract (pinned by regression tests):
/// `Load` checks availability, then double-caching, then capacity; `Compute`
/// checks input-ness, recomputation, then *every operand* (in predecessor
/// order) before capacity — a compute into a full cache with a missing
/// operand is a [`SimError::MissingOperand`], never a
/// [`SimError::CacheFull`].
pub fn simulate<G: PebbleGraph>(g: &G, schedule: &Schedule, m: usize) -> Result<IoStats, SimError> {
    let mut in_cache = vec![false; g.n_vertices()];
    let mut occupancy: usize = 0;
    let mut computed = vec![false; g.n_vertices()];
    let mut stored = vec![false; g.n_vertices()];
    let mut stats = IoStats::default();

    for &action in &schedule.actions {
        match action {
            Action::Load(v) => {
                let in_slow = g.is_input(v) || stored[v.idx()];
                if !in_slow {
                    return Err(SimError::LoadUnavailable(v));
                }
                if in_cache[v.idx()] {
                    return Err(SimError::AlreadyCached(v));
                }
                if occupancy >= m {
                    return Err(SimError::CacheFull(v));
                }
                in_cache[v.idx()] = true;
                occupancy += 1;
                stats.loads += 1;
            }
            Action::Store(v) => {
                if !in_cache[v.idx()] {
                    return Err(SimError::NotCached(v));
                }
                stored[v.idx()] = true;
                stats.stores += 1;
            }
            Action::Drop(v) => {
                if !in_cache[v.idx()] {
                    return Err(SimError::NotCached(v));
                }
                in_cache[v.idx()] = false;
                occupancy -= 1;
            }
            Action::Compute(v) => {
                if g.is_input(v) {
                    return Err(SimError::ComputeInput(v));
                }
                if computed[v.idx()] {
                    return Err(SimError::Recompute(v));
                }
                for &p in g.preds(v) {
                    if !in_cache[p.idx()] {
                        return Err(SimError::MissingOperand {
                            vertex: v,
                            operand: p,
                        });
                    }
                }
                if occupancy >= m {
                    return Err(SimError::CacheFull(v));
                }
                in_cache[v.idx()] = true;
                occupancy += 1;
                computed[v.idx()] = true;
                stats.computes += 1;
            }
        }
    }

    // Dense-id loops keep the pinned error precedence: every vertex's
    // NotComputed check runs before any OutputNotStored check, in id order
    // (identical to the old `vertices()` / `outputs()` iterator pair).
    for i in 0..g.n_vertices() as u32 {
        let v = VertexId(i);
        if !g.is_input(v) && !computed[v.idx()] {
            return Err(SimError::NotComputed(v));
        }
    }
    for i in 0..g.n_vertices() as u32 {
        let v = VertexId(i);
        if g.is_output(v) && !stored[v.idx()] {
            return Err(SimError::OutputNotStored(v));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_cdag::build::build_cdag;
    use mmio_cdag::{BaseGraph, Cdag};
    use mmio_matrix::{Matrix, Rational};

    /// The trivial 1×1 CDAG at r=1: inputs a, b; combos; product; output.
    fn tiny() -> Cdag {
        let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
        build_cdag(&BaseGraph::new("tiny", 1, one.clone(), one.clone(), one), 1)
    }

    /// A full valid schedule for `tiny`.
    fn valid_schedule(g: &Cdag) -> Schedule {
        let a = g.input_a(0, 0);
        let b = g.input_b(0, 0);
        let non_inputs: Vec<VertexId> = g.vertices().filter(|&v| !g.is_input(v)).collect();
        let out = g.outputs().next().unwrap();
        let mut actions = vec![Action::Load(a), Action::Load(b)];
        actions.extend(non_inputs.iter().map(|&v| Action::Compute(v)));
        actions.push(Action::Store(out));
        Schedule { actions }
    }

    #[test]
    fn valid_schedule_counts() {
        let g = tiny();
        let s = valid_schedule(&g);
        let stats = simulate(&g, &s, 16).unwrap();
        assert_eq!(stats.loads, 2);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.computes as usize, g.n_vertices() - 2);
        assert_eq!(stats.io(), 3);
    }

    #[test]
    fn cache_too_small_detected() {
        let g = tiny();
        let s = valid_schedule(&g);
        // Needs ≥3 live slots at the product step (a-combo, b-combo, result)…
        // with M=2 some action must fail.
        assert!(simulate(&g, &s, 2).is_err());
    }

    #[test]
    fn compute_without_operand_rejected() {
        let g = tiny();
        let prod = g.products().next().unwrap();
        let s = Schedule {
            actions: vec![Action::Compute(prod)],
        };
        assert!(matches!(
            simulate(&g, &s, 16),
            Err(SimError::MissingOperand { .. })
        ));
    }

    #[test]
    fn recompute_rejected() {
        let g = tiny();
        let a = g.input_a(0, 0);
        let b = g.input_b(0, 0);
        // EncA level 1 combo (copy of a).
        let combo = g.succs(a)[0];
        let s = Schedule {
            actions: vec![
                Action::Load(a),
                Action::Load(b),
                Action::Compute(combo),
                Action::Compute(combo),
            ],
        };
        assert_eq!(simulate(&g, &s, 16), Err(SimError::Recompute(combo)));
    }

    #[test]
    fn load_of_never_stored_intermediate_rejected() {
        let g = tiny();
        let prod = g.products().next().unwrap();
        let s = Schedule {
            actions: vec![Action::Load(prod)],
        };
        assert_eq!(simulate(&g, &s, 16), Err(SimError::LoadUnavailable(prod)));
    }

    #[test]
    fn missing_output_store_rejected() {
        let g = tiny();
        let mut s = valid_schedule(&g);
        s.actions.pop(); // remove the Store
        assert!(matches!(
            simulate(&g, &s, 16),
            Err(SimError::OutputNotStored(_))
        ));
    }

    #[test]
    fn incomplete_computation_rejected() {
        let g = tiny();
        let a = g.input_a(0, 0);
        let s = Schedule {
            actions: vec![Action::Load(a)],
        };
        assert!(matches!(
            simulate(&g, &s, 16),
            Err(SimError::NotComputed(_))
        ));
    }

    #[test]
    fn drop_frees_space() {
        let g = tiny();
        let a = g.input_a(0, 0);
        let b = g.input_b(0, 0);
        let combo_a = g.succs(a)[0];
        let combo_b = g.succs(b)[0];
        let prod = g.products().next().unwrap();
        let out = g.outputs().next().unwrap();
        // M = 3 with explicit drops: load a, compute combo_a, drop a, load b,
        // compute combo_b, drop b, compute prod (needs combo_a+combo_b+slot = 3 ✓)…
        let s = Schedule {
            actions: vec![
                Action::Load(a),
                Action::Compute(combo_a),
                Action::Drop(a),
                Action::Load(b),
                Action::Compute(combo_b),
                Action::Drop(b),
                Action::Compute(prod),
                Action::Drop(combo_a),
                Action::Drop(combo_b),
                Action::Compute(out),
                Action::Store(out),
            ],
        };
        let stats = simulate(&g, &s, 3).unwrap();
        assert_eq!(stats.io(), 3);
    }

    /// Satellite regression: `Compute` must report a missing operand before
    /// noticing the cache is full — the operand loop runs first, the
    /// capacity check reads occupancy *after* it. The bitmap rewrite keeps
    /// this order; this test pins it.
    #[test]
    fn compute_missing_operand_beats_cache_full() {
        let g = tiny();
        let a = g.input_a(0, 0);
        let prod = g.products().next().unwrap();
        // M = 1: after Load(a) the cache is full, and prod's operands are
        // absent. Both errors apply; MissingOperand must win.
        let s = Schedule {
            actions: vec![Action::Load(a), Action::Compute(prod)],
        };
        assert!(matches!(
            simulate(&g, &s, 1),
            Err(SimError::MissingOperand { vertex, .. }) if vertex == prod
        ));
    }

    /// Complement of the precedence pin: with all operands present, the same
    /// full cache *is* a `CacheFull`.
    #[test]
    fn compute_cache_full_when_operands_present() {
        let g = tiny();
        let a = g.input_a(0, 0);
        let b = g.input_b(0, 0);
        let combo_a = g.succs(a)[0];
        let s = Schedule {
            actions: vec![Action::Load(a), Action::Load(b), Action::Compute(combo_a)],
        };
        assert_eq!(simulate(&g, &s, 2), Err(SimError::CacheFull(combo_a)));
    }

    /// `Load` precedence: availability, then double-caching, then capacity.
    #[test]
    fn load_error_precedence() {
        let g = tiny();
        let a = g.input_a(0, 0);
        let combo_a = g.succs(a)[0];
        // Already cached beats cache-full at M = 1.
        let s = Schedule {
            actions: vec![Action::Load(a), Action::Load(a)],
        };
        assert_eq!(simulate(&g, &s, 1), Err(SimError::AlreadyCached(a)));
        // Unavailable beats already-cached: combo_a is in cache (computed)
        // but was never stored, so it does not reside in slow memory.
        let s = Schedule {
            actions: vec![
                Action::Load(a),
                Action::Compute(combo_a),
                Action::Load(combo_a),
            ],
        };
        assert_eq!(
            simulate(&g, &s, 16),
            Err(SimError::LoadUnavailable(combo_a))
        );
    }

    #[test]
    fn store_reload_roundtrip() {
        let g = tiny();
        let a = g.input_a(0, 0);
        let b = g.input_b(0, 0);
        let combo_a = g.succs(a)[0];
        let combo_b = g.succs(b)[0];
        let prod = g.products().next().unwrap();
        let out = g.outputs().next().unwrap();
        // Store combo_a, drop it, reload it later: exercises spilling.
        let s = Schedule {
            actions: vec![
                Action::Load(a),
                Action::Compute(combo_a),
                Action::Store(combo_a),
                Action::Drop(combo_a),
                Action::Drop(a),
                Action::Load(b),
                Action::Compute(combo_b),
                Action::Drop(b),
                Action::Load(combo_a),
                Action::Compute(prod),
                Action::Drop(combo_a),
                Action::Drop(combo_b),
                Action::Compute(out),
                Action::Store(out),
            ],
        };
        let stats = simulate(&g, &s, 3).unwrap();
        assert_eq!(stats.loads, 3);
        assert_eq!(stats.stores, 2);
    }
}
