//! The scheduler's minimal graph interface, and a compact materialization
//! of any [`CdagView`] behind it.
//!
//! The pebble engines ([`crate::AutoScheduler`], [`crate::sim::simulate`],
//! the order validators) consume exactly four things: the vertex count,
//! predecessor lists, and the input/output predicates. [`PebbleGraph`] pins
//! that surface so the engines run against either a full [`Cdag`] or a
//! [`ViewGraph`] — a predecessors-only CSR materialized from a closed-form
//! [`mmio_cdag::IndexView`] without ever allocating successor lists,
//! coefficient tables, or `VertexRef` lookup structures. The scheduler's
//! inner loop resolves `preds` millions of times per run, so the interface
//! keeps the slice-returning shape (a `preds_into` design would force a
//! scratch-buffer copy per step).

use mmio_cdag::{Cdag, CdagView, VertexId};

/// What a pebble-game engine needs from a graph. Implemented by the full
/// [`Cdag`] and by [`ViewGraph`].
pub trait PebbleGraph {
    /// Number of vertices (dense ids `0..n`).
    fn n_vertices(&self) -> usize;
    /// Predecessors of `v`, ascending by dense id.
    fn preds(&self, v: VertexId) -> &[VertexId];
    /// Whether `v` is an input (no predecessors in the model).
    fn is_input(&self, v: VertexId) -> bool;
    /// Whether `v` is an output (must be stored by every schedule).
    fn is_output(&self, v: VertexId) -> bool;
    /// The largest predecessor count (sets the minimum feasible cache).
    fn max_indegree(&self) -> usize {
        (0..self.n_vertices() as u32)
            .map(|i| self.preds(VertexId(i)).len())
            .max()
            .unwrap_or(0)
    }
}

impl PebbleGraph for Cdag {
    fn n_vertices(&self) -> usize {
        Cdag::n_vertices(self)
    }
    fn preds(&self, v: VertexId) -> &[VertexId] {
        Cdag::preds(self, v)
    }
    fn is_input(&self, v: VertexId) -> bool {
        Cdag::is_input(self, v)
    }
    fn is_output(&self, v: VertexId) -> bool {
        Cdag::is_output(self, v)
    }
}

/// A predecessors-only CSR built from any [`CdagView`]: the cheapest
/// structure the scheduler can run on. Compared to a materialized [`Cdag`]
/// it stores no successor lists, no edge coefficients, and no segment
/// tables — one `u64` offset and the flat predecessor ids per vertex, plus
/// two bitmaps.
pub struct ViewGraph {
    offsets: Vec<u64>,
    preds: Vec<VertexId>,
    is_input: Vec<bool>,
    is_output: Vec<bool>,
}

impl ViewGraph {
    /// Materializes the predecessor CSR of `g` in one streaming pass over
    /// the dense id space (vertices are visited in id order, and each
    /// view's `preds_into` appends ascending ids, so rows come out sorted
    /// exactly as in the builder's CSR).
    pub fn from_view<V: CdagView>(g: &V) -> ViewGraph {
        let n = g.n_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut preds = Vec::new();
        let mut is_input = vec![false; n];
        let mut is_output = vec![false; n];
        offsets.push(0u64);
        for i in 0..n as u32 {
            let v = VertexId(i);
            g.preds_into(v, &mut preds);
            offsets.push(preds.len() as u64);
            is_input[i as usize] = g.is_input(v);
            is_output[i as usize] = g.is_output(v);
        }
        ViewGraph {
            offsets,
            preds,
            is_input,
            is_output,
        }
    }
}

impl PebbleGraph for ViewGraph {
    fn n_vertices(&self) -> usize {
        self.is_input.len()
    }
    fn preds(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = (self.offsets[v.idx()], self.offsets[v.idx() + 1]);
        &self.preds[lo as usize..hi as usize]
    }
    fn is_input(&self, v: VertexId) -> bool {
        self.is_input[v.idx()]
    }
    fn is_output(&self, v: VertexId) -> bool {
        self.is_output[v.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::classical2_base;
    use mmio_cdag::build::build_cdag;
    use mmio_cdag::IndexView;

    #[test]
    fn view_graph_matches_cdag() {
        let base = classical2_base();
        for r in [1u32, 2, 3] {
            let g = build_cdag(&base, r);
            let vg = ViewGraph::from_view(&IndexView::from_base(&base, r));
            assert_eq!(PebbleGraph::n_vertices(&vg), Cdag::n_vertices(&g));
            assert_eq!(
                PebbleGraph::max_indegree(&vg),
                PebbleGraph::max_indegree(&g)
            );
            for v in g.vertices() {
                assert_eq!(PebbleGraph::preds(&vg, v), Cdag::preds(&g, v), "r={r}");
                assert_eq!(PebbleGraph::is_input(&vg, v), Cdag::is_input(&g, v));
                assert_eq!(PebbleGraph::is_output(&vg, v), Cdag::is_output(&g, v));
            }
        }
    }
}
