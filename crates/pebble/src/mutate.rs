//! Runtime-armed corruption switches for certificate emission — the
//! engine-side half of the mutation-testing harness for the scheduler (the
//! certificate-side half lives in `mmio-cert::mutate`, the routing-engine
//! half in `mmio-core::mutate`).
//!
//! Compiled only under the `mutate` feature and dormant until armed, so
//! cargo feature unification in test builds never changes behavior by
//! itself.

use std::sync::atomic::{AtomicBool, Ordering};

/// Silently drop the first `Store` from emitted schedule certificates.
/// Counters are recomputed from the mutated trace, so the lie is
/// self-consistent — it must be caught structurally (expected kill:
/// `MMIO-V025` output-never-stored, or `MMIO-V020` when a later reload
/// depended on the spill).
pub static ELIDE_FIRST_STORE: AtomicBool = AtomicBool::new(false);

/// Claim one less peak cache occupancy than the replay shows
/// (expected kill: `MMIO-V027`).
pub static UNDERSTATE_PEAK: AtomicBool = AtomicBool::new(false);

/// Disarms every switch (harness hygiene between mutants).
pub fn disarm_all() {
    for flag in [&ELIDE_FIRST_STORE, &UNDERSTATE_PEAK] {
        flag.store(false, Ordering::SeqCst);
    }
}
