//! Compute orders: the degree of freedom the paper's lower bound quantifies
//! over ("the number of cache I/Os required may depend on the order in which
//! intermediate values of the algorithm are computed", Section 1).

use crate::graph::PebbleGraph;
use mmio_cdag::{Cdag, CdagView, Layer, VertexId, VertexRef};
use rand::Rng;

/// Rank-by-rank order (all of encoding rank 1, then rank 2, …): the natural
/// breadth-first order with pessimal temporal locality — entire ranks
/// (`Θ(n²)` and larger) must round-trip through slow memory once `M` is
/// small. (Dense id order *is* rank order, so filtering ids suffices.)
pub fn rank_order<G: PebbleGraph>(g: &G) -> Vec<VertexId> {
    (0..g.n_vertices() as u32)
        .map(VertexId)
        .filter(|&v| !g.is_input(v))
        .collect()
}

/// The recursive depth-first order of the actual Strassen-like algorithm:
/// subproblems are completed one at a time, so the working set at recursion
/// depth `d` is `O(a^{r-d})` — the cache-oblivious schedule that attains the
/// Theorem 1 lower bound (cf. [3]).
///
/// Emission for a subproblem with multiplication prefix `p` at depth `d`:
/// for each child `m`: emit the child's encoded inputs (both sides), recurse;
/// afterwards emit the decode of this subproblem's outputs.
pub fn recursive_order<V: CdagView>(g: &V) -> Vec<VertexId> {
    let r = g.r();
    let (a, b) = (g.a(), g.b());
    let mut order = Vec::with_capacity(g.n_vertices());

    fn visit<V: CdagView>(
        g: &V,
        order: &mut Vec<VertexId>,
        prefix: u64,
        depth: u32,
        a: usize,
        b: usize,
        r: u32,
    ) {
        let id = |vr: VertexRef| g.try_id(vr).expect("recursive order stays in range");
        if depth == r {
            // Leaf: the product vertex itself.
            order.push(id(VertexRef {
                layer: Layer::Dec,
                level: 0,
                mul: prefix,
                entry: 0,
            }));
            return;
        }
        let suffix = mmio_cdag::index::pow(a, r - depth - 1);
        for m in 0..b as u64 {
            let child = prefix * b as u64 + m;
            // Encode the child's inputs (both sides, all entries).
            for layer in [Layer::EncA, Layer::EncB] {
                for e in 0..suffix {
                    order.push(id(VertexRef {
                        layer,
                        level: depth + 1,
                        mul: child,
                        entry: e,
                    }));
                }
            }
            visit(g, order, child, depth + 1, a, b, r);
        }
        // Decode this subproblem's outputs (decoding rank r-depth).
        let out_suffix = mmio_cdag::index::pow(a, r - depth);
        for e in 0..out_suffix {
            order.push(id(VertexRef {
                layer: Layer::Dec,
                level: r - depth,
                mul: prefix,
                entry: e,
            }));
        }
    }

    visit(g, &mut order, 0, 0, a, b, r);
    order
}

/// A uniformly random topological order (Kahn's algorithm with random
/// tie-breaking), excluding inputs.
pub fn random_topo_order<R: Rng>(g: &Cdag, rng: &mut R) -> Vec<VertexId> {
    let n = g.n_vertices();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| g.preds(VertexId(i as u32)).len() as u32)
        .collect();
    let mut ready: Vec<VertexId> = g.vertices().filter(|&v| g.is_input(v)).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pick = rng.gen_range(0..ready.len());
        let v = ready.swap_remove(pick);
        if !g.is_input(v) {
            order.push(v);
        }
        for &s in g.succs(v) {
            indeg[s.idx()] -= 1;
            if indeg[s.idx()] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        g.vertices().filter(|&v| !g.is_input(v)).count()
    );
    order
}

/// Checks that `order` covers every non-input vertex once, in an order
/// consistent with the dependencies.
pub fn is_valid_compute_order<G: PebbleGraph>(g: &G, order: &[VertexId]) -> bool {
    let n = g.n_vertices();
    let noninput = (0..n as u32).filter(|&i| !g.is_input(VertexId(i))).count();
    if order.len() != noninput {
        return false;
    }
    let mut pos = vec![u64::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if g.is_input(v) || pos[v.idx()] != u64::MAX {
            return false;
        }
        pos[v.idx()] = i as u64;
    }
    order.iter().all(|&v| {
        g.preds(v)
            .iter()
            .all(|&p| g.is_input(p) || pos[p.idx()] < pos[v.idx()])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_cdag::build::build_cdag;

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::testutil::classical2_base;

    #[test]
    fn all_orders_valid() {
        let g = build_cdag(&classical2_base(), 3);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(is_valid_compute_order(&g, &rank_order(&g)));
        assert!(is_valid_compute_order(&g, &recursive_order(&g)));
        assert!(is_valid_compute_order(&g, &random_topo_order(&g, &mut rng)));
    }

    #[test]
    fn recursive_order_structure() {
        let g = build_cdag(&classical2_base(), 1);
        let order = recursive_order(&g);
        // For r=1: per product m: encA combo, encB combo, product; then
        // 4 outputs. 8 products × 3 + 4 = 28 vertices.
        assert_eq!(order.len(), 28);
        // The first product must be computed right after its two combos.
        let first_product = g.products().next().unwrap();
        let pos = order.iter().position(|&v| v == first_product).unwrap();
        assert_eq!(pos, 2);
    }

    #[test]
    fn random_orders_differ() {
        let g = build_cdag(&classical2_base(), 2);
        let mut rng = StdRng::seed_from_u64(7);
        let o1 = random_topo_order(&g, &mut rng);
        let o2 = random_topo_order(&g, &mut rng);
        assert_ne!(o1, o2, "two random orders should almost surely differ");
    }

    #[test]
    fn invalid_orders_detected() {
        let g = build_cdag(&classical2_base(), 1);
        let mut order = rank_order(&g);
        // Reversed: dependencies violated.
        order.reverse();
        assert!(!is_valid_compute_order(&g, &order));
        // Truncated: incomplete.
        let order2 = rank_order(&g);
        assert!(!is_valid_compute_order(&g, &order2[1..]));
    }
}
