//! The reference scheduler: the original naive O(M)-per-miss engine.
//!
//! This is the specification the fast engine in [`crate::auto`] is measured
//! against. Every eviction decision is made by scanning the cache:
//!
//! - *free eviction*: scan for dead values (no remaining uses, stored if an
//!   output) and drop the one with the smallest [`VertexId`];
//! - *policy eviction*: collect all unpinned cached values in
//!   cache-insertion order, compute each candidate's next use lazily, and
//!   let the [`ReplacementPolicy`] choose.
//!
//! The fast engine must produce identical [`IoStats`], an identical recorded
//! [`Schedule`], and an identical eviction sequence for every policy — see
//! the equivalence proptests in `crates/pebble/tests/engine_equivalence.rs`
//! and the `exp_perf_pebble` bench, which asserts the contract on every run.

use super::CacheTooSmall;
use crate::policy::ReplacementPolicy;
use crate::schedule::{Action, Schedule};
use crate::stats::IoStats;
use mmio_cdag::{Cdag, VertexId};

/// The naive scan-based scheduler for one CDAG under a fixed cache size.
pub struct ReferenceScheduler<'g> {
    g: &'g Cdag,
    m: usize,
}

impl<'g> ReferenceScheduler<'g> {
    /// Creates a scheduler with cache size `m`, or reports why it cannot
    /// schedule anything (`m < max_indegree + 1`).
    pub fn try_new(g: &'g Cdag, m: usize) -> Result<ReferenceScheduler<'g>, CacheTooSmall> {
        let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(0) + 1;
        if m < need {
            return Err(CacheTooSmall { m, need });
        }
        Ok(ReferenceScheduler { g, m })
    }

    /// Creates a scheduler with cache size `m`.
    ///
    /// # Panics
    /// Panics if `m` is too small to compute some vertex at all
    /// (`m < max_indegree + 1`).
    pub fn new(g: &'g Cdag, m: usize) -> ReferenceScheduler<'g> {
        match ReferenceScheduler::try_new(g, m) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `order` (all non-input vertices, topologically sorted) under
    /// `policy` and returns the I/O statistics.
    pub fn run(&self, order: &[VertexId], policy: &mut dyn ReplacementPolicy) -> IoStats {
        self.run_detailed(order, policy, false).0
    }

    /// Like [`ReferenceScheduler::run`], additionally returning the explicit
    /// schedule (for validation against [`crate::sim::simulate`]).
    pub fn run_recorded(
        &self,
        order: &[VertexId],
        policy: &mut dyn ReplacementPolicy,
    ) -> (IoStats, Schedule) {
        let (stats, sched, _) = self.run_detailed(order, policy, true);
        (stats, sched.expect("recording was requested"))
    }

    /// Like [`ReferenceScheduler::run_recorded`], additionally returning the
    /// eviction sequence (every vertex dropped by `ensure_slot`, free and
    /// policy evictions alike, in order) — the strictest equivalence probe.
    pub fn run_traced(
        &self,
        order: &[VertexId],
        policy: &mut dyn ReplacementPolicy,
    ) -> (IoStats, Schedule, Vec<VertexId>) {
        let (stats, sched, victims) = self.run_detailed(order, policy, true);
        (stats, sched.expect("recording was requested"), victims)
    }

    fn run_detailed(
        &self,
        order: &[VertexId],
        policy: &mut dyn ReplacementPolicy,
        record: bool,
    ) -> (IoStats, Option<Schedule>, Vec<VertexId>) {
        let g = self.g;
        let n = g.n_vertices();
        debug_assert_eq!(
            order.len(),
            g.vertices().filter(|&v| !g.is_input(v)).count(),
            "order must cover every non-input vertex exactly once"
        );

        // Position of each vertex's computation in the order.
        let mut compute_pos = vec![u64::MAX; n];
        for (i, &v) in order.iter().enumerate() {
            compute_pos[v.idx()] = i as u64;
        }
        // Sorted use positions per vertex (positions of its successors).
        let mut uses: Vec<Vec<u64>> = vec![Vec::new(); n];
        for &v in order {
            for &p in g.preds(v) {
                uses[p.idx()].push(compute_pos[v.idx()]);
            }
        }
        for u in &mut uses {
            u.sort_unstable();
        }
        let mut use_ptr = vec![0usize; n];
        let mut remaining_uses: Vec<u32> = (0..n).map(|i| uses[i].len() as u32).collect();

        // Cache as a membership bitmap + member list for candidate scans.
        let mut in_cache = vec![false; n];
        let mut cache_list: Vec<VertexId> = Vec::with_capacity(self.m);
        let mut cache_pos = vec![usize::MAX; n];
        let mut dirty = vec![false; n];
        let mut stored = vec![false; n];
        let mut computed = vec![false; n];
        let mut stats = IoStats::default();
        let mut actions: Vec<Action> = Vec::new();
        let mut victims: Vec<VertexId> = Vec::new();
        let mut time: u64 = 0;

        macro_rules! cache_insert {
            ($v:expr) => {{
                let v = $v;
                in_cache[v.idx()] = true;
                cache_pos[v.idx()] = cache_list.len();
                cache_list.push(v);
            }};
        }
        macro_rules! cache_remove {
            ($v:expr) => {{
                let v = $v;
                let pos = cache_pos[v.idx()];
                let last = *cache_list.last().unwrap();
                cache_list.swap_remove(pos);
                if last != v {
                    cache_pos[last.idx()] = pos;
                }
                in_cache[v.idx()] = false;
                cache_pos[v.idx()] = usize::MAX;
            }};
        }

        for (step, &v) in order.iter().enumerate() {
            let step = step as u64;
            let is_dead = |w: VertexId, remaining_uses: &Vec<u32>, stored: &Vec<bool>| -> bool {
                remaining_uses[w.idx()] == 0 && (!g.is_output(w) || stored[w.idx()])
            };

            // Assemble operands, then compute. Operands and v are pinned.
            let pinned = |w: VertexId| -> bool { g.preds(v).contains(&w) || w == v };

            let ensure_slot = |stats: &mut IoStats,
                               actions: &mut Vec<Action>,
                               victims: &mut Vec<VertexId>,
                               in_cache: &mut Vec<bool>,
                               cache_list: &mut Vec<VertexId>,
                               cache_pos: &mut Vec<usize>,
                               dirty: &mut Vec<bool>,
                               stored: &mut Vec<bool>,
                               remaining_uses: &Vec<u32>,
                               use_ptr: &mut Vec<usize>,
                               policy: &mut dyn ReplacementPolicy| {
                if cache_list.len() < self.m {
                    return;
                }
                // 1) Free eviction of a dead value; smallest id for a
                //    defined, order-independent choice (matches the fast
                //    engine's dead-value min-heap).
                if let Some(&w) = cache_list
                    .iter()
                    .filter(|&&w| {
                        !pinned(w)
                            && remaining_uses[w.idx()] == 0
                            && (!g.is_output(w) || stored[w.idx()])
                    })
                    .min()
                {
                    let pos = cache_pos[w.idx()];
                    let last = *cache_list.last().unwrap();
                    cache_list.swap_remove(pos);
                    if last != w {
                        cache_pos[last.idx()] = pos;
                    }
                    in_cache[w.idx()] = false;
                    cache_pos[w.idx()] = usize::MAX;
                    victims.push(w);
                    if record {
                        actions.push(Action::Drop(w));
                    }
                    return;
                }
                // 2) Live eviction chosen by the policy.
                let candidates: Vec<VertexId> =
                    cache_list.iter().copied().filter(|&w| !pinned(w)).collect();
                let next_use: Vec<u64> = candidates
                    .iter()
                    .map(|&w| {
                        let us = &uses[w.idx()];
                        let mut p = use_ptr[w.idx()];
                        while p < us.len() && us[p] < step {
                            p += 1;
                        }
                        use_ptr[w.idx()] = p;
                        us.get(p).copied().unwrap_or(u64::MAX)
                    })
                    .collect();
                let victim = candidates[policy.choose_victim(&candidates, &next_use)];
                if dirty[victim.idx()] && !stored[victim.idx()] {
                    stats.stores += 1;
                    stored[victim.idx()] = true;
                    if record {
                        actions.push(Action::Store(victim));
                    }
                }
                let pos = cache_pos[victim.idx()];
                let last = *cache_list.last().unwrap();
                cache_list.swap_remove(pos);
                if last != victim {
                    cache_pos[last.idx()] = pos;
                }
                in_cache[victim.idx()] = false;
                cache_pos[victim.idx()] = usize::MAX;
                victims.push(victim);
                if record {
                    actions.push(Action::Drop(victim));
                }
            };

            // Load missing operands.
            for &p in g.preds(v) {
                if in_cache[p.idx()] {
                    policy.on_touch(p, time);
                    time += 1;
                    continue;
                }
                debug_assert!(
                    g.is_input(p) || stored[p.idx()],
                    "invariant violated: evicted live value {p:?} was not stored"
                );
                ensure_slot(
                    &mut stats,
                    &mut actions,
                    &mut victims,
                    &mut in_cache,
                    &mut cache_list,
                    &mut cache_pos,
                    &mut dirty,
                    &mut stored,
                    &remaining_uses,
                    &mut use_ptr,
                    policy,
                );
                cache_insert!(p);
                dirty[p.idx()] = false;
                stats.loads += 1;
                if record {
                    actions.push(Action::Load(p));
                }
                policy.on_touch(p, time);
                time += 1;
            }

            // Compute v.
            ensure_slot(
                &mut stats,
                &mut actions,
                &mut victims,
                &mut in_cache,
                &mut cache_list,
                &mut cache_pos,
                &mut dirty,
                &mut stored,
                &remaining_uses,
                &mut use_ptr,
                policy,
            );
            cache_insert!(v);
            computed[v.idx()] = true;
            dirty[v.idx()] = true;
            stats.computes += 1;
            if record {
                actions.push(Action::Compute(v));
            }
            policy.on_touch(v, time);
            time += 1;

            // Consume one use of each operand; drop operands that died.
            for &p in g.preds(v) {
                remaining_uses[p.idx()] -= 1;
                if in_cache[p.idx()] && is_dead(p, &remaining_uses, &stored) && p != v {
                    cache_remove!(p);
                    if record {
                        actions.push(Action::Drop(p));
                    }
                }
            }

            // Outputs are stored (and dropped) immediately.
            if g.is_output(v) {
                stats.stores += 1;
                stored[v.idx()] = true;
                if record {
                    actions.push(Action::Store(v));
                }
                if remaining_uses[v.idx()] == 0 {
                    cache_remove!(v);
                    if record {
                        actions.push(Action::Drop(v));
                    }
                }
            }
        }

        (stats, record.then_some(Schedule { actions }), victims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orders;
    use crate::policy::{Belady, Lru};
    use crate::sim::simulate;
    use mmio_cdag::build::build_cdag;

    use crate::testutil::classical2_base;

    #[test]
    fn recorded_schedule_is_valid() {
        let g = build_cdag(&classical2_base(), 2);
        let order = orders::rank_order(&g);
        for m in [8usize, 16, 64] {
            let sched = ReferenceScheduler::new(&g, m);
            let (stats, schedule) = sched.run_recorded(&order, &mut Lru::new(g.n_vertices()));
            let replayed = simulate(&g, &schedule, m).expect("schedule must be valid");
            assert_eq!(replayed, stats, "m={m}");
        }
    }

    #[test]
    fn huge_cache_needs_only_compulsory_io() {
        let g = build_cdag(&classical2_base(), 2);
        let order = orders::rank_order(&g);
        let sched = ReferenceScheduler::new(&g, g.n_vertices() + 1);
        let stats = sched.run(&order, &mut Belady);
        assert_eq!(stats.loads, 2 * 16); // every input touched once
        assert_eq!(stats.stores, 16); // every output stored once
    }

    #[test]
    fn try_new_reports_need() {
        let g = build_cdag(&classical2_base(), 1);
        let err = ReferenceScheduler::try_new(&g, 2).err().unwrap();
        assert_eq!(err.m, 2);
        assert!(err.need > 2);
        assert!(ReferenceScheduler::try_new(&g, err.need).is_ok());
    }

    #[test]
    #[should_panic(expected = "cannot hold an operand set")]
    fn cache_too_small_panics() {
        let g = build_cdag(&classical2_base(), 1);
        let _ = ReferenceScheduler::new(&g, 2);
    }
}
