//! Exact minimum-I/O search: the red–blue pebble game solved optimally for
//! tiny CDAGs.
//!
//! The I/O-complexity in the paper is a minimum over *all* schedules; the
//! automatic scheduler only explores one compute order at a time. For tiny
//! graphs we can search the full game tree (0-1 Dijkstra over pebbling
//! states) and obtain the true optimum, which validates the scheduler from
//! below and gives exact small-case data points.

use mmio_cdag::Cdag;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Upper limit on vertex count for the exact search (the state space is
/// exponential).
pub const MAX_VERTICES: usize = 24;

/// State: bitmasks over vertices (computed, cached, stored).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    computed: u32,
    cached: u32,
    stored: u32,
}

/// Computes the exact minimum I/O to evaluate `g` with cache size `m`.
/// Returns `None` if the graph is too large or the search exceeds
/// `state_limit` states.
///
/// Moves: load (input or stored, 1 I/O), store (1 I/O), compute (free),
/// drop (free). 0-1 BFS keeps the frontier ordered by I/O cost.
pub fn min_io(g: &Cdag, m: usize, state_limit: usize) -> Option<u64> {
    let n = g.n_vertices();
    if n > MAX_VERTICES {
        return None;
    }
    let input_mask: u32 = g
        .vertices()
        .filter(|&v| g.is_input(v))
        .fold(0, |acc, v| acc | (1 << v.idx()));
    let output_mask: u32 = g.outputs().fold(0, |acc, v| acc | (1 << v.idx()));
    let pred_masks: Vec<u32> = g
        .vertices()
        .map(|v| g.preds(v).iter().fold(0u32, |acc, p| acc | (1 << p.idx())))
        .collect();

    let start = State {
        computed: input_mask, // inputs are "available" from the start
        cached: 0,
        stored: input_mask, // and live in slow memory
    };
    let mut dist: HashMap<State, u64> = HashMap::new();
    dist.insert(start, 0);
    let mut queue: VecDeque<(State, u64)> = VecDeque::new();
    queue.push_back((start, 0));

    while let Some((state, d)) = queue.pop_front() {
        if dist.get(&state) != Some(&d) {
            continue; // stale entry
        }
        // Goal: every vertex computed and every output stored.
        if state.computed.count_ones() as usize == n && state.stored & output_mask == output_mask {
            return Some(d);
        }
        if dist.len() > state_limit {
            return None;
        }

        let cache_len = state.cached.count_ones() as usize;
        let push = |next: State,
                    cost: u64,
                    queue: &mut VecDeque<(State, u64)>,
                    dist: &mut HashMap<State, u64>| {
            let nd = d + cost;
            match dist.entry(next) {
                Entry::Occupied(mut e) => {
                    if *e.get() > nd {
                        e.insert(nd);
                        if cost == 0 {
                            queue.push_front((next, nd));
                        } else {
                            queue.push_back((next, nd));
                        }
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(nd);
                    if cost == 0 {
                        queue.push_front((next, nd));
                    } else {
                        queue.push_back((next, nd));
                    }
                }
            }
        };

        for (v, &pmask) in pred_masks.iter().enumerate() {
            let bit = 1u32 << v;
            // Compute (free): not yet computed, preds cached, slot free.
            if state.computed & bit == 0 && state.cached & pmask == pmask && cache_len < m {
                push(
                    State {
                        computed: state.computed | bit,
                        cached: state.cached | bit,
                        stored: state.stored,
                    },
                    0,
                    &mut queue,
                    &mut dist,
                );
            }
            // Load (1 I/O): in slow memory, not cached, slot free.
            if state.stored & bit != 0 && state.cached & bit == 0 && cache_len < m {
                push(
                    State {
                        computed: state.computed,
                        cached: state.cached | bit,
                        stored: state.stored,
                    },
                    1,
                    &mut queue,
                    &mut dist,
                );
            }
            // Store (1 I/O): cached, not yet stored.
            if state.cached & bit != 0 && state.stored & bit == 0 {
                push(
                    State {
                        computed: state.computed,
                        cached: state.cached,
                        stored: state.stored | bit,
                    },
                    1,
                    &mut queue,
                    &mut dist,
                );
            }
            // Drop (free): cached.
            if state.cached & bit != 0 {
                push(
                    State {
                        computed: state.computed,
                        cached: state.cached & !bit,
                        stored: state.stored,
                    },
                    0,
                    &mut queue,
                    &mut dist,
                );
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::AutoScheduler;
    use crate::orders;
    use crate::policy::Belady;
    use mmio_cdag::build::build_cdag;
    use mmio_cdag::BaseGraph;
    use mmio_matrix::{Matrix, Rational};

    fn tiny() -> Cdag {
        let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
        build_cdag(&BaseGraph::new("tiny", 1, one.clone(), one.clone(), one), 1)
    }

    #[test]
    fn tiny_optimum_is_compulsory_io() {
        // 2 input loads + 1 output store; everything else fits (m=4).
        let g = tiny();
        assert_eq!(min_io(&g, 4, 1_000_000), Some(3));
    }

    #[test]
    fn tiny_with_minimal_cache() {
        // m=3 still admits the drop-based schedule of the sim tests.
        let g = tiny();
        assert_eq!(min_io(&g, 3, 1_000_000), Some(3));
    }

    #[test]
    fn optimum_lower_bounds_scheduler() {
        let g = tiny();
        let order = orders::recursive_order(&g);
        for m in [3usize, 4, 8] {
            let auto = AutoScheduler::new(&g, m).run(&order, &mut Belady);
            let opt = min_io(&g, m, 1_000_000).unwrap();
            assert!(
                opt <= auto.io(),
                "m={m}: optimum {opt} > auto {}",
                auto.io()
            );
        }
    }

    #[test]
    fn too_large_graph_rejected() {
        let base = crate::testutil::classical2_base();
        let g = build_cdag(&base, 2);
        assert_eq!(min_io(&g, 8, 1_000), None);
    }
}
