//! Pooled batch sweeps of the automatic scheduler over (order × policy × M)
//! grids.
//!
//! Every experiment on the upper-bound side (E1, E8, E11, E13) is a grid of
//! independent scheduler runs. This module fans such a grid over
//! [`mmio_parallel::Pool`] with two guarantees:
//!
//! - **Determinism.** Each grid point is a pure function of `(graph, order,
//!   policy spec, M)` — policies with randomness are specified by seed, not
//!   by a shared RNG — and `Pool::map` returns results in index order, so a
//!   sweep's output vector is byte-identical at any thread count.
//! - **Scratch reuse.** Each worker keeps one thread-local [`SchedScratch`];
//!   the CSR use-lists are rebuilt only when a worker switches to a
//!   different order, so the (policy, M) inner grid reuses both the
//!   use-lists and every per-run allocation.
//!
//! Infeasible grid points (`M < max_indegree + 1`) report a typed
//! [`SweepError`] in their slot instead of aborting the sweep — the
//! scheduler is constructed with [`AutoScheduler::try_new`].

use crate::auto::{AutoScheduler, RunOptions, SchedScratch};
use crate::policy::{Belady, Lru, RandomEvict, ReplacementPolicy};
use crate::stats::{EngineCounters, IoStats};
use mmio_cdag::{Cdag, VertexId};
use mmio_parallel::Pool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Serialize, Value};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A replacement policy *specification*: value-typed, so a grid point can be
/// shipped to a worker and instantiated there. Randomized policies carry
/// their seed — two instantiations of the same spec behave identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicySpec {
    /// Least-recently-used.
    Lru,
    /// Belady's MIN.
    Belady,
    /// Uniform-random eviction with a fixed seed.
    Random {
        /// Seed for the per-run `StdRng`.
        seed: u64,
    },
}

impl PolicySpec {
    /// Builds a fresh policy instance for a graph with `n` vertices.
    pub fn instantiate(&self, n: usize) -> Box<dyn ReplacementPolicy> {
        match *self {
            PolicySpec::Lru => Box::new(Lru::new(n)),
            PolicySpec::Belady => Box::new(Belady),
            PolicySpec::Random { seed } => Box::new(RandomEvict::new(StdRng::seed_from_u64(seed))),
        }
    }

    /// The policy's report name (matches [`ReplacementPolicy::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Lru => "lru",
            PolicySpec::Belady => "belady",
            PolicySpec::Random { .. } => "random",
        }
    }
}

impl Serialize for PolicySpec {
    fn to_value(&self) -> Value {
        match *self {
            PolicySpec::Random { seed } => Value::Object(vec![
                ("name".to_string(), Value::Str("random".to_string())),
                ("seed".to_string(), Value::UInt(seed)),
            ]),
            spec => Value::Str(spec.name().to_string()),
        }
    }
}

/// One cell of a sweep grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct GridPoint {
    /// Index into the sweep's `orders` slice.
    pub order: usize,
    /// The policy specification.
    pub policy: PolicySpec,
    /// Cache size.
    pub m: usize,
}

/// Why a grid point could not run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepError {
    /// `M` cannot hold an operand set: the scheduler needs `need` slots.
    CacheTooSmall {
        /// The requested cache size.
        m: usize,
        /// The minimum feasible cache size.
        need: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SweepError::CacheTooSmall { m, need } => {
                write!(
                    f,
                    "cache size {m} cannot hold an operand set ({need} needed)"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl Serialize for SweepError {
    fn to_value(&self) -> Value {
        match *self {
            SweepError::CacheTooSmall { m, need } => Value::Object(vec![
                (
                    "error".to_string(),
                    Value::Str("cache_too_small".to_string()),
                ),
                ("m".to_string(), Value::UInt(m as u64)),
                ("need".to_string(), Value::UInt(need as u64)),
            ]),
        }
    }
}

/// The measurements of one successful grid point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct SweepRun {
    /// Exact I/O statistics.
    pub stats: IoStats,
    /// Fast-engine event counters for this run.
    pub counters: EngineCounters,
}

/// One sweep result: the grid point plus its outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepPoint {
    /// The grid cell this result belongs to.
    pub point: GridPoint,
    /// The run's measurements, or why it could not run.
    pub result: Result<SweepRun, SweepError>,
}

impl Serialize for SweepPoint {
    fn to_value(&self) -> Value {
        let result = match &self.result {
            Ok(run) => run.to_value(),
            Err(e) => e.to_value(),
        };
        Value::Object(vec![
            ("point".to_string(), self.point.to_value()),
            ("result".to_string(), result),
        ])
    }
}

impl SweepPoint {
    /// The run's [`IoStats`], panicking on an infeasible point — the
    /// convenience accessor for experiment bins whose grids are known
    /// feasible.
    pub fn stats(&self) -> IoStats {
        match self.result {
            Ok(run) => run.stats,
            Err(e) => panic!("grid point {:?} failed: {e}", self.point),
        }
    }
}

/// Distinguishes scratch prepared for one sweep's order from a leftover
/// prepared by an earlier sweep on the same thread (the serial pool runs
/// inline on the caller's thread, whose thread-local outlives the call).
static SWEEP_GEN: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SCRATCH: RefCell<(u64, SchedScratch)> =
        RefCell::new((u64::MAX, SchedScratch::new()));
}

/// Runs the full `orders × policies × ms` grid (order-major, then policy,
/// then M) on `pool` and returns one [`SweepPoint`] per cell, in grid
/// order. The output is identical for every thread count.
pub fn sweep(
    g: &Cdag,
    orders: &[&[VertexId]],
    policies: &[PolicySpec],
    ms: &[usize],
    pool: &Pool,
) -> Vec<SweepPoint> {
    let mut grid: Vec<GridPoint> = Vec::with_capacity(orders.len() * policies.len() * ms.len());
    for order in 0..orders.len() {
        for &policy in policies {
            for &m in ms {
                grid.push(GridPoint { order, policy, m });
            }
        }
    }
    let gen = SWEEP_GEN.fetch_add(orders.len() as u64, Ordering::Relaxed);
    let n = g.n_vertices();

    pool.map(grid.len(), |i| {
        let point = grid[i];
        let result = match AutoScheduler::try_new(g, point.m) {
            Err(e) => Err(SweepError::CacheTooSmall {
                m: e.m,
                need: e.need,
            }),
            Ok(sched) => SCRATCH.with(|cell| {
                let (token, scratch) = &mut *cell.borrow_mut();
                let order = orders[point.order];
                let want = gen + point.order as u64;
                if *token != want {
                    scratch.prepare(g, order);
                    *token = want;
                }
                let mut policy = point.policy.instantiate(n);
                let out =
                    sched.run_prepared(order, scratch, policy.as_mut(), RunOptions::default());
                Ok(SweepRun {
                    stats: out.stats,
                    counters: out.counters,
                })
            }),
        };
        SweepPoint { point, result }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orders;
    use crate::testutil::classical2_base;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn sweep_matches_direct_runs_at_any_thread_count() {
        let g = build_cdag(&classical2_base(), 2);
        let rank = orders::rank_order(&g);
        let rec = orders::recursive_order(&g);
        let orders: Vec<&[_]> = vec![&rank, &rec];
        let policies = [
            PolicySpec::Lru,
            PolicySpec::Belady,
            PolicySpec::Random { seed: 7 },
        ];
        let ms = [8usize, 16, 64];

        let serial = sweep(&g, &orders, &policies, &ms, &Pool::serial());
        for threads in [2, 8] {
            let pooled = sweep(&g, &orders, &policies, &ms, &Pool::new(threads));
            assert_eq!(serial, pooled, "sweep diverges at {threads} threads");
        }
        // Spot-check against direct scheduler runs.
        for pt in &serial {
            let order = orders[pt.point.order];
            let mut policy = pt.point.policy.instantiate(g.n_vertices());
            let direct = AutoScheduler::new(&g, pt.point.m).run(order, policy.as_mut());
            assert_eq!(pt.stats(), direct);
        }
    }

    #[test]
    fn infeasible_point_reports_instead_of_aborting() {
        let g = build_cdag(&classical2_base(), 1);
        let rank = orders::rank_order(&g);
        let orders: Vec<&[_]> = vec![&rank];
        let pts = sweep(
            &g,
            &orders,
            &[PolicySpec::Belady],
            &[2, 64],
            &Pool::serial(),
        );
        assert!(matches!(
            pts[0].result,
            Err(SweepError::CacheTooSmall { m: 2, .. })
        ));
        assert!(pts[1].result.is_ok());
    }

    #[test]
    fn policy_spec_instantiation_is_reproducible() {
        let g = build_cdag(&classical2_base(), 2);
        let order = orders::rank_order(&g);
        let spec = PolicySpec::Random { seed: 99 };
        let a = AutoScheduler::new(&g, 12).run(&order, spec.instantiate(g.n_vertices()).as_mut());
        let b = AutoScheduler::new(&g, 12).run(&order, spec.instantiate(g.n_vertices()).as_mut());
        assert_eq!(a, b);
    }
}
