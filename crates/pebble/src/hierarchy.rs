//! Multi-level memory hierarchies: the natural extension of the paper's
//! 2-level model (its introduction speaks of "communication of data within
//! memory hierarchy").
//!
//! A hierarchy `M₁ < M₂ < … < M_L < ∞` is simulated by running the 2-level
//! scheduler once per boundary: the traffic between level `i` and level
//! `i+1` is exactly the 2-level I/O with cache size `M_i` (the standard
//! inclusive-hierarchy argument: levels above `i` behave as one fast
//! memory of size `M_i`, everything below as slow memory). Theorem 1
//! therefore applies *per boundary*: traffic across boundary `i` is
//! `Ω((n/√M_i)^{ω₀}·M_i)`.

use crate::auto::AutoScheduler;
use crate::policy::ReplacementPolicy;
use crate::stats::IoStats;
use crate::sweep::{self, PolicySpec};
use mmio_cdag::{Cdag, VertexId};
use mmio_parallel::Pool;
use serde::Serialize;

/// A memory hierarchy: strictly increasing level capacities (the last
/// level is backed by unbounded slow memory).
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<usize>,
}

/// Per-boundary traffic of one execution.
#[derive(Clone, Debug, Serialize)]
pub struct HierarchyTraffic {
    /// Capacity of the fast side of each boundary.
    pub level_sizes: Vec<usize>,
    /// I/O across each boundary (loads + stores with that cache size).
    pub boundary_io: Vec<u64>,
}

impl Hierarchy {
    /// Creates a hierarchy from strictly increasing capacities.
    ///
    /// # Panics
    /// Panics if `levels` is empty or not strictly increasing.
    pub fn new(levels: Vec<usize>) -> Hierarchy {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly increasing"
        );
        Hierarchy { levels }
    }

    /// The level capacities.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Measures per-boundary traffic for `order` under a per-level policy
    /// built by `make_policy` (called once per boundary, so stateful
    /// policies start fresh).
    pub fn measure(
        &self,
        g: &Cdag,
        order: &[VertexId],
        mut make_policy: impl FnMut() -> Box<dyn ReplacementPolicy>,
    ) -> HierarchyTraffic {
        let boundary_io = self
            .levels
            .iter()
            .map(|&m| {
                let mut policy = make_policy();
                let stats: IoStats = AutoScheduler::new(g, m).run(order, policy.as_mut());
                stats.io()
            })
            .collect();
        HierarchyTraffic {
            level_sizes: self.levels.clone(),
            boundary_io,
        }
    }

    /// Like [`Hierarchy::measure`], but runs the boundaries as a pooled
    /// [`sweep`](crate::sweep) over the level sizes. Deterministic at any
    /// thread count; the policy is given as a [`PolicySpec`] so each
    /// boundary instantiates a fresh, identically-seeded instance.
    pub fn measure_pooled(
        &self,
        g: &Cdag,
        order: &[VertexId],
        policy: PolicySpec,
        pool: &Pool,
    ) -> HierarchyTraffic {
        let orders: [&[VertexId]; 1] = [order];
        let boundary_io = sweep::sweep(g, &orders, &[policy], &self.levels, pool)
            .iter()
            .map(|pt| pt.stats().io())
            .collect();
        HierarchyTraffic {
            level_sizes: self.levels.clone(),
            boundary_io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orders::recursive_order;
    use crate::policy::Belady;
    use crate::testutil::classical2_base;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn traffic_decreases_up_the_hierarchy() {
        let g = build_cdag(&classical2_base(), 3);
        let order = recursive_order(&g);
        let h = Hierarchy::new(vec![8, 32, 128, 512]);
        let t = h.measure(&g, &order, || Box::new(Belady));
        for w in t.boundary_io.windows(2) {
            assert!(w[1] <= w[0], "larger caches see no more traffic");
        }
    }

    #[test]
    fn single_level_matches_flat_scheduler() {
        let g = build_cdag(&classical2_base(), 2);
        let order = recursive_order(&g);
        let h = Hierarchy::new(vec![16]);
        let t = h.measure(&g, &order, || Box::new(Belady));
        let flat = AutoScheduler::new(&g, 16).run(&order, &mut Belady).io();
        assert_eq!(t.boundary_io, vec![flat]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn levels_must_increase() {
        let _ = Hierarchy::new(vec![8, 8]);
    }

    #[test]
    fn pooled_measure_matches_serial() {
        let g = build_cdag(&classical2_base(), 3);
        let order = recursive_order(&g);
        let h = Hierarchy::new(vec![8, 32, 128, 512]);
        let direct = h.measure(&g, &order, || Box::new(Belady));
        for threads in [1usize, 2, 8] {
            let pooled = h.measure_pooled(
                &g,
                &order,
                PolicySpec::Belady,
                &mmio_parallel::Pool::new(threads),
            );
            assert_eq!(pooled.boundary_io, direct.boundary_io, "threads={threads}");
        }
    }
}
