//! Certificate emission for the pebble layer: schedule-legality witnesses
//! and sweep I/O witnesses in the `mmio-cert` format.
//!
//! The emitter derives every claim (counters, peak occupancy, residency
//! intervals) by a mechanical replay of the action trace it is about to
//! serialize — never from the scheduler's internal accounting — so the
//! certificate is self-consistent by construction and the standalone
//! verifier's own replay is an independent re-derivation, not a comparison
//! of two copies of the same variable.

use crate::schedule::{Action, Schedule};
use crate::sweep::{PolicySpec, SweepPoint};
use mmio_cdag::Cdag;
use mmio_cert::format::{BaseSpec, Payload, SchedulePayload, SweepPayload};
use mmio_cert::Certificate;

/// Emits a schedule-legality certificate for `schedule` run on `g` under
/// cache size `m`. The schedule is assumed legal (engine-produced); claims
/// are derived by replaying the emitted action list.
pub fn emit_schedule_certificate(g: &Cdag, m: usize, schedule: &Schedule) -> Certificate {
    #[allow(unused_mut)]
    let mut actions: Vec<Action> = schedule.actions.clone();
    #[cfg(feature = "mutate")]
    {
        use std::sync::atomic::Ordering::SeqCst;
        if crate::mutate::ELIDE_FIRST_STORE.load(SeqCst) {
            if let Some(i) = actions.iter().position(|a| matches!(a, Action::Store(_))) {
                actions.remove(i);
            }
        }
    }

    let n = g.n_vertices();
    let mut ops = String::with_capacity(actions.len());
    let mut vertices = Vec::with_capacity(actions.len());
    let mut in_cache = vec![false; n];
    let mut open = vec![0u64; n];
    let mut intervals: Vec<(u32, u64, u64)> = Vec::new();
    let (mut loads, mut stores, mut computes) = (0u64, 0u64, 0u64);
    let mut occupancy: u64 = 0;
    let mut peak: u64 = 0;
    for (i, &action) in actions.iter().enumerate() {
        match action {
            Action::Load(v) => {
                ops.push('L');
                vertices.push(v.0);
                in_cache[v.idx()] = true;
                open[v.idx()] = i as u64;
                occupancy += 1;
                loads += 1;
            }
            Action::Store(v) => {
                ops.push('S');
                vertices.push(v.0);
                stores += 1;
            }
            Action::Compute(v) => {
                ops.push('C');
                vertices.push(v.0);
                in_cache[v.idx()] = true;
                open[v.idx()] = i as u64;
                occupancy += 1;
                computes += 1;
            }
            Action::Drop(v) => {
                ops.push('D');
                vertices.push(v.0);
                in_cache[v.idx()] = false;
                intervals.push((v.0, open[v.idx()], i as u64));
                occupancy -= 1;
            }
        }
        peak = peak.max(occupancy);
    }
    let len = actions.len() as u64;
    for v in 0..n {
        if in_cache[v] {
            intervals.push((v as u32, open[v], len));
        }
    }
    intervals.sort_unstable();

    #[cfg(feature = "mutate")]
    {
        use std::sync::atomic::Ordering::SeqCst;
        if crate::mutate::UNDERSTATE_PEAK.load(SeqCst) {
            peak = peak.saturating_sub(1);
        }
    }

    let (res_vertex, (res_start, res_end)) = intervals
        .iter()
        .map(|&(v, s, e)| (v, (s, e)))
        .unzip::<_, _, Vec<u32>, (Vec<u64>, Vec<u64>)>();
    Certificate::new(
        BaseSpec::from_base(g.base()),
        Payload::Schedule(SchedulePayload {
            r: g.r(),
            m: m as u64,
            ops,
            vertices,
            loads,
            stores,
            computes,
            peak_occupancy: peak,
            res_vertex,
            res_start,
            res_end,
        }),
    )
}

/// Emits a sweep I/O certificate from the grid points of one policy over
/// `g`. Infeasible points (cache below `max_indegree + 1`) carry zeroed
/// counters, which the verifier requires.
///
/// # Panics
/// Panics if `points` is empty or mixes policies.
pub fn emit_sweep_certificate(g: &Cdag, policy: &PolicySpec, points: &[SweepPoint]) -> Certificate {
    assert!(
        !points.is_empty(),
        "sweep certificate needs at least one point"
    );
    let mut ms = Vec::with_capacity(points.len());
    let mut feasible = Vec::with_capacity(points.len());
    let mut loads = Vec::with_capacity(points.len());
    let mut stores = Vec::with_capacity(points.len());
    let mut computes = Vec::with_capacity(points.len());
    for p in points {
        assert_eq!(
            p.point.policy.name(),
            policy.name(),
            "sweep certificate mixes policies"
        );
        ms.push(p.point.m as u64);
        match &p.result {
            Ok(run) => {
                feasible.push(true);
                loads.push(run.stats.loads);
                stores.push(run.stats.stores);
                computes.push(run.stats.computes);
            }
            Err(_) => {
                feasible.push(false);
                loads.push(0);
                stores.push(0);
                computes.push(0);
            }
        }
    }
    Certificate::new(
        BaseSpec::from_base(g.base()),
        Payload::Sweep(SweepPayload {
            r: g.r(),
            policy: policy.name().to_string(),
            ms,
            feasible,
            loads,
            stores,
            computes,
        }),
    )
}
