//! Cache replacement policies for the automatic scheduler.
//!
//! The model lets the scheduler choose *which* cached value to evict when
//! space is needed; the choice changes the I/O count but not validity. The
//! policies here span the design space the ablation bench measures: LRU
//! (realistic), Belady's MIN (offline-optimal eviction for a fixed compute
//! order), and random (baseline).

use mmio_cdag::VertexId;
use rand::Rng;

/// How the fast engine in [`crate::auto`] may specialize a policy.
///
/// A policy that returns [`PolicyKind::Lru`] or [`PolicyKind::Belady`]
/// promises that its [`ReplacementPolicy::choose_victim`] implements exactly
/// the canonical rule below, which lets the engine replace the per-eviction
/// candidate scan with an amortized-O(log M) lazy-invalidation heap:
///
/// - **LRU**: minimize `(last_touch, VertexId)` — least-recently touched,
///   ties (impossible under the scheduler's monotone clock, but defined
///   anyway) broken toward the smaller vertex id;
/// - **Belady**: maximize `(next_use, Reverse(VertexId))` — farthest next
///   use, ties broken toward the smaller vertex id.
///
/// [`PolicyKind::Other`] policies are driven through `choose_victim` with
/// the candidate list in cache-insertion order (the order the reference
/// engine has always used), so stateful or randomized policies see the
/// identical call sequence in both engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Canonical least-recently-used (heap-accelerated).
    Lru,
    /// Canonical Belady MIN (heap-accelerated).
    Belady,
    /// Anything else: the engine falls back to `choose_victim`.
    Other,
}

/// A replacement policy: asked to rank eviction candidates.
///
/// The scheduler always prefers evicting *dead* values (never used again,
/// already stored if needed) — that is free and policy-independent. Policies
/// only decide among *live* candidates.
pub trait ReplacementPolicy {
    /// Called when `v` is touched (loaded, computed, or used as an operand)
    /// at logical time `time`.
    fn on_touch(&mut self, v: VertexId, time: u64);
    /// Chooses which of `candidates` (all live, all cached) to evict.
    /// `next_use[i]` is the compute-order position of the candidate's next
    /// use (`u64::MAX` if none); LRU ignores it, Belady uses it.
    ///
    /// The choice must either be independent of the candidates' order (LRU,
    /// Belady — both use a total key with a VertexId tie-break) or accept
    /// that it sees candidates in cache-insertion order (random).
    fn choose_victim(&mut self, candidates: &[VertexId], next_use: &[u64]) -> usize;
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Which canonical rule (if any) this policy implements; see
    /// [`PolicyKind`]. Defaults to [`PolicyKind::Other`].
    fn kind(&self) -> PolicyKind {
        PolicyKind::Other
    }
}

/// Least-recently-used.
#[derive(Default)]
pub struct Lru {
    last_touch: Vec<u64>,
}

impl Lru {
    /// Creates an LRU policy for a graph with `n` vertices.
    pub fn new(n: usize) -> Lru {
        Lru {
            last_touch: vec![0; n],
        }
    }
}

impl ReplacementPolicy for Lru {
    fn on_touch(&mut self, v: VertexId, time: u64) {
        self.last_touch[v.idx()] = time;
    }
    fn choose_victim(&mut self, candidates: &[VertexId], _next_use: &[u64]) -> usize {
        (0..candidates.len())
            .min_by_key(|&i| (self.last_touch[candidates[i].idx()], candidates[i]))
            .expect("no eviction candidates")
    }
    fn name(&self) -> &'static str {
        "lru"
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }
}

/// Belady's MIN: evict the value whose next use is farthest in the future.
/// Optimal eviction for a fixed compute order.
#[derive(Default)]
pub struct Belady;

impl ReplacementPolicy for Belady {
    fn on_touch(&mut self, _v: VertexId, _time: u64) {}
    fn choose_victim(&mut self, candidates: &[VertexId], next_use: &[u64]) -> usize {
        (0..candidates.len())
            .max_by_key(|&i| (next_use[i], std::cmp::Reverse(candidates[i])))
            .expect("no eviction candidates")
    }
    fn name(&self) -> &'static str {
        "belady"
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::Belady
    }
}

/// Uniform-random eviction.
pub struct RandomEvict<R: Rng> {
    rng: R,
}

impl<R: Rng> RandomEvict<R> {
    /// Creates a random-eviction policy.
    pub fn new(rng: R) -> RandomEvict<R> {
        RandomEvict { rng }
    }
}

impl<R: Rng> ReplacementPolicy for RandomEvict<R> {
    fn on_touch(&mut self, _v: VertexId, _time: u64) {}
    fn choose_victim(&mut self, candidates: &[VertexId], _next_use: &[u64]) -> usize {
        self.rng.gen_range(0..candidates.len())
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lru_picks_least_recent() {
        let mut lru = Lru::new(3);
        lru.on_touch(VertexId(0), 5);
        lru.on_touch(VertexId(1), 2);
        lru.on_touch(VertexId(2), 9);
        let cands = [VertexId(0), VertexId(1), VertexId(2)];
        assert_eq!(lru.choose_victim(&cands, &[0, 0, 0]), 1);
    }

    #[test]
    fn belady_picks_farthest_use() {
        let mut b = Belady;
        let cands = [VertexId(0), VertexId(1)];
        assert_eq!(b.choose_victim(&cands, &[3, 100]), 1);
        assert_eq!(b.choose_victim(&cands, &[u64::MAX, 100]), 0);
    }

    #[test]
    fn random_in_range() {
        let mut r = RandomEvict::new(StdRng::seed_from_u64(1));
        let cands = [VertexId(0), VertexId(1), VertexId(2)];
        for _ in 0..50 {
            assert!(r.choose_victim(&cands, &[0, 0, 0]) < 3);
        }
    }
}
