//! Cache replacement policies for the automatic scheduler.
//!
//! The model lets the scheduler choose *which* cached value to evict when
//! space is needed; the choice changes the I/O count but not validity. The
//! policies here span the design space the ablation bench measures: LRU
//! (realistic), Belady's MIN (offline-optimal eviction for a fixed compute
//! order), and random (baseline).

use mmio_cdag::VertexId;
use rand::Rng;

/// A replacement policy: asked to rank eviction candidates.
///
/// The scheduler always prefers evicting *dead* values (never used again,
/// already stored if needed) — that is free and policy-independent. Policies
/// only decide among *live* candidates.
pub trait ReplacementPolicy {
    /// Called when `v` is touched (loaded, computed, or used as an operand)
    /// at logical time `time`.
    fn on_touch(&mut self, v: VertexId, time: u64);
    /// Chooses which of `candidates` (all live, all cached) to evict.
    /// `next_use[i]` is the compute-order position of the candidate's next
    /// use (`u64::MAX` if none); LRU ignores it, Belady uses it.
    fn choose_victim(&mut self, candidates: &[VertexId], next_use: &[u64]) -> usize;
    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Least-recently-used.
#[derive(Default)]
pub struct Lru {
    last_touch: Vec<u64>,
}

impl Lru {
    /// Creates an LRU policy for a graph with `n` vertices.
    pub fn new(n: usize) -> Lru {
        Lru {
            last_touch: vec![0; n],
        }
    }
}

impl ReplacementPolicy for Lru {
    fn on_touch(&mut self, v: VertexId, time: u64) {
        self.last_touch[v.idx()] = time;
    }
    fn choose_victim(&mut self, candidates: &[VertexId], _next_use: &[u64]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| self.last_touch[v.idx()])
            .map(|(i, _)| i)
            .expect("no eviction candidates")
    }
    fn name(&self) -> &'static str {
        "lru"
    }
}

/// Belady's MIN: evict the value whose next use is farthest in the future.
/// Optimal eviction for a fixed compute order.
#[derive(Default)]
pub struct Belady;

impl ReplacementPolicy for Belady {
    fn on_touch(&mut self, _v: VertexId, _time: u64) {}
    fn choose_victim(&mut self, _candidates: &[VertexId], next_use: &[u64]) -> usize {
        next_use
            .iter()
            .enumerate()
            .max_by_key(|(_, &u)| u)
            .map(|(i, _)| i)
            .expect("no eviction candidates")
    }
    fn name(&self) -> &'static str {
        "belady"
    }
}

/// Uniform-random eviction.
pub struct RandomEvict<R: Rng> {
    rng: R,
}

impl<R: Rng> RandomEvict<R> {
    /// Creates a random-eviction policy.
    pub fn new(rng: R) -> RandomEvict<R> {
        RandomEvict { rng }
    }
}

impl<R: Rng> ReplacementPolicy for RandomEvict<R> {
    fn on_touch(&mut self, _v: VertexId, _time: u64) {}
    fn choose_victim(&mut self, candidates: &[VertexId], _next_use: &[u64]) -> usize {
        self.rng.gen_range(0..candidates.len())
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lru_picks_least_recent() {
        let mut lru = Lru::new(3);
        lru.on_touch(VertexId(0), 5);
        lru.on_touch(VertexId(1), 2);
        lru.on_touch(VertexId(2), 9);
        let cands = [VertexId(0), VertexId(1), VertexId(2)];
        assert_eq!(lru.choose_victim(&cands, &[0, 0, 0]), 1);
    }

    #[test]
    fn belady_picks_farthest_use() {
        let mut b = Belady;
        let cands = [VertexId(0), VertexId(1)];
        assert_eq!(b.choose_victim(&cands, &[3, 100]), 1);
        assert_eq!(b.choose_victim(&cands, &[u64::MAX, 100]), 0);
    }

    #[test]
    fn random_in_range() {
        let mut r = RandomEvict::new(StdRng::seed_from_u64(1));
        let cands = [VertexId(0), VertexId(1), VertexId(2)];
        for _ in 0..50 {
            assert!(r.choose_victim(&cands, &[0, 0, 0]) < 3);
        }
    }
}
