//! Explicit schedules: sequences of loads, stores, computations, and drops.

use mmio_cdag::VertexId;

/// One step of a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Move a value from slow memory into cache (1 I/O). Legal only for
    /// inputs or previously stored values.
    Load(VertexId),
    /// Copy a cached value to slow memory (1 I/O). The value stays cached.
    Store(VertexId),
    /// Compute a vertex; all predecessors must be cached, the result enters
    /// the cache (0 I/O).
    Compute(VertexId),
    /// Discard a cached value without storing it (0 I/O). Discarding a value
    /// still needed later makes the schedule invalid down the line unless a
    /// stored copy exists.
    Drop(VertexId),
}

/// An explicit schedule: the exhaustive record of a run, checkable by
/// [`crate::sim::simulate`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The actions, in execution order.
    pub actions: Vec<Action>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// The compute actions' vertices, in order.
    pub fn compute_order(&self) -> Vec<VertexId> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                Action::Compute(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// Number of I/O actions (loads + stores).
    pub fn io_actions(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, Action::Load(_) | Action::Store(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_helpers() {
        let v = VertexId(0);
        let w = VertexId(1);
        let s = Schedule {
            actions: vec![
                Action::Load(v),
                Action::Compute(w),
                Action::Store(w),
                Action::Drop(v),
            ],
        };
        assert_eq!(s.compute_order(), vec![w]);
        assert_eq!(s.io_actions(), 2);
    }
}
