//! I/O accounting records.

use serde::Serialize;
use std::ops::Add;

/// The I/O and work counts of one simulated execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct IoStats {
    /// Values moved slow memory → cache.
    pub loads: u64,
    /// Values moved cache → slow memory.
    pub stores: u64,
    /// Vertices computed.
    pub computes: u64,
}

impl IoStats {
    /// Total I/O (loads + stores) — the quantity Theorem 1 bounds.
    pub fn io(&self) -> u64 {
        self.loads + self.stores
    }
}

impl Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
            computes: self.computes + rhs.computes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_sums_loads_and_stores() {
        let s = IoStats {
            loads: 3,
            stores: 4,
            computes: 100,
        };
        assert_eq!(s.io(), 7);
    }

    #[test]
    fn addition() {
        let a = IoStats {
            loads: 1,
            stores: 2,
            computes: 3,
        };
        let b = IoStats {
            loads: 10,
            stores: 20,
            computes: 30,
        };
        let c = a + b;
        assert_eq!((c.loads, c.stores, c.computes), (11, 22, 33));
    }
}
