//! I/O accounting records.

use serde::Serialize;
use std::ops::Add;

/// The I/O and work counts of one simulated execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct IoStats {
    /// Values moved slow memory → cache.
    pub loads: u64,
    /// Values moved cache → slow memory.
    pub stores: u64,
    /// Vertices computed.
    pub computes: u64,
}

impl IoStats {
    /// Total I/O (loads + stores) — the quantity Theorem 1 bounds.
    pub fn io(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Internal event counts of the fast scheduler engine — not part of the
/// model's cost accounting, but the observables that explain *why* a run was
/// fast or slow (heap traffic vs free evictions). Reported by
/// [`crate::auto::AutoScheduler::run_prepared`] and persisted by the
/// `exp_perf_pebble` bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct EngineCounters {
    /// Evictions decided by the replacement policy (heap pop or scan).
    pub policy_evictions: u64,
    /// Free evictions of dead values off the O(1) free-list.
    pub dead_drops: u64,
    /// Entries pushed onto the lazy-invalidation policy heaps.
    pub heap_pushes: u64,
    /// Popped heap entries discarded as stale (superseded key or evicted).
    pub stale_pops: u64,
    /// Popped heap entries stashed because the vertex was pinned.
    pub pinned_stashes: u64,
}

impl Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
            computes: self.computes + rhs.computes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_sums_loads_and_stores() {
        let s = IoStats {
            loads: 3,
            stores: 4,
            computes: 100,
        };
        assert_eq!(s.io(), 7);
    }

    #[test]
    fn addition() {
        let a = IoStats {
            loads: 1,
            stores: 2,
            computes: 3,
        };
        let b = IoStats {
            loads: 10,
            stores: 20,
            computes: 30,
        };
        let c = a + b;
        assert_eq!((c.loads, c.stores, c.computes), (11, 22, 33));
    }
}
