//! The automatic scheduler: compute order + replacement policy → valid
//! schedule + exact I/O count.
//!
//! Given the order in which a program computes the CDAG's vertices, the only
//! remaining freedom in the machine model is *what to keep in cache*. This
//! scheduler makes those decisions with a pluggable [`ReplacementPolicy`],
//! maintaining the invariants the model demands:
//!
//! - a live value (one with uncomputed successors, or an unstored output)
//!   that is evicted while *dirty* (never stored) is stored first — it will
//!   be needed again and the model forbids recomputation;
//! - dead values are evicted first, for free;
//! - outputs are stored the moment they are computed (each output costs
//!   exactly one store in any schedule, so this is never worse).
//!
//! # The fast engine
//!
//! This module is the amortized-O(log M) engine; the original O(M)-per-miss
//! scan engine survives as [`reference::ReferenceScheduler`] and defines the
//! behavior this engine must reproduce exactly (same [`IoStats`], same
//! recorded [`Schedule`], same eviction sequence, for every policy). Three
//! structures replace the per-miss scans:
//!
//! - **Lazy-invalidation policy heaps.** For [`PolicyKind::Belady`] a
//!   max-heap keyed `(next_use, Reverse(id))`; for [`PolicyKind::Lru`] a
//!   min-heap keyed `(last_touch, id)`. Entries are pushed on every key
//!   change and never removed in place; a popped entry is *stale* (its key
//!   no longer matches the vertex's current key, or the vertex left the
//!   cache) and discarded, or *pinned* (an operand of the current step) and
//!   stashed + re-pushed after the victim is found. The VertexId tie-break
//!   makes the victim identical to the reference scan regardless of heap
//!   internals. [`PolicyKind::Other`] policies fall back to a candidate
//!   scan over the cache in insertion order, so stateful policies (random)
//!   observe the exact call sequence the reference makes.
//! - **Dead-value free-list.** A value that is dead the moment it is
//!   computed (a non-output with zero uses under this order) is pushed onto
//!   a min-heap by id; free evictions pop it in O(log M). All other values
//!   die while pinned as operands (or as just-stored outputs) and are
//!   dropped eagerly at that point, so the free-list is exactly the set of
//!   dead values in cache — no lazy validation needed.
//! - **Flat CSR use-lists.** Per-vertex sorted use positions live in one
//!   [`Csr`] (`use_offsets`/`use_positions`) built once per `(graph,
//!   order)` by [`SchedScratch::prepare`] and reused across every
//!   `(policy, M)` run of a sweep; `use_ptr` advances eagerly as uses are
//!   consumed, so "next use" is an O(1) lookup.

pub mod reference;

use crate::graph::PebbleGraph;
use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::schedule::{Action, Schedule};
use crate::stats::{EngineCounters, IoStats};
use mmio_cdag::{Cdag, Csr, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Error: the cache cannot hold even one operand set plus its result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheTooSmall {
    /// The requested cache size.
    pub m: usize,
    /// The minimum feasible cache size (`max_indegree + 1`).
    pub need: usize,
}

impl fmt::Display for CacheTooSmall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache size {} cannot hold an operand set ({} needed)",
            self.m, self.need
        )
    }
}

impl std::error::Error for CacheTooSmall {}

/// What [`AutoScheduler::run_prepared`] should collect beyond [`IoStats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Record the full action sequence as a [`Schedule`].
    pub record_schedule: bool,
    /// Record every vertex evicted on a miss (free and policy evictions).
    pub record_victims: bool,
}

/// Everything a scheduler run produces.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Exact I/O statistics.
    pub stats: IoStats,
    /// The schedule, if [`RunOptions::record_schedule`] was set.
    pub schedule: Option<Schedule>,
    /// The eviction sequence, if [`RunOptions::record_victims`] was set.
    pub victims: Option<Vec<VertexId>>,
    /// Engine-internal event counts (heap traffic, eviction kinds).
    pub counters: EngineCounters,
}

/// Reusable scheduler state: the per-(graph, order) CSR use-lists plus every
/// per-run vector and heap, so a sweep over a (policy, M) grid allocates
/// once per worker instead of once per run.
#[derive(Default)]
pub struct SchedScratch {
    // Built by `prepare`, immutable during runs.
    compute_pos: Vec<u64>,
    uses: Csr,
    // Per-run state, reset by `run_prepared`.
    use_ptr: Vec<u32>,
    remaining_uses: Vec<u32>,
    in_cache: Vec<bool>,
    cache_list: Vec<VertexId>,
    cache_pos: Vec<u32>,
    dirty: Vec<bool>,
    stored: Vec<bool>,
    pinned_mark: Vec<u64>,
    last_touch: Vec<u64>,
    next_use_cur: Vec<u64>,
    belady_heap: BinaryHeap<(u64, Reverse<VertexId>)>,
    lru_heap: BinaryHeap<Reverse<(u64, VertexId)>>,
    dead_heap: BinaryHeap<Reverse<VertexId>>,
    stash: Vec<(u64, VertexId)>,
    candidates: Vec<VertexId>,
    next_use_buf: Vec<u64>,
}

impl SchedScratch {
    /// Fresh, empty scratch.
    pub fn new() -> SchedScratch {
        SchedScratch::default()
    }

    /// Builds the flat CSR use-lists and compute positions for `(g, order)`,
    /// reusing existing allocations. Must be called before
    /// [`AutoScheduler::run_prepared`] with the same graph and order.
    pub fn prepare<G: PebbleGraph>(&mut self, g: &G, order: &[VertexId]) {
        let n = g.n_vertices();
        self.compute_pos.clear();
        self.compute_pos.resize(n, u64::MAX);
        for (i, &v) in order.iter().enumerate() {
            self.compute_pos[v.idx()] = i as u64;
        }
        // Emitting in ascending order position keeps every row sorted.
        let compute_pos = &self.compute_pos;
        self.uses.rebuild(n, |sink| {
            for &v in order {
                let pos = compute_pos[v.idx()];
                for &p in g.preds(v) {
                    sink(p.0, pos);
                }
            }
        });
    }
}

/// Scheduler for one CDAG under a fixed cache size. Generic over the
/// graph's representation: the full [`Cdag`] (the default) or any other
/// [`PebbleGraph`], e.g. a [`crate::ViewGraph`] materialized from a
/// closed-form view.
pub struct AutoScheduler<'g, G: PebbleGraph = Cdag> {
    g: &'g G,
    m: usize,
}

impl<'g, G: PebbleGraph> AutoScheduler<'g, G> {
    /// Creates a scheduler with cache size `m`, or reports why it cannot
    /// schedule anything (`m < max_indegree + 1`).
    pub fn try_new(g: &'g G, m: usize) -> Result<AutoScheduler<'g, G>, CacheTooSmall> {
        let need = g.max_indegree() + 1;
        if m < need {
            return Err(CacheTooSmall { m, need });
        }
        Ok(AutoScheduler { g, m })
    }

    /// Creates a scheduler with cache size `m`.
    ///
    /// # Panics
    /// Panics if `m` is too small to compute some vertex at all
    /// (`m < max_indegree + 1`).
    pub fn new(g: &'g G, m: usize) -> AutoScheduler<'g, G> {
        match AutoScheduler::try_new(g, m) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `order` (all non-input vertices, topologically sorted) under
    /// `policy` and returns the I/O statistics.
    pub fn run(&self, order: &[VertexId], policy: &mut dyn ReplacementPolicy) -> IoStats {
        let mut scratch = SchedScratch::new();
        scratch.prepare(self.g, order);
        self.run_prepared(order, &mut scratch, policy, RunOptions::default())
            .stats
    }

    /// Like [`AutoScheduler::run`], additionally returning the explicit
    /// schedule (for validation against [`crate::sim::simulate`]).
    pub fn run_recorded(
        &self,
        order: &[VertexId],
        policy: &mut dyn ReplacementPolicy,
    ) -> (IoStats, Schedule) {
        let mut scratch = SchedScratch::new();
        scratch.prepare(self.g, order);
        let out = self.run_prepared(
            order,
            &mut scratch,
            policy,
            RunOptions {
                record_schedule: true,
                record_victims: false,
            },
        );
        (out.stats, out.schedule.expect("recording was requested"))
    }

    /// The full-detail entry point: runs `order` under `policy` using
    /// `scratch`, which must have been [`SchedScratch::prepare`]d for this
    /// scheduler's graph and the same `order`.
    pub fn run_prepared(
        &self,
        order: &[VertexId],
        scratch: &mut SchedScratch,
        policy: &mut dyn ReplacementPolicy,
        opts: RunOptions,
    ) -> RunOutput {
        let g = self.g;
        let m = self.m;
        let n = g.n_vertices();
        debug_assert_eq!(
            order.len(),
            (0..n as u32).filter(|&i| !g.is_input(VertexId(i))).count(),
            "order must cover every non-input vertex exactly once"
        );
        debug_assert_eq!(
            scratch.uses.n_keys(),
            n,
            "scratch must be prepared for this graph and order"
        );

        let SchedScratch {
            compute_pos: _,
            uses,
            use_ptr,
            remaining_uses,
            in_cache,
            cache_list,
            cache_pos,
            dirty,
            stored,
            pinned_mark,
            last_touch,
            next_use_cur,
            belady_heap,
            lru_heap,
            dead_heap,
            stash,
            candidates,
            next_use_buf,
        } = scratch;

        use_ptr.clear();
        use_ptr.resize(n, 0);
        remaining_uses.clear();
        remaining_uses.resize(n, 0);
        for (i, r) in remaining_uses.iter_mut().enumerate() {
            *r = uses.row(i).len() as u32;
        }
        in_cache.clear();
        in_cache.resize(n, false);
        cache_list.clear();
        cache_list.reserve(m);
        cache_pos.clear();
        cache_pos.resize(n, u32::MAX);
        dirty.clear();
        dirty.resize(n, false);
        stored.clear();
        stored.resize(n, false);
        pinned_mark.clear();
        pinned_mark.resize(n, 0);
        last_touch.clear();
        last_touch.resize(n, 0);
        next_use_cur.clear();
        next_use_cur.resize(n, 0);
        belady_heap.clear();
        lru_heap.clear();
        dead_heap.clear();
        stash.clear();

        let pk = policy.kind();
        let record = opts.record_schedule;
        let mut stats = IoStats::default();
        let mut counters = EngineCounters::default();
        let mut actions: Vec<Action> = Vec::new();
        let mut victims: Vec<VertexId> = Vec::new();
        let mut time: u64 = 0;

        macro_rules! cache_insert {
            ($v:expr) => {{
                let v: VertexId = $v;
                in_cache[v.idx()] = true;
                cache_pos[v.idx()] = cache_list.len() as u32;
                cache_list.push(v);
            }};
        }
        macro_rules! cache_remove {
            ($v:expr) => {{
                let v: VertexId = $v;
                let pos = cache_pos[v.idx()] as usize;
                let last = *cache_list.last().unwrap();
                cache_list.swap_remove(pos);
                if last != v {
                    cache_pos[last.idx()] = pos as u32;
                }
                in_cache[v.idx()] = false;
                cache_pos[v.idx()] = u32::MAX;
            }};
        }
        // Mirrors the reference's `policy.on_touch` call sites; for LRU the
        // engine also maintains its own stamp + heap entry.
        macro_rules! touch {
            ($w:expr) => {{
                let w: VertexId = $w;
                policy.on_touch(w, time);
                if pk == PolicyKind::Lru {
                    last_touch[w.idx()] = time;
                    lru_heap.push(Reverse((time, w)));
                    counters.heap_pushes += 1;
                }
                time += 1;
            }};
        }
        // Publishes a vertex's current next-use key to the Belady heap; the
        // previous entry (if any) becomes stale and is discarded at pop.
        macro_rules! refresh_next_use {
            ($w:expr) => {{
                if pk == PolicyKind::Belady {
                    let w: VertexId = $w;
                    let key = uses
                        .row(w.idx())
                        .get(use_ptr[w.idx()] as usize)
                        .copied()
                        .unwrap_or(u64::MAX);
                    next_use_cur[w.idx()] = key;
                    belady_heap.push((key, Reverse(w)));
                    counters.heap_pushes += 1;
                }
            }};
        }

        for (step, &v) in order.iter().enumerate() {
            let step = step as u64;
            // Operands and v are pinned for the whole step; `step + 1` so
            // the zero-initialized marks never match step 0.
            let step_tag = step + 1;
            for &p in g.preds(v) {
                pinned_mark[p.idx()] = step_tag;
            }
            pinned_mark[v.idx()] = step_tag;

            macro_rules! ensure_slot {
                () => {{
                    if cache_list.len() >= m {
                        if let Some(Reverse(w)) = dead_heap.pop() {
                            // 1) O(1) free eviction off the dead free-list.
                            //    Dead values are never pinned: a dead-at-birth
                            //    vertex has no successors to be an operand of.
                            debug_assert!(in_cache[w.idx()]);
                            debug_assert!(pinned_mark[w.idx()] != step_tag);
                            cache_remove!(w);
                            counters.dead_drops += 1;
                            if opts.record_victims {
                                victims.push(w);
                            }
                            if record {
                                actions.push(Action::Drop(w));
                            }
                        } else {
                            // 2) Live eviction chosen by the policy.
                            let victim: VertexId = match pk {
                                PolicyKind::Belady => {
                                    let victim;
                                    loop {
                                        let (key, Reverse(c)) = belady_heap
                                            .pop()
                                            .expect("a live unpinned candidate must exist");
                                        if !in_cache[c.idx()] || key != next_use_cur[c.idx()] {
                                            counters.stale_pops += 1;
                                            continue;
                                        }
                                        if pinned_mark[c.idx()] == step_tag {
                                            stash.push((key, c));
                                            counters.pinned_stashes += 1;
                                            continue;
                                        }
                                        victim = c;
                                        break;
                                    }
                                    for &(k, c) in stash.iter() {
                                        belady_heap.push((k, Reverse(c)));
                                    }
                                    stash.clear();
                                    victim
                                }
                                PolicyKind::Lru => {
                                    let victim;
                                    loop {
                                        let Reverse((stamp, c)) = lru_heap
                                            .pop()
                                            .expect("a live unpinned candidate must exist");
                                        if !in_cache[c.idx()] || stamp != last_touch[c.idx()] {
                                            counters.stale_pops += 1;
                                            continue;
                                        }
                                        if pinned_mark[c.idx()] == step_tag {
                                            stash.push((stamp, c));
                                            counters.pinned_stashes += 1;
                                            continue;
                                        }
                                        victim = c;
                                        break;
                                    }
                                    for &(k, c) in stash.iter() {
                                        lru_heap.push(Reverse((k, c)));
                                    }
                                    stash.clear();
                                    victim
                                }
                                PolicyKind::Other => {
                                    // Candidates in cache-insertion order, as
                                    // the reference engine presents them.
                                    candidates.clear();
                                    next_use_buf.clear();
                                    for &w in cache_list.iter() {
                                        if pinned_mark[w.idx()] != step_tag {
                                            candidates.push(w);
                                            next_use_buf.push(
                                                uses.row(w.idx())
                                                    .get(use_ptr[w.idx()] as usize)
                                                    .copied()
                                                    .unwrap_or(u64::MAX),
                                            );
                                        }
                                    }
                                    let i = policy.choose_victim(candidates, next_use_buf);
                                    candidates[i]
                                }
                            };
                            counters.policy_evictions += 1;
                            if dirty[victim.idx()] && !stored[victim.idx()] {
                                stats.stores += 1;
                                stored[victim.idx()] = true;
                                if record {
                                    actions.push(Action::Store(victim));
                                }
                            }
                            cache_remove!(victim);
                            if opts.record_victims {
                                victims.push(victim);
                            }
                            if record {
                                actions.push(Action::Drop(victim));
                            }
                        }
                    }
                }};
            }

            // Load missing operands.
            for &p in g.preds(v) {
                if in_cache[p.idx()] {
                    touch!(p);
                    continue;
                }
                debug_assert!(
                    g.is_input(p) || stored[p.idx()],
                    "invariant violated: evicted live value {p:?} was not stored"
                );
                ensure_slot!();
                cache_insert!(p);
                dirty[p.idx()] = false;
                stats.loads += 1;
                if record {
                    actions.push(Action::Load(p));
                }
                refresh_next_use!(p);
                touch!(p);
            }

            // Compute v.
            ensure_slot!();
            cache_insert!(v);
            dirty[v.idx()] = true;
            stats.computes += 1;
            if record {
                actions.push(Action::Compute(v));
            }
            refresh_next_use!(v);
            touch!(v);
            if !g.is_output(v) && remaining_uses[v.idx()] == 0 {
                // Dead at birth: the only way a dead value stays in cache.
                dead_heap.push(Reverse(v));
            }

            // Consume one use of each operand; drop operands that died.
            for &p in g.preds(v) {
                remaining_uses[p.idx()] -= 1;
                use_ptr[p.idx()] += 1;
                if in_cache[p.idx()] && p != v {
                    if remaining_uses[p.idx()] == 0 && (!g.is_output(p) || stored[p.idx()]) {
                        cache_remove!(p);
                        if record {
                            actions.push(Action::Drop(p));
                        }
                    } else {
                        refresh_next_use!(p);
                    }
                }
            }

            // Outputs are stored (and dropped) immediately.
            if g.is_output(v) {
                stats.stores += 1;
                stored[v.idx()] = true;
                if record {
                    actions.push(Action::Store(v));
                }
                if remaining_uses[v.idx()] == 0 {
                    cache_remove!(v);
                    if record {
                        actions.push(Action::Drop(v));
                    }
                }
            }
        }

        RunOutput {
            stats,
            schedule: record.then_some(Schedule { actions }),
            victims: opts.record_victims.then_some(victims),
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceScheduler;
    use super::*;
    use crate::orders;
    use crate::policy::{Belady, Lru, RandomEvict};
    use crate::sim::simulate;
    use mmio_cdag::build::build_cdag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::testutil::classical2_base;

    #[test]
    fn recorded_schedule_is_valid() {
        let g = build_cdag(&classical2_base(), 2);
        let order = orders::rank_order(&g);
        for m in [8usize, 16, 64] {
            let sched = AutoScheduler::new(&g, m);
            let (stats, schedule) = sched.run_recorded(&order, &mut Lru::new(g.n_vertices()));
            let replayed = simulate(&g, &schedule, m).expect("schedule must be valid");
            assert_eq!(replayed, stats, "m={m}");
        }
    }

    #[test]
    fn recursive_order_recorded_schedule_is_valid() {
        let g = build_cdag(&classical2_base(), 2);
        let order = orders::recursive_order(&g);
        let sched = AutoScheduler::new(&g, 10);
        let (stats, schedule) = sched.run_recorded(&order, &mut Belady);
        let replayed = simulate(&g, &schedule, 10).expect("schedule must be valid");
        assert_eq!(replayed, stats);
    }

    #[test]
    fn huge_cache_needs_only_compulsory_io() {
        // With cache larger than the whole graph: loads = touched inputs,
        // stores = outputs.
        let g = build_cdag(&classical2_base(), 2);
        let order = orders::rank_order(&g);
        let sched = AutoScheduler::new(&g, g.n_vertices() + 1);
        let stats = sched.run(&order, &mut Lru::new(g.n_vertices()));
        assert_eq!(stats.loads, 2 * 16); // every input touched once
        assert_eq!(stats.stores, 16); // every output stored once
    }

    #[test]
    fn smaller_cache_never_reduces_io() {
        let g = build_cdag(&classical2_base(), 2);
        let order = orders::recursive_order(&g);
        let mut last = None;
        for m in [64usize, 32, 16, 8] {
            let stats = AutoScheduler::new(&g, m).run(&order, &mut Belady);
            if let Some(prev) = last {
                assert!(stats.io() >= prev, "m={m}: {} < {prev}", stats.io());
            }
            last = Some(stats.io());
        }
    }

    #[test]
    fn belady_never_worse_than_lru() {
        let g = build_cdag(&classical2_base(), 2);
        for order in [orders::rank_order(&g), orders::recursive_order(&g)] {
            for m in [8usize, 12, 24, 48] {
                let b = AutoScheduler::new(&g, m).run(&order, &mut Belady);
                let l = AutoScheduler::new(&g, m).run(&order, &mut Lru::new(g.n_vertices()));
                assert!(
                    b.io() <= l.io(),
                    "belady {} > lru {} at m={m}",
                    b.io(),
                    l.io()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold an operand set")]
    fn cache_too_small_panics() {
        let g = build_cdag(&classical2_base(), 1);
        let _ = AutoScheduler::new(&g, 2);
    }

    #[test]
    fn try_new_reports_need() {
        let g = build_cdag(&classical2_base(), 1);
        let err = AutoScheduler::try_new(&g, 2).err().unwrap();
        assert_eq!(err.m, 2);
        assert!(err.need > 2);
        assert_eq!(
            err.to_string(),
            format!(
                "cache size 2 cannot hold an operand set ({} needed)",
                err.need
            )
        );
        assert!(AutoScheduler::try_new(&g, err.need).is_ok());
    }

    /// The equivalence contract: identical stats, schedule, and eviction
    /// sequence vs the reference scan engine, for every policy kind.
    #[test]
    fn fast_engine_matches_reference_exactly() {
        let g = build_cdag(&classical2_base(), 2);
        let opts = RunOptions {
            record_schedule: true,
            record_victims: true,
        };
        for order in [orders::rank_order(&g), orders::recursive_order(&g)] {
            for m in [8usize, 10, 16, 32, 64] {
                for which in ["lru", "belady", "random"] {
                    let mut fast_policy: Box<dyn crate::policy::ReplacementPolicy> = match which {
                        "lru" => Box::new(Lru::new(g.n_vertices())),
                        "belady" => Box::new(Belady),
                        _ => Box::new(RandomEvict::new(StdRng::seed_from_u64(42))),
                    };
                    let mut ref_policy: Box<dyn crate::policy::ReplacementPolicy> = match which {
                        "lru" => Box::new(Lru::new(g.n_vertices())),
                        "belady" => Box::new(Belady),
                        _ => Box::new(RandomEvict::new(StdRng::seed_from_u64(42))),
                    };
                    let mut scratch = SchedScratch::new();
                    scratch.prepare(&g, &order);
                    let fast = AutoScheduler::new(&g, m).run_prepared(
                        &order,
                        &mut scratch,
                        fast_policy.as_mut(),
                        opts,
                    );
                    let (rs, rsched, rvictims) =
                        ReferenceScheduler::new(&g, m).run_traced(&order, ref_policy.as_mut());
                    assert_eq!(fast.stats, rs, "{which} m={m}: stats diverge");
                    assert_eq!(
                        fast.schedule.as_ref().unwrap(),
                        &rsched,
                        "{which} m={m}: schedules diverge"
                    );
                    assert_eq!(
                        fast.victims.as_ref().unwrap(),
                        &rvictims,
                        "{which} m={m}: victim sequences diverge"
                    );
                }
            }
        }
    }

    /// Scratch reuse across runs with different policies and cache sizes
    /// must not leak state between runs.
    #[test]
    fn scratch_reuse_is_clean() {
        let g = build_cdag(&classical2_base(), 2);
        let order = orders::recursive_order(&g);
        let mut scratch = SchedScratch::new();
        scratch.prepare(&g, &order);
        let opts = RunOptions::default();
        let mut io = Vec::new();
        for _ in 0..2 {
            for m in [8usize, 32] {
                let a = AutoScheduler::new(&g, m)
                    .run_prepared(&order, &mut scratch, &mut Belady, opts)
                    .stats;
                let b = AutoScheduler::new(&g, m)
                    .run_prepared(&order, &mut scratch, &mut Lru::new(g.n_vertices()), opts)
                    .stats;
                io.push((a, b));
            }
        }
        assert_eq!(io[0], io[2]);
        assert_eq!(io[1], io[3]);
    }

    #[test]
    fn counters_report_engine_activity() {
        let g = build_cdag(&classical2_base(), 2);
        let order = orders::recursive_order(&g);
        let mut scratch = SchedScratch::new();
        scratch.prepare(&g, &order);
        let out = AutoScheduler::new(&g, 8).run_prepared(
            &order,
            &mut scratch,
            &mut Belady,
            RunOptions::default(),
        );
        assert!(out.counters.policy_evictions > 0);
        assert!(out.counters.heap_pushes > 0);
    }
}
