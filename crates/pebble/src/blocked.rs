//! Classical blocked matrix multiplication I/O: the Hong–Kung baseline.
//!
//! Hong and Kung [10] proved the classical algorithm needs `Θ(n³/√M)` I/Os,
//! attained by multiplying in `s×s` tiles with `3s² ≤ M`. This module
//! provides both the closed-form tile-level count and the corresponding
//! lower-bound formula, used as the classical side of the crossover
//! experiment (E10).

/// Largest tile side `s` with three tiles fitting in cache: `s = ⌊√(M/3)⌋`.
pub fn tile_side(m: u64) -> u64 {
    let mut s = ((m / 3) as f64).sqrt() as u64;
    while 3 * (s + 1) * (s + 1) <= m {
        s += 1;
    }
    while s > 0 && 3 * s * s > m {
        s -= 1;
    }
    s.max(1)
}

/// I/O count of tiled classical multiplication of `n×n` matrices with tile
/// side `s` (tiles assumed to divide `n` for the closed form; callers pass
/// `n` divisible by `s` or accept the ceiling approximation):
/// each of the `⌈n/s⌉³` tile-multiplications loads two tiles and each of the
/// `⌈n/s⌉²` output tiles is loaded/stored once per sweep — totalling
/// `2·⌈n/s⌉³·s² + 2·n²` in the standard accounting (output tile kept across
/// the inner sweep).
pub fn blocked_io(n: u64, m: u64) -> u64 {
    let s = tile_side(m);
    let t = n.div_ceil(s);
    2 * t * t * t * s * s + 2 * n * n
}

/// The Hong–Kung lower bound in its usual explicit form:
/// `n³ / (2√2 · √M) − M` (see [5] for the constant).
pub fn hong_kung_lower_bound(n: u64, m: u64) -> f64 {
    let n = n as f64;
    let m = m as f64;
    (n * n * n) / (2.0 * (2.0 * m).sqrt()) - m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_side_fits() {
        for m in [3u64, 12, 48, 300, 10_000] {
            let s = tile_side(m);
            assert!(3 * s * s <= m, "m={m}");
            assert!(3 * (s + 1) * (s + 1) > m, "m={m} not maximal");
        }
    }

    #[test]
    fn tile_side_minimum_one() {
        assert_eq!(tile_side(1), 1);
        assert_eq!(tile_side(2), 1);
    }

    #[test]
    fn blocked_io_scales_as_n3_over_sqrt_m() {
        // Doubling n multiplies I/O by ~8; quadrupling M halves it (for the
        // dominant term).
        let base = blocked_io(1 << 10, 3 * (1 << 8));
        let big_n = blocked_io(1 << 11, 3 * (1 << 8));
        let ratio = big_n as f64 / base as f64;
        assert!((7.0..9.0).contains(&ratio), "n-scaling ratio {ratio}");

        let big_m = blocked_io(1 << 10, 3 * (1 << 10));
        let ratio_m = base as f64 / big_m as f64;
        assert!((1.6..2.4).contains(&ratio_m), "M-scaling ratio {ratio_m}");
    }

    #[test]
    fn blocked_io_beats_lower_bound() {
        for (n, m) in [(256u64, 192u64), (1024, 3072), (4096, 12288)] {
            let upper = blocked_io(n, m) as f64;
            let lower = hong_kung_lower_bound(n, m);
            assert!(upper >= lower, "n={n} m={m}: {upper} < {lower}");
            // And within a constant factor (the bound is tight).
            assert!(upper <= 40.0 * lower.max(1.0), "n={n} m={m} too loose");
        }
    }
}
