//! Execution traces: time series of cache occupancy and cumulative I/O
//! along a schedule, and working-set statistics of compute orders.
//!
//! The segment argument reasons about I/O *density* along the computation;
//! traces make that density visible and are consumed by the experiment
//! harness for plots and by tests as an independent accounting of the
//! scheduler's I/O (trace totals must equal [`crate::stats::IoStats`]).

use crate::schedule::{Action, Schedule};
use mmio_cdag::{Cdag, VertexId};
use serde::Serialize;

/// One sampled point of an execution trace.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TracePoint {
    /// Number of compute actions executed so far.
    pub computes: u64,
    /// Cumulative loads.
    pub loads: u64,
    /// Cumulative stores.
    pub stores: u64,
    /// Cache occupancy after this point.
    pub occupancy: usize,
}

/// Replays `schedule` and samples a trace every `stride` compute actions.
///
/// # Panics
/// Panics if `stride == 0`.
pub fn trace_schedule(g: &Cdag, schedule: &Schedule, stride: u64) -> Vec<TracePoint> {
    assert!(stride > 0, "stride must be positive");
    let mut cache = vec![false; g.n_vertices()];
    let mut occupancy = 0usize;
    let mut point = TracePoint {
        computes: 0,
        loads: 0,
        stores: 0,
        occupancy: 0,
    };
    let mut out = Vec::new();
    for &action in &schedule.actions {
        match action {
            Action::Load(v) => {
                point.loads += 1;
                if !cache[v.idx()] {
                    cache[v.idx()] = true;
                    occupancy += 1;
                }
            }
            Action::Store(_) => point.stores += 1,
            Action::Drop(v) => {
                if cache[v.idx()] {
                    cache[v.idx()] = false;
                    occupancy -= 1;
                }
            }
            Action::Compute(v) => {
                point.computes += 1;
                if !cache[v.idx()] {
                    cache[v.idx()] = true;
                    occupancy += 1;
                }
                if point.computes.is_multiple_of(stride) {
                    point.occupancy = occupancy;
                    out.push(point);
                }
            }
        }
    }
    point.occupancy = occupancy;
    out.push(point);
    out
}

/// The *working set* of a compute order at position `i`: values already
/// produced (or inputs already touched) that are still needed at or after
/// `i`. Its maximum over the order is the smallest cache size under which
/// the order incurs only compulsory I/O.
pub fn max_working_set(g: &Cdag, order: &[VertexId]) -> usize {
    let n = g.n_vertices();
    let mut pos = vec![u64::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v.idx()] = i as u64;
    }
    // last_use[v] = last position where v is read.
    let mut last_use = vec![0u64; n];
    let mut first_use = vec![u64::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        for &p in g.preds(v) {
            last_use[p.idx()] = last_use[p.idx()].max(i as u64);
            first_use[p.idx()] = first_use[p.idx()].min(i as u64);
        }
    }
    // Sweep: value v is live in [birth(v), last_use(v)] where birth is its
    // compute position (or first use for inputs).
    let mut delta = vec![0i64; order.len() + 2];
    for v in g.vertices() {
        let birth = if g.is_input(v) {
            first_use[v.idx()]
        } else {
            pos[v.idx()]
        };
        if birth == u64::MAX {
            continue; // never used
        }
        let death = last_use[v.idx()].max(birth);
        delta[birth as usize] += 1;
        delta[death as usize + 1] -= 1;
    }
    let mut live = 0i64;
    let mut max_live = 0i64;
    for d in delta {
        live += d;
        max_live = max_live.max(live);
    }
    max_live as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::AutoScheduler;
    use crate::orders::{rank_order, recursive_order};
    use crate::policy::Lru;
    use crate::testutil::classical2_base;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn trace_totals_match_stats() {
        let g = build_cdag(&classical2_base(), 2);
        let order = recursive_order(&g);
        let sched = AutoScheduler::new(&g, 12);
        let (stats, schedule) = sched.run_recorded(&order, &mut Lru::new(g.n_vertices()));
        let trace = trace_schedule(&g, &schedule, 10);
        let last = trace.last().unwrap();
        assert_eq!(last.loads, stats.loads);
        assert_eq!(last.stores, stats.stores);
        assert_eq!(last.computes, stats.computes);
    }

    #[test]
    fn occupancy_bounded_by_cache() {
        let g = build_cdag(&classical2_base(), 2);
        let order = recursive_order(&g);
        let m = 10;
        let sched = AutoScheduler::new(&g, m);
        let (_, schedule) = sched.run_recorded(&order, &mut Lru::new(g.n_vertices()));
        for point in trace_schedule(&g, &schedule, 1) {
            assert!(point.occupancy <= m);
        }
    }

    #[test]
    fn recursive_working_set_smaller_than_rank_order() {
        let g = build_cdag(&classical2_base(), 3);
        let rec = max_working_set(&g, &recursive_order(&g));
        let rank = max_working_set(&g, &rank_order(&g));
        assert!(
            rec < rank,
            "recursive {rec} should beat rank-by-rank {rank}"
        );
    }

    #[test]
    fn working_set_suffices_for_compulsory_io() {
        // With cache = max working set + slack, I/O is exactly compulsory:
        // one load per touched input, one store per output.
        let g = build_cdag(&classical2_base(), 2);
        let order = recursive_order(&g);
        let ws = max_working_set(&g, &order);
        let stats = AutoScheduler::new(&g, ws + 1).run(&order, &mut Lru::new(g.n_vertices()));
        assert_eq!(stats.loads, 2 * 16);
        assert_eq!(stats.stores, 16);
    }
}
