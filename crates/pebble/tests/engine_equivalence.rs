//! Property tests for the fast-engine equivalence contract.
//!
//! The heap-based engine in `mmio_pebble::auto` must be *observationally
//! identical* to the scan-based `auto::reference` engine: same [`IoStats`],
//! same recorded schedule, same eviction sequence — for every policy, on
//! arbitrary Strassen-like base graphs, arbitrary topological orders, and
//! arbitrary feasible cache sizes. Additionally every recorded fast-engine
//! schedule must replay cleanly through the strict simulator.

use mmio_cdag::build::build_cdag;
use mmio_cdag::{BaseGraph, Cdag, VertexId};
use mmio_matrix::{Matrix, Rational};
use mmio_pebble::auto::reference::ReferenceScheduler;
use mmio_pebble::auto::{AutoScheduler, RunOptions, SchedScratch};
use mmio_pebble::policy::{Belady, Lru, RandomEvict, ReplacementPolicy};
use mmio_pebble::sim::simulate;
use mmio_pebble::{orders, IoStats};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministically builds a random Strassen-like base graph: `n₀ ∈ {1,2}`,
/// `b ∈ 1..=5` products, encode/decode entries drawn from `{-1, 0, 1}`.
/// Correctness of the algorithm is irrelevant here — only the CDAG structure
/// matters — but every row gets at least one nonzero entry so no layer
/// degenerates to fully disconnected vertices.
fn random_base(seed: u64) -> BaseGraph {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let n0 = rng.gen_range(1usize..=2);
    let a = n0 * n0;
    let b = rng.gen_range(1usize..=5);
    let mut fill = |rows: usize, cols: usize| {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = Rational::integer(rng.gen_range(-1i64..=1));
            }
            if (0..cols).all(|j| m[(i, j)].is_zero()) {
                let j = rng.gen_range(0..cols);
                m[(i, j)] = Rational::ONE;
            }
        }
        m
    };
    let enc_a = fill(b, a);
    let enc_b = fill(b, a);
    let dec = fill(a, b);
    BaseGraph::new("random", n0, enc_a, enc_b, dec)
}

fn pick_order(g: &Cdag, which: usize, seed: u64) -> Vec<VertexId> {
    match which {
        0 => orders::rank_order(g),
        1 => orders::recursive_order(g),
        _ => orders::random_topo_order(g, &mut StdRng::seed_from_u64(seed)),
    }
}

fn make_policy(g: &Cdag, which: usize, seed: u64) -> Box<dyn ReplacementPolicy> {
    match which {
        0 => Box::new(Lru::new(g.n_vertices())),
        1 => Box::new(Belady),
        _ => Box::new(RandomEvict::new(StdRng::seed_from_u64(seed))),
    }
}

proptest! {
    #[test]
    fn fast_engine_is_observationally_identical_to_reference(
        base_seed in 0u64..10_000,
        r in 1u32..=2,
        order_kind in 0usize..3,
        order_seed in 0u64..10_000,
        policy_kind in 0usize..3,
        policy_seed in 0u64..10_000,
        m_extra in 0usize..12,
    ) {
        let base = random_base(base_seed);
        let g = build_cdag(&base, r);
        let order = pick_order(&g, order_kind, order_seed);
        let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(0) + 1;
        let m = need + m_extra;

        let mut scratch = SchedScratch::new();
        scratch.prepare(&g, &order);
        let fast = AutoScheduler::new(&g, m).run_prepared(
            &order,
            &mut scratch,
            make_policy(&g, policy_kind, policy_seed).as_mut(),
            RunOptions { record_schedule: true, record_victims: true },
        );
        let (ref_stats, ref_sched, ref_victims) = ReferenceScheduler::new(&g, m)
            .run_traced(&order, make_policy(&g, policy_kind, policy_seed).as_mut());

        prop_assert_eq!(fast.stats, ref_stats);
        prop_assert_eq!(fast.schedule.as_ref().unwrap(), &ref_sched);
        prop_assert_eq!(fast.victims.as_ref().unwrap(), &ref_victims);

        // Every recorded fast-engine schedule replays through the strict
        // simulator with exactly the stats the engine reported.
        let replayed: IoStats = simulate(&g, fast.schedule.as_ref().unwrap(), m)
            .expect("fast-engine schedule must be valid");
        prop_assert_eq!(replayed, fast.stats);
    }
}
