//! # mmio-bench
//!
//! The experiment harness: one binary per experiment in `EXPERIMENTS.md`
//! (`cargo run --release -p mmio-bench --bin exp_<id>`), plus criterion
//! benches (`cargo bench -p mmio-bench`).
//!
//! Every binary prints its table to stdout and appends a machine-readable
//! record to `results/<id>.json`.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Pre-flight static analysis gate for experiment binaries: runs the
/// `mmio-analyze` CDAG passes on `base` at depth 1 and panics on any error,
/// so a malformed algorithm is rejected before minutes of measurement.
/// Depth 1 suffices — the base-graph lints (tensor identity, single-use)
/// are depth-independent, and structural defects replicate to every depth.
pub fn preflight(base: &mmio_cdag::BaseGraph) {
    preflight_expecting(base, &[]);
}

/// [`preflight`] for experiments that *study* a defect: every reported
/// error must carry one of the `expected` codes, and every expected code
/// must actually fire. E12, for instance, measures a base graph that
/// deliberately violates the single-use assumption (`MMIO-A007`).
pub fn preflight_expecting(base: &mmio_cdag::BaseGraph, expected: &[&str]) {
    let report = mmio_analyze::analyze_base_at(base, 1);
    for d in report.errors() {
        assert!(
            expected.contains(&d.code),
            "pre-flight static analysis failed for '{}': {d}",
            base.name()
        );
    }
    for code in expected {
        assert!(
            report.has_code(code),
            "pre-flight expected '{}' to trigger {code}, but it did not",
            base.name()
        );
    }
}

/// Where experiment records are written (workspace-relative `results/`).
pub fn results_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("results");
    dir
}

/// Serializes `record` as pretty JSON into `results/<name>.json`.
pub fn write_record<T: Serialize>(name: &str, record: &T) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return; // reporting is best-effort; the stdout table is the output
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(record) {
        let _ = fs::write(&path, json);
    }
}

/// A generic labelled row of floats, the common shape of experiment tables.
#[derive(Serialize, Clone, Debug)]
pub struct Row {
    /// Row label (e.g. the swept parameter).
    pub label: String,
    /// Named values.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Builds a row.
    pub fn new(label: impl Into<String>) -> Row {
        Row {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Adds one named value.
    pub fn push(mut self, key: &str, value: f64) -> Row {
        self.values.push((key.to_string(), value));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_accumulate() {
        let row = Row::new("M=8").push("io", 12.0).push("bound", 4.0);
        assert_eq!(row.values.len(), 2);
        assert_eq!(row.values[1].1, 4.0);
    }

    #[test]
    fn results_dir_points_at_workspace() {
        assert!(results_dir().ends_with("results"));
    }
}
