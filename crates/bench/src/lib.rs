//! # mmio-bench
//!
//! The experiment harness: one binary per experiment in `EXPERIMENTS.md`
//! (`cargo run --release -p mmio-bench --bin exp_<id>`), plus criterion
//! benches (`cargo bench -p mmio-bench`).
//!
//! Every binary prints its table to stdout and appends a machine-readable
//! record to `results/<id>.json`.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Where experiment records are written (workspace-relative `results/`).
pub fn results_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("results");
    dir
}

/// Serializes `record` as pretty JSON into `results/<name>.json`.
pub fn write_record<T: Serialize>(name: &str, record: &T) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return; // reporting is best-effort; the stdout table is the output
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(record) {
        let _ = fs::write(&path, json);
    }
}

/// A generic labelled row of floats, the common shape of experiment tables.
#[derive(Serialize, Clone, Debug)]
pub struct Row {
    /// Row label (e.g. the swept parameter).
    pub label: String,
    /// Named values.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Builds a row.
    pub fn new(label: impl Into<String>) -> Row {
        Row {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Adds one named value.
    pub fn push(mut self, key: &str, value: f64) -> Row {
        self.values.push((key.to_string(), value));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_accumulate() {
        let row = Row::new("M=8").push("io", 12.0).push("bound", 4.0);
        assert_eq!(row.values.len(), 2);
        assert_eq!(row.values[1].1, 4.0);
    }

    #[test]
    fn results_dir_points_at_workspace() {
        assert!(results_dir().ends_with("results"));
    }
}
