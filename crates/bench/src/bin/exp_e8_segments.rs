//! E8 — the segment argument (Equations 1–2): for real schedules, every
//! complete segment's meta-boundary satisfies `|δ'(S')| ≥ |S̄|/12`, and the
//! resulting I/O certificate lower-bounds the simulator's measured I/O.
//! Also the `ablation_constants` sweep: how the certificate degrades as
//! the (unoptimized) paper constants are tightened.
//!
//! E8b's measured column runs on `mmio_pebble::sweep` over the shared
//! thread pool, with each cell asserted against its pre-migration I/O.

use mmio_algos::strassen::strassen;
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::{certify_with, CertifyParams};
use mmio_parallel::Pool;
use mmio_pebble::orders::{rank_order, recursive_order};
use mmio_pebble::sweep::{sweep, PolicySpec};

/// Pre-migration measured I/O at each E8b cache size; the pooled sweep must
/// reproduce the serial reference numbers exactly.
const EXPECTED_IO: [(u64, u64); 4] = [(8, 178517), (16, 125579), (32, 95800), (64, 64130)];

fn main() {
    let base = strassen();
    mmio_bench::preflight(&base);
    let g = build_cdag(&base, 5);
    let mut rows = Vec::new();

    println!("E8a: per-segment δ'(S') vs |S̄|/12 (Strassen r=5, M=8)\n");
    for (name, order) in [
        ("recursive", recursive_order(&g)),
        ("rank-by-rank", rank_order(&g)),
    ] {
        let cert = certify_with(&g, 8, &order, CertifyParams::SMALL);
        let complete = cert.analysis.complete_segments;
        let min_ratio = cert
            .analysis
            .segments
            .iter()
            .filter(|s| s.complete)
            .map(|s| s.meta_boundary as f64 / s.counted as f64)
            .fold(f64::INFINITY, f64::min);
        let violations = cert
            .analysis
            .segments
            .iter()
            .filter(|s| s.complete && s.meta_boundary * 12 < s.counted)
            .count();
        println!(
            "  {name:<14} segments {complete:>4}  min δ'/|S̄| {min_ratio:>6.3}  Eq.2 violations {violations}"
        );
        assert_eq!(violations, 0, "Equation 2 must hold on every segment");
        rows.push(
            Row::new(format!("order={name}"))
                .push("segments", complete as f64)
                .push("min_ratio", min_ratio),
        );
    }

    println!("\nE8b: certificate vs measured I/O (recursive order, Belady)\n");
    println!(
        "{:>6} | {:>12} {:>12} {:>8}",
        "M", "certified", "measured", "cover"
    );
    let order = recursive_order(&g);
    let orders: [&[_]; 1] = [&order];
    let ms: Vec<usize> = EXPECTED_IO.iter().map(|&(m, _)| m as usize).collect();
    let pts = sweep(
        &g,
        &orders,
        &[PolicySpec::Belady],
        &ms,
        &Pool::from_env(None),
    );
    for (pt, &(m, expected)) in pts.iter().zip(EXPECTED_IO.iter()) {
        let cert = certify_with(&g, m, &order, CertifyParams::SMALL);
        let measured = pt.stats().io();
        assert_eq!(
            measured, expected,
            "M={m}: sweep I/O diverged from pre-migration value"
        );
        assert!(cert.analysis.certified_io <= measured, "soundness");
        println!(
            "{m:>6} | {:>12} {measured:>12} {:>8.3}",
            cert.analysis.certified_io,
            cert.analysis.certified_io as f64 / measured as f64
        );
        rows.push(
            Row::new(format!("M={m}"))
                .push("certified", cert.analysis.certified_io as f64)
                .push("measured", measured as f64),
        );
    }

    println!("\nE8c: ablation_constants — certificate vs segment threshold (M=8)\n");
    println!(
        "{:>18} | {:>10} {:>12}",
        "(k_mult,thr_mult)", "segments", "certified"
    );
    for (km, tm) in [(2u64, 2u64), (2, 4), (2, 8), (4, 8), (8, 16)] {
        let params = CertifyParams {
            k_multiplier: km,
            threshold_multiplier: tm,
        };
        let cert = certify_with(&g, 8, &order, params);
        println!(
            "{:>18} | {:>10} {:>12}",
            format!("({km},{tm})"),
            cert.analysis.complete_segments,
            cert.analysis.certified_io
        );
    }
    println!("\nLarger thresholds mean fewer, stronger segments; the paper's");
    println!("(72, 36) maximizes per-segment safety at the cost of needing");
    println!("asymptotically large instances — exactly its 'unoptimized constants'.");
    write_record("e8_segments", &rows);
}
