//! E2 — Theorem 1, parallel: CAPS bandwidth versus the two parallel lower
//! bounds (`(n/√M)^{ω₀}·M/P` and the memory-independent `n²/P^{2/ω₀}`),
//! plus distributed-CDAG measurements showing the load-balance hypothesis
//! matters.
//!
//! Expected shape: per-processor words fall like `1/P` in the
//! memory-bound regime and flatten onto the memory-independent floor as
//! `M` grows; the all-on-one assignment beats the floor only by being
//! rank-imbalanced.

use mmio_algos::strassen::strassen;
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::LowerBound;
use mmio_parallel::assign::{all_on_one, cyclic_per_rank};
use mmio_parallel::bandwidth::measure;
use mmio_parallel::caps::simulate;

fn main() {
    let base = strassen();
    mmio_bench::preflight(&base);
    let lb = LowerBound::new(&base);
    let n = 1u64 << 10;
    let mut rows = Vec::new();

    println!("E2a: CAPS bandwidth per processor, n = {n}\n");
    println!(
        "{:>6} {:>10} | {:>12} {:>10} | {:>14} {:>14}",
        "P", "M", "words/proc", "steps", "Ω (n/√M)^ω M/P", "Ω n²/P^(2/ω)"
    );
    for t in 1..=5u32 {
        let p = 7u64.pow(t);
        for m in [n * n / p, 4 * n * n / p, u64::MAX / 4] {
            let run = simulate(&base, n, p, m);
            let b1 = lb.parallel_bandwidth(n, m.min(n * n), p);
            let b2 = lb.memory_independent_bandwidth(n, p);
            let m_str = if m > n * n {
                "∞".to_string()
            } else {
                m.to_string()
            };
            println!(
                "{p:>6} {m_str:>10} | {:>12.0} {:>10} | {b1:>14.0} {b2:>14.0}",
                run.words_per_proc, run.steps
            );
            rows.push(
                Row::new(format!("P={p},M={m_str}"))
                    .push("words", run.words_per_proc)
                    .push("bound_mem", b1)
                    .push("bound_indep", b2),
            );
        }
    }

    println!("\nE2b: distributed-CDAG critical-path words (n = 16, r = 4)\n");
    println!(
        "{:>4} | {:>12} {:>10} | {:>12} {:>10} | {:>14}",
        "P", "cyclic", "balanced", "all-on-one", "balanced", "Ω n²/P^(2/ω)"
    );
    let g = build_cdag(&base, 4);
    for p in [2u32, 4, 8, 16] {
        let cyc = measure(&g, &cyclic_per_rank(&g, p));
        let one = measure(&g, &all_on_one(&g, p));
        println!(
            "{p:>4} | {:>12} {:>10} | {:>12} {:>10} | {:>14.0}",
            cyc.critical_path,
            cyc.rank_balanced,
            one.critical_path,
            one.rank_balanced,
            lb.memory_independent_bandwidth(g.n(), p as u64)
        );
    }
    println!("\nThe imbalanced assignment communicates 0 words — legal, but it");
    println!("violates the per-rank load-balance hypothesis of the memory-");
    println!("independent bound, which is why the hypothesis appears in the theorem.");
    write_record("e2_theorem1_par", &rows);
}
