//! E1 — Theorem 1, sequential: measured I/O of the communication-optimal
//! recursive schedule versus the `(n/√M)^{ω₀}·M` lower bound, swept over
//! `n` and `M`.
//!
//! Expected shape: the measured/bound ratio is bounded above and below by
//! constants across the sweep (the bound is tight, attained by [3]'s
//! schedule), and for fixed `M` the measured I/O grows like `n^{ω₀}`.

use mmio_algos::strassen::strassen;
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::LowerBound;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Belady;
use mmio_pebble::AutoScheduler;

fn main() {
    let base = strassen();
    mmio_bench::preflight(&base);
    let lb = LowerBound::new(&base);
    let mut rows = Vec::new();
    println!("E1: sequential I/O vs Theorem 1 bound (Strassen, recursive schedule, Belady)\n");
    println!(
        "{:>6} {:>6} | {:>12} {:>12} {:>8}",
        "n", "M", "measured", "bound", "ratio"
    );
    for r in 3..=6u32 {
        let g = build_cdag(&base, r);
        let order = recursive_order(&g);
        let n = g.n();
        for m in [8u64, 32, 128, 512] {
            if m * 4 > n * n {
                continue; // outside the M = o(n²) regime
            }
            let io = AutoScheduler::new(&g, m as usize)
                .run(&order, &mut Belady)
                .io();
            let bound = lb.sequential_io(n, m);
            let ratio = io as f64 / bound;
            println!("{n:>6} {m:>6} | {io:>12} {bound:>12.0} {ratio:>8.2}");
            rows.push(
                Row::new(format!("n={n},M={m}"))
                    .push("measured", io as f64)
                    .push("bound", bound)
                    .push("ratio", ratio),
            );
        }
    }
    // Growth in n at fixed M: successive ratios ≈ 7 (= 2^ω₀).
    println!("\nGrowth factors at fixed M=32 when n doubles (expect ≈ 7):");
    let mut prev: Option<u64> = None;
    for r in 3..=6u32 {
        let g = build_cdag(&base, r);
        let order = recursive_order(&g);
        let io = AutoScheduler::new(&g, 32).run(&order, &mut Belady).io();
        if let Some(p) = prev {
            println!(
                "  n {} → {}: ×{:.2}",
                g.n() / 2,
                g.n(),
                io as f64 / p as f64
            );
        }
        prev = Some(io);
    }
    write_record("e1_theorem1_seq", &rows);
}
