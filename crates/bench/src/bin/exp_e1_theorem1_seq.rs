//! E1 — Theorem 1, sequential: measured I/O of the communication-optimal
//! recursive schedule versus the `(n/√M)^{ω₀}·M` lower bound, swept over
//! `n` and `M`.
//!
//! Expected shape: the measured/bound ratio is bounded above and below by
//! constants across the sweep (the bound is tight, attained by [3]'s
//! schedule), and for fixed `M` the measured I/O grows like `n^{ω₀}`.
//!
//! The grid runs on `mmio_pebble::sweep` over the shared thread pool
//! (`MMIO_THREADS` controls width; results are identical at any width), and
//! every grid point is asserted against its pre-migration I/O count — the
//! pooled fast engine must reproduce the serial reference numbers exactly.

use mmio_algos::strassen::strassen;
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::LowerBound;
use mmio_parallel::Pool;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::sweep::{sweep, PolicySpec};

const MS: [usize; 4] = [8, 32, 128, 512];

/// Pre-migration I/O counts (naive serial engine) at every reported grid
/// point; the sweep must reproduce them exactly.
const EXPECTED_IO: &[(u64, u64, u64)] = &[
    // (n, M, io)
    (8, 8, 2877),
    (16, 8, 23536),
    (16, 32, 11757),
    (32, 8, 178517),
    (32, 32, 95800),
    (32, 128, 47289),
    (64, 8, 1304856),
    (64, 32, 725573),
    (64, 128, 384940),
    (64, 512, 189417),
];

fn main() {
    let base = strassen();
    mmio_bench::preflight(&base);
    let lb = LowerBound::new(&base);
    let pool = Pool::from_env(None);
    let mut rows = Vec::new();
    println!("E1: sequential I/O vs Theorem 1 bound (Strassen, recursive schedule, Belady)\n");
    println!(
        "{:>6} {:>6} | {:>12} {:>12} {:>8}",
        "n", "M", "measured", "bound", "ratio"
    );
    // One sweep per graph size; M=32 is re-used below for the growth check.
    let mut io_at_m32: Vec<u64> = Vec::new();
    for r in 3..=6u32 {
        let g = build_cdag(&base, r);
        let order = recursive_order(&g);
        let orders: [&[_]; 1] = [&order];
        let n = g.n();
        let pts = sweep(&g, &orders, &[PolicySpec::Belady], &MS, &pool);
        io_at_m32.push(pts[1].stats().io());
        for (pt, &m) in pts.iter().zip(MS.iter()) {
            let m = m as u64;
            if m * 4 > n * n {
                continue; // outside the M = o(n²) regime
            }
            let io = pt.stats().io();
            let expected = EXPECTED_IO
                .iter()
                .find(|&&(en, em, _)| en == n && em == m)
                .map(|&(_, _, eio)| eio)
                .expect("every reported grid point has a pinned value");
            assert_eq!(
                io, expected,
                "n={n},M={m}: sweep I/O diverged from pre-migration value"
            );
            let bound = lb.sequential_io(n, m);
            let ratio = io as f64 / bound;
            println!("{n:>6} {m:>6} | {io:>12} {bound:>12.0} {ratio:>8.2}");
            rows.push(
                Row::new(format!("n={n},M={m}"))
                    .push("measured", io as f64)
                    .push("bound", bound)
                    .push("ratio", ratio),
            );
        }
    }
    // Growth in n at fixed M: successive ratios ≈ 7 (= 2^ω₀).
    println!("\nGrowth factors at fixed M=32 when n doubles (expect ≈ 7):");
    for (i, w) in io_at_m32.windows(2).enumerate() {
        let n = 8u64 << i; // r = 3 + i
        println!("  n {} → {}: ×{:.2}", n, n * 2, w[1] as f64 / w[0] as f64);
    }
    write_record("e1_theorem1_seq", &rows);
}
