//! E15 — the Hopcroft–Kerr family (paper's reference [11]): rectangular
//! rank, square-ization, and the full routing pipeline on the resulting
//! ⟨12,12,12;1331⟩ base graph.

use mmio_algos::rect::{classical_rect, hopcroft_kerr_square, rect_2x2x3};
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_cdag::connectivity::classify;
use mmio_core::theorem1::LowerBound;
use mmio_core::theorem2::InOutRouting;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rows = Vec::new();
    println!("E15: the Hopcroft–Kerr family\n");

    // Pre-flight the square registry bases used below. The ⟨12,12,12;1331⟩
    // square itself is exempt: its single-use violations (MMIO-A007) are part
    // of what this experiment studies, and the O(b²) duplicate-row scan is
    // slow at b = 1331.
    mmio_bench::preflight(&mmio_algos::strassen::strassen());
    mmio_bench::preflight(&mmio_algos::laderman::laderman());

    // Rectangular ranks.
    let hk = rect_2x2x3();
    let cl = classical_rect(2, 2, 3);
    println!(
        "⟨2,2,3⟩: classical rank {}, direct-sum (Strassen ⊕ col) rank {} — the HK optimum",
        cl.b(),
        hk.b()
    );
    assert_eq!(hk.verify_correctness(), Ok(()));

    // The squarized fast algorithm.
    let sq = hopcroft_kerr_square();
    let props = classify(&sq);
    println!(
        "\nsquarized: ⟨{0},{0},{0};{1}⟩, ω₀ = {2:.4} (< log₂7 = {3:.4}? {4})",
        sq.n0(),
        sq.b(),
        props.omega0,
        7f64.log2(),
        props.omega0 < 7f64.log2()
    );
    println!(
        "structure: dec components {}, multiple copying {}, single-use {}",
        props.dec_components, props.multiple_copying, props.single_use_assumption
    );
    let mut rng = StdRng::seed_from_u64(15);
    assert!(mmio_algos::verify::verify_base_graph_randomized(
        &sq, 3, &mut rng
    ));
    println!("randomized correctness check: passed (3 exact-rational samples)");

    // Routing pipeline at k = 1.
    let g = build_cdag(&sq, 1);
    println!("\nG₁: {} vertices, {} edges", g.n_vertices(), g.n_edges());
    match InOutRouting::new(&g) {
        Some(routing) => {
            let stats = routing.verify();
            println!(
                "Routing Theorem: bound {} | max vertex {} | max meta {} → {}",
                routing.theorem2_bound(),
                stats.max_vertex_hits,
                stats.max_meta_hits,
                if stats.is_m_routing(routing.theorem2_bound()) {
                    "VERIFIED"
                } else {
                    "VIOLATED"
                }
            );
            rows.push(
                Row::new("hk12-routing")
                    .push("bound", routing.theorem2_bound() as f64)
                    .push("max_vertex", stats.max_vertex_hits as f64),
            );
        }
        None => println!("Routing Theorem: no Hall matching (hypotheses fail)"),
    }

    // Lower-bound formulas across the library's exponents.
    println!("\nΩ-formula comparison at n = 2^12, M = 2^10:");
    let n = 1u64 << 12;
    let m = 1u64 << 10;
    for base in [
        mmio_algos::strassen::strassen(),
        mmio_algos::laderman::laderman(),
        sq.clone(),
        mmio_algos::classical::classical(2),
    ] {
        let lb = LowerBound::new(&base);
        println!(
            "  {:<18} ω₀ = {:.4} → Ω = {:>14.3e}",
            base.name(),
            base.omega0(),
            lb.sequential_io(n, m)
        );
    }
    println!("\nLower exponent ⇒ asymptotically less required I/O: the ordering");
    println!("strassen < laderman < hopcroft-kerr-12 < classical is preserved");
    println!("by the formulas, exactly as ω₀ predicts.");
    write_record("e15_hopcroft_kerr", &rows);
}
