//! P4 — the serve tier under load: cold-cache vs warm-cache throughput and
//! latency over the Unix socket, at 1/4/8 concurrent clients, written to
//! `BENCH_serve.json` at the workspace root (the checked-in perf record;
//! CI re-runs a reduced workload and uploads its own copy as an artifact).
//!
//! Every response received during the load run is checked byte-for-byte
//! against the batch renderers in `mmio_serve::ops` — the serve tier's
//! core contract is that caching, concurrency, and queueing never change
//! a single byte of output — and the binary **exits nonzero on any
//! divergence**. The warm pass must also be served overwhelmingly from
//! the memo tier (`cached` flags checked), so a cache regression that
//! silently recomputes everything fails here too.
//!
//! `MMIO_BENCH_SMOKE=1` runs a reduced workload (CI's serve-faults job):
//! fewer requests per client, same checks, same output schema.

use mmio_parallel::Pool;
use mmio_serve::engine::{Engine, EngineConfig};
use mmio_serve::faults::NoFaults;
use mmio_serve::ops;
use mmio_serve::protocol::{Op, Request, Status};
use mmio_serve::{Client, Server};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize, Clone)]
struct LoadRecord {
    phase: String,
    clients: usize,
    requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
    mean_latency_us: f64,
    max_latency_us: f64,
    cache_hit_fraction: f64,
}

#[derive(Serialize)]
struct BenchRecord {
    experiment: &'static str,
    host_cores: usize,
    smoke: bool,
    /// Requests issued per client per phase.
    per_client: usize,
    loads: Vec<LoadRecord>,
    /// Byte-identity vs the batch renderers, across every response of
    /// every phase.
    divergences: u64,
    determinism: &'static str,
}

/// The mixed request stream one client plays, cycling by request index.
/// Everything here is cacheable, so the warm pass hits the memo tier.
fn op_for(i: u64) -> Op {
    match i % 3 {
        0 => Op::Certify {
            algo: "strassen".into(),
            r: 2,
            m: 49,
        },
        1 => Op::Analyze {
            algo: "winograd".into(),
            r: 1,
        },
        _ => Op::Sweep {
            algo: "strassen".into(),
            r: 1,
            ms: vec![8, 16, 64],
        },
    }
}

/// The batch-CLI rendering of [`op_for`]`(i)` — the byte-identity oracle.
fn batch_payload(i: u64) -> String {
    let pool = Pool::serial();
    match op_for(i) {
        Op::Certify { algo, r, m } => ops::certify_text(
            &ops::resolve_registry(&algo).unwrap(),
            r,
            m,
            ops::ViewMode::Auto,
            &pool,
        ),
        Op::Analyze { algo, r } => ops::analyze_json(&ops::resolve_registry(&algo).unwrap(), r).0,
        Op::Sweep { algo, r, ms } => {
            ops::sweep_json(&ops::resolve_registry(&algo).unwrap(), r, &ms, &pool)
        }
        _ => unreachable!("op_for emits cacheable ops only"),
    }
}

struct PhaseResult {
    wall: Duration,
    latencies_us: Vec<f64>,
    hits: usize,
    divergences: u64,
}

/// Runs one load phase: `clients` concurrent connections, `per_client`
/// requests each, every response checked against the oracle.
fn run_phase(
    sock: &std::path::Path,
    clients: usize,
    per_client: usize,
    oracle: &Arc<Vec<String>>,
) -> PhaseResult {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let sock = sock.to_path_buf();
            let oracle = Arc::clone(oracle);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_retry(&sock, Duration::from_secs(10)).expect("connect");
                let mut latencies = Vec::with_capacity(per_client);
                let (mut hits, mut divergences) = (0usize, 0u64);
                for i in 0..per_client as u64 {
                    let req = Request {
                        id: c as u64 * 1_000_000 + i,
                        deadline_ms: Some(120_000),
                        op: op_for(i),
                    };
                    let t = Instant::now();
                    let resp = client.call(&req).expect("response");
                    latencies.push(t.elapsed().as_secs_f64() * 1e6);
                    if resp.status != Status::Ok {
                        eprintln!("DIVERGENCE: non-ok response {resp:?}");
                        divergences += 1;
                        continue;
                    }
                    if resp.cached {
                        hits += 1;
                    }
                    if resp.payload.as_deref() != Some(oracle[(i % 3) as usize].as_str()) {
                        eprintln!(
                            "DIVERGENCE: client {c} request {i}: payload differs from batch CLI"
                        );
                        divergences += 1;
                    }
                }
                (latencies, hits, divergences)
            })
        })
        .collect();
    let mut latencies_us = Vec::new();
    let (mut hits, mut divergences) = (0usize, 0u64);
    for h in handles {
        let (l, ph, pd) = h.join().expect("client thread");
        latencies_us.extend(l);
        hits += ph;
        divergences += pd;
    }
    PhaseResult {
        wall: t0.elapsed(),
        latencies_us,
        hits,
        divergences,
    }
}

fn main() {
    let smoke = std::env::var("MMIO_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let per_client = if smoke { 12 } else { 60 };

    // Pre-flight: the algorithms the stream exercises must lint clean.
    mmio_bench::preflight(&mmio_algos::strassen::strassen());
    mmio_bench::preflight(&mmio_algos::strassen::winograd());

    // The oracle: one batch rendering per op in the cycle.
    let oracle = Arc::new((0..3).map(batch_payload).collect::<Vec<_>>());

    let cache_dir = std::env::temp_dir().join(format!("mmio_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let sock = std::env::temp_dir().join(format!("mmio_bench_serve_{}.sock", std::process::id()));
    let (engine, _) = Engine::start(
        EngineConfig {
            workers: 4,
            queue_cap: 256,
            max_spawns: 16,
            default_deadline: Duration::from_secs(120),
            cache_dir: Some(cache_dir.clone()),
            pool_threads: 1,
        },
        Arc::new(NoFaults),
    )
    .expect("engine start");
    let server = Server::bind(&sock, Arc::new(engine)).expect("bind");
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    println!(
        "P4: serve tier under load ({per_client} requests/client, mixed certify/analyze/sweep)\n"
    );
    println!(
        "{:<6} {:>8} {:>9} {:>9} {:>13} {:>13} {:>13} {:>6}",
        "phase", "clients", "requests", "wall ms", "req/s", "mean lat µs", "max lat µs", "hit%"
    );

    let mut loads = Vec::new();
    let mut divergences = 0u64;
    // Cold phase first (1 client, empty cache), then warm phases at rising
    // concurrency — the cache was fully populated by the cold pass, so the
    // warm phases measure the memo-tier hot path.
    let phases: &[(&str, usize)] = &[("cold", 1), ("warm", 1), ("warm", 4), ("warm", 8)];
    for &(phase, clients) in phases {
        let result = run_phase(&sock, clients, per_client, &oracle);
        divergences += result.divergences;
        let requests = clients * per_client;
        let wall_ms = result.wall.as_secs_f64() * 1e3;
        let throughput = requests as f64 / result.wall.as_secs_f64();
        let mean = result.latencies_us.iter().sum::<f64>() / result.latencies_us.len() as f64;
        let max = result.latencies_us.iter().cloned().fold(0.0, f64::max);
        let hit_frac = result.hits as f64 / requests as f64;
        if phase == "warm" && hit_frac < 0.9 {
            eprintln!(
                "DIVERGENCE: warm phase ({clients} clients) hit fraction {hit_frac:.2} < 0.9 — \
                 the memo tier is not serving"
            );
            divergences += 1;
        }
        println!(
            "{phase:<6} {clients:>8} {requests:>9} {wall_ms:>9.1} {throughput:>13.0} \
             {mean:>13.1} {max:>13.1} {:>5.0}%",
            hit_frac * 100.0
        );
        loads.push(LoadRecord {
            phase: phase.to_string(),
            clients,
            requests,
            wall_ms,
            throughput_rps: throughput,
            mean_latency_us: mean,
            max_latency_us: max,
            cache_hit_fraction: hit_frac,
        });
    }

    // Graceful shutdown over the wire.
    let mut closer = Client::connect_retry(&sock, Duration::from_secs(5)).expect("connect");
    closer
        .call(&Request {
            id: 0,
            deadline_ms: None,
            op: Op::Shutdown,
        })
        .expect("shutdown");
    server_thread.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let record = BenchRecord {
        experiment: "perf_serve",
        host_cores,
        smoke,
        per_client,
        loads,
        divergences,
        determinism: if divergences == 0 {
            "identical"
        } else {
            "DIVERGED"
        },
    };
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_serve.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&record).expect("serializable"),
    )
    .expect("write BENCH_serve.json");
    println!("\nwrote {}", path.display());

    assert_eq!(
        divergences, 0,
        "serve responses diverged from the batch CLI (see stderr)"
    );
}
