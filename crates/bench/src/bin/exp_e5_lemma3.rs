//! E5 — Lemma 3: the `2n₀^k`-routing of chains for all guaranteed
//! dependencies, built from the Hall matching and lifted recursively
//! (Claim 2). Includes the `ablation_routing` comparison: the same chains
//! with a naive first-admissible middle-vertex table instead of the Hall
//! matching.
//!
//! Expected shape: Hall-matched chains meet `2n₀^k`; the naive table
//! overloads middle vertices by a growing factor — the matching is what
//! makes the bound hold.

use mmio_algos::laderman::laderman;
use mmio_algos::strassen::{strassen, winograd};
use mmio_bench::{write_record, Row};
use mmio_cdag::base::Side;
use mmio_cdag::build::build_cdag;
use mmio_core::chains::ChainRouter;
use mmio_core::hall::MatchingGraph;
use mmio_core::routing::VertexHitCounter;

fn main() {
    let mut rows = Vec::new();
    println!("E5: Lemma 3 chain routings (Hall vs naive middle vertices)\n");
    println!(
        "{:<12} {:>2} | {:>10} | {:>8} {:>10} | {:>12}",
        "base", "k", "deps", "bound", "hall max", "naive max"
    );
    for (base, max_k) in [(strassen(), 4u32), (winograd(), 3), (laderman(), 2)] {
        mmio_bench::preflight(&base);
        for k in 1..=max_k {
            let g = build_cdag(&base, k);
            let hall = ChainRouter::new(&g).expect("Hall matching exists");
            let mut counter = VertexHitCounter::new(&g, None);
            hall.route_all(&mut counter);
            let hall_stats = counter.stats();
            assert!(hall_stats.is_m_routing(hall.lemma3_bound()));

            let naive = ChainRouter::with_tables(
                &g,
                MatchingGraph::new(&base, Side::A).greedy_first_table(),
                MatchingGraph::new(&base, Side::B).greedy_first_table(),
            );
            let mut counter = VertexHitCounter::new(&g, None);
            naive.route_all(&mut counter);
            let naive_stats = counter.stats();

            println!(
                "{:<12} {k:>2} | {:>10} | {:>8} {:>10} | {:>12}",
                base.name(),
                hall_stats.paths,
                hall.lemma3_bound(),
                hall_stats.max_vertex_hits,
                naive_stats.max_vertex_hits
            );
            rows.push(
                Row::new(format!("{},k={k}", base.name()))
                    .push("bound", hall.lemma3_bound() as f64)
                    .push("hall_max", hall_stats.max_vertex_hits as f64)
                    .push("naive_max", naive_stats.max_vertex_hits as f64),
            );
        }
    }
    println!("\nThe naive assignment's overload factor grows with k — the Hall");
    println!("matching (Lemma 5 + Theorem 3) is load-bearing, not decorative.");
    write_record("e5_lemma3", &rows);
}
