//! P5 — the flat SoA distributed simulator against the dense reference,
//! and strong scaling against the memory-independent bound.
//!
//! Three measurements, written to `BENCH_distsim.json` at the workspace
//! root (the checked-in perf record; CI re-runs a reduced workload and
//! uploads its own copy as an artifact), extending the perf trajectory of
//! `BENCH_pebble.json` and `BENCH_implicit.json`:
//!
//! 1. **Equivalence contract**: `distsim::reference` vs the SoA engine —
//!    claimed totals, per-rank counters, and the full event stream — over
//!    a registry × depth × rank-count × assignment grid, plus serial vs
//!    pooled SoA byte-identity under a contended ring model.
//! 2. **Headline speedup**: on the largest instance both engines can run
//!    (the reference holds O(P·V) state), min-of-3 wall clock of SoA
//!    (pooled) vs reference; must exceed 10× outside smoke mode.
//! 3. **Strong scaling**: untraced SoA runs on the implicit `IndexView`
//!    at P = 64…4096 ranks on a 2D torus, recording per-rank
//!    communication against the paper's memory-independent bound
//!    `Ω(n²/P^{2/ω₀})` (BDHLS), the α-β-γ contended makespan, and the
//!    detected perfect-strong-scaling range (the maximal prefix of the
//!    P grid where `makespan·P` stays within 2× of its P₀ value).
//!
//! The binary exits nonzero on any reference/SoA or serial/parallel
//! divergence. `MMIO_BENCH_SMOKE=1` runs a reduced workload (CI's
//! bench-smoke job): smaller grids, same checks, same output schema.

use mmio_cdag::build::build_cdag;
use mmio_cdag::{Cdag, CdagView, IndexView};
use mmio_core::theorem1::LowerBound;
use mmio_parallel::assign::{
    all_on_one, block_per_rank, by_top_subproblem, cyclic_per_rank, Assignment,
};
use mmio_parallel::distsim::{reference, simulate_on, simulate_traced_on, MachineModel, Topology};
use mmio_parallel::Pool;
use mmio_pebble::orders::recursive_order;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct HeadlineRecord {
    r: u32,
    p: u32,
    m: usize,
    vertices: usize,
    total_words: u64,
    reference_ms: f64,
    soa_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ScaleRecord {
    p: u32,
    total_words: u64,
    critical_path_words: u64,
    makespan: u64,
    /// `n² / P^{2/ω₀}` — the memory-independent per-rank bandwidth bound.
    bound: f64,
    /// Observed per-rank communication over the bound.
    bound_ratio: f64,
    /// `makespan(P₀)·P₀ / (makespan(P)·P)`: 1.0 is perfect strong scaling.
    scaling_efficiency: f64,
    wall_ms: f64,
}

#[derive(Serialize)]
struct ScalePhase {
    algo: &'static str,
    r: u32,
    n: u64,
    vertices: usize,
    assign: &'static str,
    topology: String,
    points: Vec<ScaleRecord>,
    /// Largest P in the grid whose scaling efficiency is still ≥ 0.5
    /// (with every smaller P also ≥ 0.5).
    perfect_scaling_up_to: u32,
}

#[derive(Serialize)]
struct BenchRecord {
    experiment: &'static str,
    host_cores: usize,
    smoke: bool,
    equivalence_instances: usize,
    headline: HeadlineRecord,
    scale: ScalePhase,
    determinism: &'static str,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn strategies(g: &Cdag, p: u32) -> Vec<(&'static str, Assignment)> {
    vec![
        ("cyclic_per_rank", cyclic_per_rank(g, p)),
        ("block_per_rank", block_per_rank(g, p)),
        ("by_top_subproblem", by_top_subproblem(g, p)),
        ("all_on_one", all_on_one(g, p)),
    ]
}

fn main() {
    let smoke = std::env::var("MMIO_BENCH_SMOKE").map(|v| v == "1") == Ok(true);
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut determinism_ok = true;
    let pool = Pool::from_env(None);

    // --- 1. Equivalence contract -------------------------------------------
    let bases = mmio_algos::registry::all_base_graphs();
    let rs: std::ops::RangeInclusive<u32> = if smoke { 1..=1 } else { 1..=2 };
    let ps: &[u32] = if smoke { &[4] } else { &[4, 7, 16] };
    let mut equivalence_instances = 0usize;
    for base in &bases {
        mmio_bench::preflight(base);
        for r in rs.clone() {
            let g = build_cdag(base, r);
            let order = recursive_order(&g);
            let need = g.max_indegree() + 1;
            let m = need.max(16);
            for &p in ps {
                for (name, a) in strategies(&g, p) {
                    let ctx = format!("{} r={r} p={p} {name}", base.name());
                    let mm = Some(MachineModel::new(Topology::Ring, 2, 1, 1));
                    let fast = simulate_traced_on(&g, &a, &order, m, mm, &Pool::serial());
                    let slow = reference::simulate_traced(&g, &a, &order, m);
                    if fast.claimed != slow.claimed
                        || fast.sent != slow.sent
                        || fast.received != slow.received
                        || fast.events != slow.events
                    {
                        eprintln!("DIVERGENCE: SoA vs reference at {ctx}");
                        determinism_ok = false;
                    }
                    let pooled = simulate_traced_on(&g, &a, &order, m, mm, &pool);
                    if pooled.claimed != fast.claimed
                        || pooled.events != fast.events
                        || pooled.contention != fast.contention
                    {
                        eprintln!("DIVERGENCE: pooled vs serial SoA at {ctx}");
                        determinism_ok = false;
                    }
                    equivalence_instances += 1;
                }
            }
        }
    }
    println!(
        "P5a: equivalence contract — {equivalence_instances} instances \
         (totals + per-rank counters + event streams + contended rounds): {}",
        if determinism_ok {
            "identical"
        } else {
            "DIVERGED"
        }
    );

    // --- 2. Headline speedup -----------------------------------------------
    let strassen = mmio_algos::strassen::strassen();
    let (head_r, head_p) = if smoke { (3u32, 64u32) } else { (4, 512) };
    let g = build_cdag(&strassen, head_r);
    let order = recursive_order(&g);
    let need = g.max_indegree() + 1;
    let head_m = need.max(64);
    let a = cyclic_per_rank(&g, head_p);
    let iters = 3;
    let mut reference_ms = f64::INFINITY;
    let mut ref_run = None;
    for _ in 0..iters {
        let t = Instant::now();
        let run = reference::simulate(&g, &a, &order, head_m);
        reference_ms = reference_ms.min(ms(t));
        ref_run = Some(run);
    }
    let mut soa_ms = f64::INFINITY;
    let mut soa_run = None;
    for _ in 0..iters {
        let t = Instant::now();
        let out = simulate_on(&g, &a, &order, head_m, None, &pool);
        soa_ms = soa_ms.min(ms(t));
        soa_run = Some(out.run);
    }
    let ref_run = ref_run.unwrap();
    let soa_run = soa_run.unwrap();
    if soa_run != ref_run {
        eprintln!("DIVERGENCE: headline totals differ: {soa_run:?} vs {ref_run:?}");
        determinism_ok = false;
    }
    let speedup = reference_ms / soa_ms;
    println!(
        "\nP5b: headline — strassen r={head_r}, P={head_p}, M={head_m} \
         ({} vertices): reference {reference_ms:.2} ms, SoA {soa_ms:.2} ms \
         ({speedup:.2}x, {} threads)",
        g.n_vertices(),
        pool.threads()
    );
    let headline = HeadlineRecord {
        r: head_r,
        p: head_p,
        m: head_m,
        vertices: g.n_vertices(),
        total_words: soa_run.total_words,
        reference_ms,
        soa_ms,
        speedup,
    };

    // --- 3. Strong scaling on the implicit view -----------------------------
    let scale_r = if smoke { 3u32 } else { 5 };
    let p_grid: &[u32] = if smoke {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let view = IndexView::from_base(&strassen, scale_r);
    let order = recursive_order(&view);
    let need = view.max_indegree() + 1;
    let m = need.max(16);
    let n = mmio_cdag::index::pow(strassen.n0(), scale_r);
    let lb = LowerBound::new(&strassen);
    println!(
        "\nP5c: strong scaling — strassen r={scale_r} (n={n}, {} vertices), \
         cyclic assignment, 2D torus, α=1 β=1 γ=1\n",
        view.n_vertices()
    );
    println!(
        "{:>6} | {:>12} {:>12} {:>12} | {:>10} {:>8} | {:>8} {:>9}",
        "P", "words", "crit path", "makespan", "Ω bound", "ratio", "eff", "wall ms"
    );
    let mut points: Vec<ScaleRecord> = Vec::new();
    let mut base_makespan_p = 0f64;
    let mut topology = String::new();
    for &p in p_grid {
        let a = cyclic_per_rank(&view, p);
        let topo = Topology::parse("torus", p).expect("square P grid");
        if topology.is_empty() {
            topology = format!("{topo:?}");
        }
        let mm = Some(MachineModel::new(topo, 1, 1, 1));
        let t = Instant::now();
        let out = simulate_on(&view, &a, &order, m, mm, &pool);
        let wall_ms = ms(t);
        let c = out.contention.expect("machine model attached");
        let bound = lb.memory_independent_bandwidth(n, p as u64);
        let bound_ratio = out.run.critical_path_words as f64 / bound;
        if base_makespan_p == 0.0 {
            base_makespan_p = c.makespan as f64 * p_grid[0] as f64;
        }
        let scaling_efficiency = base_makespan_p / (c.makespan as f64 * p as f64);
        println!(
            "{:>6} | {:>12} {:>12} {:>12} | {:>10.1} {:>7.1}x | {:>8.3} {:>9.1}",
            p,
            out.run.total_words,
            out.run.critical_path_words,
            c.makespan,
            bound,
            bound_ratio,
            scaling_efficiency,
            wall_ms
        );
        points.push(ScaleRecord {
            p,
            total_words: out.run.total_words,
            critical_path_words: out.run.critical_path_words,
            makespan: c.makespan,
            bound,
            bound_ratio,
            scaling_efficiency,
            wall_ms,
        });
    }
    let perfect_scaling_up_to = points
        .iter()
        .take_while(|pt| pt.scaling_efficiency >= 0.5)
        .map(|pt| pt.p)
        .last()
        .unwrap_or(0);
    println!("\nperfect strong scaling (efficiency ≥ 0.5) holds up to P = {perfect_scaling_up_to}");
    let scale = ScalePhase {
        algo: "strassen",
        r: scale_r,
        n,
        vertices: CdagView::n_vertices(&view),
        assign: "cyclic_per_rank",
        topology,
        points,
        perfect_scaling_up_to,
    };

    // --- Record -------------------------------------------------------------
    let record = BenchRecord {
        experiment: "perf_distsim",
        host_cores,
        smoke,
        equivalence_instances,
        headline,
        scale,
        determinism: if determinism_ok {
            "identical"
        } else {
            "DIVERGED"
        },
    };
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_distsim.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&record).expect("serializable"),
    )
    .expect("write BENCH_distsim.json");
    println!("\nwrote {}", path.display());

    assert!(
        determinism_ok,
        "reference/SoA or serial/parallel check diverged (see stderr)"
    );
    if !smoke {
        assert!(
            speedup >= 10.0,
            "SoA engine must be ≥10x over the reference on the largest shared \
             instance (got {speedup:.2}x)"
        );
    }
}
