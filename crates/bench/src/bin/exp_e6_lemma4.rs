//! E6 — Lemma 4: the chain-concatenation scheme uses every guaranteed
//! dependence exactly `3·n₀^k` times, verified exhaustively over all
//! `2·n₀^{4k}` input–output pairs.

use mmio_bench::{write_record, Row};
use mmio_core::lemma4::verify_usage_bound;

fn main() {
    let mut rows = Vec::new();
    println!("E6: Lemma 4 dependence-usage counts\n");
    println!(
        "{:>8} | {:>12} | {:>12} {:>10}",
        "n₀^k", "pairs", "max usage", "3·n₀^k"
    );
    for nk in [2u64, 3, 4, 8, 9, 16] {
        let max = verify_usage_bound(nk);
        let pairs = 2 * nk.pow(4);
        println!("{nk:>8} | {pairs:>12} | {max:>12} {:>10}", 3 * nk);
        assert_eq!(max, 3 * nk, "Lemma 4's count is exact");
        rows.push(
            Row::new(format!("nk={nk}"))
                .push("max_usage", max as f64)
                .push("bound", (3 * nk) as f64),
        );
    }
    println!("\nEvery guaranteed dependence is used exactly 3·n₀^k times — the");
    println!("\"odd use of j as a row index\" (paper Figure 6) equidistributes");
    println!("the middle chains perfectly.");
    write_record("e6_lemma4", &rows);
}
