//! P1 — the transported-routing engine against the naive per-copy path.
//!
//! Three measurements, written to `BENCH_routing.json` at the workspace
//! root (the checked-in perf record; CI re-runs a reduced workload and
//! uploads its own copy as an artifact):
//!
//! 1. **Transport sweep** (`r ≥ 3`): verify the Routing Theorem's routing
//!    inside every one of the `b^{r-k}` Fact-1 copies of `G_k` in `G_r` —
//!    baseline = the pre-engine code path (re-derive the routing per copy:
//!    fresh `G_k`, fresh Hall matchings, one heap-allocated `Vec` per path,
//!    per-vertex `local_to_global` transport), engine = one memoized
//!    [`RoutingClass`] transported through a bulk translation table, at
//!    1/2/4/8 worker threads. Both sides do the *same* verification work
//!    (global edge re-walk + hit counting); the binary exits nonzero if
//!    their results — or the engine's results across thread counts —
//!    disagree.
//! 2. **Memoization flatness**: engine wall-clock per copy as the copy
//!    count grows `7 → 49 → 343` (class construction is paid once, so the
//!    per-copy cost must stay ~flat while the baseline's includes a full
//!    re-derivation each time).
//! 3. **Analyze-all**: the `mmio analyze all` workload (base lints +
//!    schedule audit + routing audit per registry algorithm) serial vs
//!    pooled over targets.
//!
//! `MMIO_BENCH_SMOKE=1` runs a reduced workload (CI's bench-smoke job):
//! smaller sweeps, same determinism checks, same output schema.

use mmio_algos::registry::all_base_graphs;
use mmio_algos::strassen::{strassen, winograd};
use mmio_cdag::build::build_cdag;
use mmio_cdag::fact1::Subcomputation;
use mmio_cdag::{BaseGraph, Cdag, MetaVertices};
use mmio_core::deps::{unpack_entry, DepSide};
use mmio_core::routing::VertexHitCounter;
use mmio_core::theorem2::InOutRouting;
use mmio_core::transport::{verify_transported, RoutingClass, RoutingMemo, TransportReport};
use mmio_parallel::Pool;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct SweepRecord {
    algo: String,
    k: u32,
    r: u32,
    copies: u64,
    paths_per_copy: u64,
    baseline_ms: f64,
    /// Engine wall-clock at 1/2/4/8 worker threads (class construction
    /// included), in sweep order.
    engine_ms: Vec<(String, f64)>,
    /// baseline / engine@4 — the headline end-to-end speedup.
    speedup_4t: f64,
}

#[derive(Serialize)]
struct FlatnessRecord {
    r: u32,
    copies: u64,
    class_build_ms: f64,
    transport_ms: f64,
    transport_us_per_copy: f64,
}

#[derive(Serialize)]
struct BenchRecord {
    experiment: &'static str,
    /// Cores visible to the process when the record was produced; thread
    /// scaling rows are only meaningful when this exceeds 1.
    host_cores: usize,
    smoke: bool,
    transport_sweep: Vec<SweepRecord>,
    memoization_flatness: Vec<FlatnessRecord>,
    analyze_all_serial_ms: f64,
    analyze_all_pool4_ms: f64,
    determinism: &'static str,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// The pre-engine verification path, preserved verbatim as the baseline:
/// for every copy, rebuild `G_k`, re-derive the Hall matchings and chain
/// router, materialize each path as its own `Vec`, transport it vertex by
/// vertex, and re-walk the transported edges against `G_r`.
fn baseline_sweep(g: &Cdag, base: &BaseGraph, k: u32) -> TransportReport {
    let copies = Subcomputation::count(g, k);
    let (mut max_v, mut max_m, mut violations) = (0u64, 0u64, 0u64);
    let (mut paths_per_copy, mut bound) = (0u64, 0u64);
    let mut uniform = true;
    let mut first: Option<(u64, u64)> = None;
    for prefix in 0..copies {
        let gk = build_cdag(base, k);
        let routing = InOutRouting::new(&gk).expect("Hall matching exists");
        let meta = MetaVertices::compute(&gk);
        let sub = Subcomputation::new(g, k, prefix);
        let mut counter = VertexHitCounter::new(&gk, Some(&meta));
        let (n0, ak) = (base.n0(), mmio_cdag::index::pow(base.a(), k));
        for side in [DepSide::A, DepSide::B] {
            for in_e in 0..ak {
                for out_e in 0..ak {
                    let (ir, ic) = unpack_entry(in_e, n0, k);
                    let (or_, oc) = unpack_entry(out_e, n0, k);
                    let path = routing.path(side, ir, ic, or_, oc);
                    counter.add_path(&path);
                    let global: Vec<_> = path
                        .iter()
                        .map(|&v| sub.local_to_global(gk.vref(v)))
                        .collect();
                    for w in global.windows(2) {
                        if !(g.preds(w[1]).contains(&w[0]) || g.succs(w[1]).contains(&w[0])) {
                            violations += 1;
                        }
                    }
                }
            }
        }
        let stats = counter.stats();
        max_v = max_v.max(stats.max_vertex_hits);
        max_m = max_m.max(stats.max_meta_hits);
        paths_per_copy = stats.paths;
        bound = routing.theorem2_bound();
        match &first {
            None => first = Some((stats.max_vertex_hits, stats.max_meta_hits)),
            Some(f) => uniform &= *f == (stats.max_vertex_hits, stats.max_meta_hits),
        }
    }
    TransportReport {
        k,
        copies,
        paths_per_copy,
        bound,
        max_vertex_hits: max_v,
        max_meta_hits: max_m,
        edge_violations: violations,
        uniform,
    }
}

/// A reduced `mmio analyze all`: base lints + routing audit for every
/// registry algorithm, fanned out over `pool` exactly as the CLI does.
fn analyze_all(pool: &Pool, max_r: u32) -> usize {
    let bases = all_base_graphs();
    let mut work: Vec<(usize, u32)> = Vec::new();
    for (bi, base) in bases.iter().enumerate() {
        let top = if base.b() > 30 { 1 } else { max_r };
        work.extend((1..=top).map(|r| (bi, r)));
    }
    let errors = pool.map(work.len(), |i| {
        let (bi, r) = work[i];
        let base = &bases[bi];
        let mut report = mmio_analyze::analyze_base_at(base, r);
        let routing_k = r.min(if base.a() >= 16 { 1 } else { 2 });
        let gk = build_cdag(base, routing_k);
        if let Some(routing) = InOutRouting::new(&gk) {
            let arena = routing.collect_paths();
            mmio_analyze::audit_routing_paths(
                &gk,
                routing.theorem2_bound(),
                Some(routing.n_paths()),
                arena.iter(),
                &mut report,
            );
        }
        report.error_count()
    });
    errors.iter().sum()
}

fn main() {
    let smoke = std::env::var("MMIO_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut determinism_ok = true;

    // --- 1. Transport sweep -------------------------------------------------
    let sweeps: Vec<(BaseGraph, u32, u32)> = if smoke {
        vec![(strassen(), 1, 3)]
    } else {
        vec![
            (strassen(), 1, 3),
            (strassen(), 1, 4),
            (strassen(), 2, 4),
            (winograd(), 1, 3),
        ]
    };
    let mut transport_sweep = Vec::new();
    println!("P1a: transported routing sweep (baseline = per-copy re-derivation)\n");
    println!(
        "{:<10} {:>2} {:>2} {:>6} | {:>11} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "algo", "k", "r", "copies", "baseline ms", "1t ms", "2t ms", "4t ms", "8t ms", "speedup"
    );
    for (base, k, r) in &sweeps {
        let g = build_cdag(base, *r);

        let t = Instant::now();
        let base_report = baseline_sweep(&g, base, *k);
        let baseline_ms = ms(t);

        let mut engine_ms = Vec::new();
        let mut reports = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            let t = Instant::now();
            // End-to-end: class construction (the memoized cost) included.
            let class = RoutingClass::build(base, *k, &pool).expect("Hall matching exists");
            let report = verify_transported(&g, &class, &pool);
            engine_ms.push((format!("{threads}t"), ms(t)));
            reports.push(report);
        }
        // Determinism: identical report at every thread count, and agreement
        // with the naive baseline on every verified quantity.
        for (i, rep) in reports.iter().enumerate() {
            if format!("{rep:?}") != format!("{:?}", reports[0]) {
                eprintln!("DIVERGENCE: engine thread-count {i} disagrees: {rep:?}");
                determinism_ok = false;
            }
        }
        let eng = &reports[0];
        if (
            eng.copies,
            eng.paths_per_copy,
            eng.max_vertex_hits,
            eng.max_meta_hits,
            eng.edge_violations,
            eng.uniform,
        ) != (
            base_report.copies,
            base_report.paths_per_copy,
            base_report.max_vertex_hits,
            base_report.max_meta_hits,
            base_report.edge_violations,
            base_report.uniform,
        ) {
            eprintln!("DIVERGENCE: baseline {base_report:?} vs engine {eng:?}");
            determinism_ok = false;
        }
        if eng.edge_violations != 0 || !eng.verified() {
            eprintln!("VERIFICATION FAILURE: {eng:?}");
            determinism_ok = false;
        }

        let speedup = baseline_ms / engine_ms[2].1;
        println!(
            "{:<10} {:>2} {:>2} {:>6} | {:>11.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>7.2}x",
            base.name(),
            k,
            r,
            eng.copies,
            baseline_ms,
            engine_ms[0].1,
            engine_ms[1].1,
            engine_ms[2].1,
            engine_ms[3].1,
            speedup
        );
        transport_sweep.push(SweepRecord {
            algo: base.name().to_string(),
            k: *k,
            r: *r,
            copies: eng.copies,
            paths_per_copy: eng.paths_per_copy,
            baseline_ms,
            engine_ms,
            speedup_4t: speedup,
        });
    }

    // --- 2. Memoization flatness -------------------------------------------
    println!("\nP1b: per-copy engine cost vs copy count (class built once)\n");
    println!(
        "{:>2} {:>6} | {:>10} {:>12} {:>14}",
        "r", "copies", "build ms", "transport ms", "µs per copy"
    );
    let memo = RoutingMemo::new();
    let pool = Pool::serial();
    let flat_base = strassen();
    let mut memoization_flatness = Vec::new();
    let top_r = if smoke { 3 } else { 4 };
    for r in 2..=top_r {
        let g = build_cdag(&flat_base, r);
        let t = Instant::now();
        let class = memo
            .class(&flat_base, 1, &pool)
            .expect("Hall matching exists");
        let class_build_ms = ms(t); // ~0 after the first call: memoized
        let t = Instant::now();
        let report = verify_transported(&g, &class, &pool);
        let transport_ms = ms(t);
        let per_copy = transport_ms * 1e3 / report.copies as f64;
        println!(
            "{r:>2} {:>6} | {class_build_ms:>10.3} {transport_ms:>12.2} {per_copy:>14.2}",
            report.copies
        );
        memoization_flatness.push(FlatnessRecord {
            r,
            copies: report.copies,
            class_build_ms,
            transport_ms,
            transport_us_per_copy: per_copy,
        });
    }
    let (hits, misses) = memo.stats();
    println!("(memo: {hits} hits, {misses} miss — one class serves every r)");

    // --- 3. Analyze-all -----------------------------------------------------
    let max_r = if smoke { 1 } else { 2 };
    let t = Instant::now();
    let serial_errors = analyze_all(&Pool::serial(), max_r);
    let analyze_all_serial_ms = ms(t);
    let t = Instant::now();
    let pool_errors = analyze_all(&Pool::new(4), max_r);
    let analyze_all_pool4_ms = ms(t);
    if serial_errors != pool_errors {
        eprintln!("DIVERGENCE: analyze-all error counts {serial_errors} vs {pool_errors}");
        determinism_ok = false;
    }
    println!(
        "\nP1c: analyze-all (registry, r ≤ {max_r}): serial {analyze_all_serial_ms:.1} ms, \
         4-thread pool {analyze_all_pool4_ms:.1} ms ({serial_errors} errors both ways)"
    );

    // --- Record -------------------------------------------------------------
    let record = BenchRecord {
        experiment: "perf_routing",
        host_cores,
        smoke,
        transport_sweep,
        memoization_flatness,
        analyze_all_serial_ms,
        analyze_all_pool4_ms,
        determinism: if determinism_ok {
            "identical"
        } else {
            "DIVERGED"
        },
    };
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_routing.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&record).expect("serializable"),
    )
    .expect("write BENCH_routing.json");
    println!("\nwrote {}", path.display());

    assert!(
        determinism_ok,
        "deterministic-output check diverged (see stderr)"
    );
}
