//! E10 — classical vs fast crossover: blocked classical I/O
//! (`Θ(n³/√M)`, Hong–Kung) against Strassen's recursive-schedule I/O
//! (`Θ((n/√M)^{2.807}·M)`), both measured on the simulator, plus the
//! analytic curves.
//!
//! Expected shape: the classical/Strassen I/O ratio grows like
//! `(n/√M)^{3−ω₀} ≈ (n/√M)^{0.193}` — Strassen wins for every `M` once `n`
//! is large enough, and the advantage grows as `M` shrinks.

use mmio_algos::classical::classical;
use mmio_algos::strassen::strassen;
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::LowerBound;
use mmio_pebble::blocked::{blocked_io, hong_kung_lower_bound};
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Belady;
use mmio_pebble::AutoScheduler;

fn main() {
    let strassen_base = strassen();
    let classical_base = classical(2);
    mmio_bench::preflight(&strassen_base);
    mmio_bench::preflight(&classical_base);
    let lb = LowerBound::new(&strassen_base);
    let mut rows = Vec::new();

    println!("E10a: measured I/O on the simulator (same n, same M)\n");
    println!(
        "{:>4} {:>5} | {:>12} {:>12} {:>8}",
        "n", "M", "classicalIO", "strassenIO", "ratio"
    );
    for r in 3..=5u32 {
        let gs = build_cdag(&strassen_base, r);
        let gc = build_cdag(&classical_base, r);
        let os = recursive_order(&gs);
        let oc = recursive_order(&gc);
        for m in [8usize, 32, 128] {
            if (m * 4) as u64 > gs.n() * gs.n() {
                continue;
            }
            let s_io = AutoScheduler::new(&gs, m).run(&os, &mut Belady).io();
            let c_io = AutoScheduler::new(&gc, m).run(&oc, &mut Belady).io();
            let ratio = c_io as f64 / s_io as f64;
            println!("{:>4} {m:>5} | {c_io:>12} {s_io:>12} {ratio:>8.3}", gs.n());
            rows.push(
                Row::new(format!("n={},M={m}", gs.n()))
                    .push("classical", c_io as f64)
                    .push("strassen", s_io as f64),
            );
        }
    }

    println!("\nE10b: analytic curves at scale (blocked classical vs Strassen Ω)\n");
    println!(
        "{:>8} {:>8} | {:>16} {:>16} {:>16} {:>8}",
        "n", "M", "blocked classic", "Hong-Kung Ω", "Strassen Ω", "c/s"
    );
    for logn in [10u32, 12, 14, 16] {
        let n = 1u64 << logn;
        for m in [1u64 << 10, 1 << 14] {
            let c = blocked_io(n, m) as f64;
            let hk = hong_kung_lower_bound(n, m);
            let s = lb.sequential_io(n, m);
            println!(
                "{n:>8} {m:>8} | {c:>16.3e} {hk:>16.3e} {s:>16.3e} {:>8.2}",
                c / s
            );
        }
    }
    println!("\nThe classical/Strassen ratio grows with n/√M in both the");
    println!("measured (small-scale) and analytic (large-scale) regimes —");
    println!("fast matrix multiplication wins on communication, not just flops.");
    write_record("e10_crossover", &rows);
}
