//! E7 — Lemma 1: the fraction of mutually input-disjoint subcomputations
//! `G_k^i`, measured by explicit greedy selection with verified
//! disjointness, against the paper's `1/b²` guarantee.
//!
//! Expected shape: for base graphs satisfying the Lemma 1 condition the
//! selected fraction is far above `1/b²`; classical (which violates the
//! condition) falls below it.

use mmio_algos::classical::classical;
use mmio_algos::strassen::{strassen, winograd};
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_cdag::fact1::Subcomputation;
use mmio_cdag::MetaVertices;
use mmio_core::lemma1::{select_input_disjoint, verify_disjoint};

fn main() {
    let mut rows = Vec::new();
    println!("E7: mutually input-disjoint subcomputations\n");
    println!(
        "{:<12} {:>2} {:>2} | {:>8} {:>10} | {:>10} {:>12} {:>8}",
        "base", "r", "k", "total", "selected", "fraction", "1/b² target", "meets?"
    );
    for (base, r, ks) in [
        (strassen(), 4u32, vec![1u32, 2]),
        (strassen(), 5, vec![1, 2, 3]),
        (winograd(), 4, vec![1, 2]),
        (classical(2), 4, vec![1, 2]),
    ] {
        mmio_bench::preflight(&base);
        let g = build_cdag(&base, r);
        let meta = MetaVertices::compute(&g);
        for &k in &ks {
            let total = Subcomputation::count(&g, k);
            let chosen = select_input_disjoint(&g, &meta, k);
            assert!(verify_disjoint(&g, &meta, k, &chosen));
            let fraction = chosen.len() as f64 / total as f64;
            let target = 1.0 / (base.b() * base.b()) as f64;
            println!(
                "{:<12} {r:>2} {k:>2} | {total:>8} {:>10} | {fraction:>10.4} {target:>12.4} {:>8}",
                base.name(),
                chosen.len(),
                fraction >= target
            );
            rows.push(
                Row::new(format!("{},r={r},k={k}", base.name()))
                    .push("fraction", fraction)
                    .push("target", target),
            );
        }
    }
    write_record("e7_lemma1", &rows);
}
