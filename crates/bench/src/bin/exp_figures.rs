//! F1–F9 — structural regeneration of the paper's figures. Each figure is
//! rebuilt programmatically, its structure asserted, and (where graphical)
//! emitted as DOT under `results/figures/`.
//!
//! - **Figure 1**: Strassen's base graph `G₁` (8 inputs, 7+7 combinations,
//!   7 products, 4 outputs).
//! - **Figure 2**: a meta-vertex with multiple copying (classical 2×2's
//!   inputs).
//! - **Figure 3**: a zag path through an encoding/decoding component where
//!   a direct edge is missing.
//! - **Figures 4–5**: a boundary-crossing path of a segment routing.
//! - **Figure 6**: the guaranteed-dependence sequence
//!   `a_{ij} → c_{ij'} → b_{jj'} → c_{i'j'}`.
//! - **Figure 7**: the recursive construction `G'_k` from `b` copies of
//!   `G'_{k-1}` (vertex-count identity).
//! - **Figure 8**: the `H`-neighbourhood of the dependence `(a₁₂, c₁₁)`.
//! - **Figure 9**: `G₁°` for `i = 2` and a 3-element `D₂` (product count
//!   vs correct-coefficient count).

use mmio_algos::classical::classical;
use mmio_algos::strassen::strassen;
use mmio_cdag::base::Side;
use mmio_cdag::build::build_cdag;
use mmio_cdag::dot::{to_dot, DotOptions};
use mmio_cdag::{Layer, MetaVertices};
use mmio_core::boundary::{is_boundary_crossing, mask_of};
use mmio_core::claim1::DecodingRouting;
use mmio_core::deps::DepSide;
use mmio_core::hall::{BaseDep, MatchingGraph};
use mmio_core::lemma4::dependence_sequence;
use mmio_core::lemma56::correct_coefficients;
use mmio_core::theorem2::InOutRouting;
use std::fs;

fn save(name: &str, dot: &str) {
    let dir = mmio_bench::results_dir().join("figures");
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join(name), dot);
}

fn main() {
    // Figure 1.
    let s = strassen();
    mmio_bench::preflight(&s);
    let g1 = build_cdag(&s, 1);
    assert_eq!(g1.inputs().count(), 8);
    assert_eq!(g1.products().count(), 7);
    assert_eq!(g1.outputs().count(), 4);
    assert_eq!(
        g1.segment(Layer::EncA, 1).count() + g1.segment(Layer::EncB, 1).count(),
        14
    );
    save(
        "figure1_strassen_g1.dot",
        &to_dot(&g1, &DotOptions::default()),
    );
    println!("F1  Strassen G₁: 8 inputs + 14 combinations + 7 products + 4 outputs ✓ (dot saved)");

    // Figure 2.
    let gc = build_cdag(&classical(2), 1);
    let meta = MetaVertices::compute(&gc);
    let input = gc.input_a(0, 0);
    assert_eq!(meta.size_of(input), 3);
    assert!(meta.has_multiple_copying(&gc));
    let members = meta.members_of(input);
    save(
        "figure2_meta_vertex.dot",
        &to_dot(
            &gc,
            &DotOptions {
                highlight: members.clone(),
                ..DotOptions::default()
            },
        ),
    );
    println!(
        "F2  meta-vertex of a₀₀ in classical 2×2: root + {} copies, branching ✓",
        members.len() - 1
    );

    // Figure 3: a zag path — some (product, output) pair in Strassen's D₁
    // has no direct edge, so Claim 1's path has length > 2.
    let routing = DecodingRouting::new(&g1).unwrap();
    let mut longest = Vec::new();
    for m in 0..7u64 {
        for y in 0..4u64 {
            let p = routing.path(m, y);
            if p.len() > longest.len() {
                longest = p;
            }
        }
    }
    assert!(longest.len() > 2, "Strassen's D₁ is not complete bipartite");
    save(
        "figure3_zag_path.dot",
        &to_dot(
            &g1,
            &DotOptions {
                highlight: longest.clone(),
                ..DotOptions::default()
            },
        ),
    );
    println!(
        "F3  longest zag path in D₁ has {} vertices (> 2: direct edge missing) ✓",
        longest.len()
    );

    // Figures 4–5: a boundary-crossing path with respect to a half-set S.
    let g2 = build_cdag(&s, 2);
    let io_routing = InOutRouting::new(&g2).unwrap();
    let path = io_routing.path(DepSide::A, 0, 1, 3, 2);
    let half: Vec<_> = g2.vertices().take(g2.n_vertices() / 2).collect();
    let mask = mask_of(&g2, &half);
    assert!(is_boundary_crossing(&mask, &path));
    println!("F4/5 input→output path of G₂ crosses the boundary of a half-set S ✓");

    // Figure 6: the dependence sequence.
    let seq = dependence_sequence(DepSide::A, 0, 1, 1, 0);
    assert!(seq.iter().all(|d| d.is_guaranteed()));
    println!(
        "F6  a₀₁→c₀₀ ← b₁₀ → c₁₀: all three links guaranteed ✓ ({:?} → {:?} → {:?})",
        seq[0].side, seq[1].side, seq[2].side
    );

    // Figure 7: G'_k from b copies of G'_{k-1} — vertex-count identity
    // |enc_A(G_k)| = b·|enc_A(G_{k-1})| + a^{k-1}·(a) …: check the segment
    // recurrence b^t·a^{k-t}.
    for k in 1..=3u32 {
        let gk = build_cdag(&s, k);
        for t in 1..=k {
            let expect = 7u64.pow(t) * 4u64.pow(k - t);
            assert_eq!(gk.segment_len(Layer::EncA, t), expect);
        }
    }
    println!("F7  recursive segment sizes b^t·a^(k-t) verified for k ≤ 3 ✓");

    // Figure 8: H-neighbourhood of (a₁₂, c₁₁) (paper's 1-based indices →
    // our 0-based (0,1)→(0,0)): middle vertices on some chain.
    let h = MatchingGraph::new(&s, Side::A);
    let dep = BaseDep {
        shared: 0,
        in_other: 1,
        out_other: 0,
    };
    let nbhd = h.neighborhood(&[dep]);
    assert!(!nbhd.is_empty());
    println!("F8  N((a₁₂,c₁₁)) = products {nbhd:?} ✓");

    // Figure 9: G₁° for i=2 (our i=1) with |D₂| = 3: the kept products
    // compute at most as many correct coefficients as their count (Lemma 6
    // counting on the figure's own instance).
    let deps = [
        BaseDep {
            shared: 1,
            in_other: 0,
            out_other: 0,
        },
        BaseDep {
            shared: 1,
            in_other: 0,
            out_other: 1,
        },
        BaseDep {
            shared: 1,
            in_other: 1,
            out_other: 1,
        },
    ];
    let kept = h.neighborhood(&deps);
    let mask = kept.iter().fold(0u64, |acc, &y| acc | 1 << y);
    let correct = correct_coefficients(&s, 1, mask);
    assert!(correct <= kept.len());
    println!(
        "F9  G₁° (i=2, |D₂|=3): {} products kept, {correct} correct coefficients (≤) ✓",
        kept.len()
    );

    println!("\nAll nine figures regenerate; DOT files in results/figures/.");
}
