//! E3 — Claim 1: the `11·7^k`-routing in Strassen's decoding graph `D_k`,
//! constructed and verified for k = 1..5.
//!
//! Expected shape: measured max vertex hits stay below `11·7^k`, and in
//! fact track `c·7^k` with `c < 11` (the zag factor rarely binds fully).

use mmio_algos::laderman::laderman;
use mmio_algos::strassen::{strassen, winograd};
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_core::claim1::DecodingRouting;

fn main() {
    let mut rows = Vec::new();
    println!("E3: Claim 1 routings in the decoding graph\n");
    println!(
        "{:<12} {:>2} | {:>10} | {:>12} {:>12} {:>8}",
        "base", "k", "paths", "bound", "max hits", "slack"
    );
    for (base, max_k) in [(strassen(), 5u32), (winograd(), 4), (laderman(), 3)] {
        mmio_bench::preflight(&base);
        for k in 1..=max_k {
            let g = build_cdag(&base, k);
            let routing = DecodingRouting::new(&g).expect("connected decoding graph");
            let stats = routing.verify();
            let bound = routing.claim1_bound();
            assert!(stats.is_m_routing(bound), "Claim 1 must hold");
            let slack = bound as f64 / stats.max_vertex_hits as f64;
            println!(
                "{:<12} {k:>2} | {:>10} | {bound:>12} {:>12} {slack:>8.2}",
                base.name(),
                stats.paths,
                stats.max_vertex_hits
            );
            rows.push(
                Row::new(format!("{},k={k}", base.name()))
                    .push("bound", bound as f64)
                    .push("max_hits", stats.max_vertex_hits as f64),
            );
        }
    }
    write_record("e3_claim1", &rows);
}
