//! P3 — the implicit (closed-form) `CdagView` against the explicit graph.
//!
//! Two measurements, written to `BENCH_implicit.json` at the workspace
//! root (the checked-in perf record; CI re-runs a reduced workload and
//! uploads its own copy as an artifact):
//!
//! 1. **Certify sweep**: the full Theorem 1 certification pipeline
//!    (meta-vertices, `k` selection, Lemma 1 subcomputation selection,
//!    segment analysis) per `(algo, r)`, once on a materialized `Cdag`
//!    and once on the [`IndexView`] — wall-clock and peak RSS for each.
//!    The certificates must agree field-for-field wherever both run; the
//!    binary exits nonzero on any divergence. The sweep stops at the
//!    largest depth the explicit side still materializes comfortably
//!    (the scale-emit measurement is the beyond-that story).
//! 2. **Scale emit** (`r = 8`): `mmio cert emit`-equivalent certificate
//!    emission for Strassen at a depth whose explicit graph (≈40M
//!    vertices) aborts under a 768 MB cap — the implicit path emits the
//!    same routing certificate in milliseconds at a few MB of RSS
//!    (CI enforces the cap itself in the `implicit-scale` job).
//!
//! Peak RSS is read from `/proc/self/status` (`VmHWM`) after resetting
//! the high-water mark through `/proc/self/clear_refs`; on systems
//! without those files the fields are null and only wall-clock is
//! recorded. The allocator retains freed pages, so a reading is floored
//! at whatever RSS earlier workloads left behind — the emit measurement
//! runs first and the sweep rows run smallest-first to keep each
//! reading dominated by its own workload.
//!
//! `MMIO_BENCH_SMOKE=1` runs a reduced workload (CI's bench-smoke job):
//! smaller sweeps, same divergence checks, same output schema.

use mmio_algos::strassen::{strassen, winograd};
use mmio_cdag::build::build_cdag;
use mmio_cdag::view::count_vertices;
use mmio_cdag::{BaseGraph, IndexView};
use mmio_core::theorem1::{certify_pooled, certify_pooled_view, CertifyParams};
use mmio_core::transport::RoutingClass;
use mmio_parallel::Pool;
use mmio_pebble::orders::recursive_order;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Measure {
    wall_ms: f64,
    peak_rss_kb: Option<u64>,
}

#[derive(Serialize)]
struct CertifyRecord {
    algo: String,
    r: u32,
    n_vertices: u64,
    m: u64,
    explicit: Option<Measure>,
    implicit: Measure,
    /// `Some(true)` when both views ran and produced identical
    /// certificates; `None` when the explicit side was skipped.
    identical: Option<bool>,
}

#[derive(Serialize)]
struct EmitRecord {
    algo: String,
    r: u32,
    routing_k: u32,
    wall_ms: f64,
    peak_rss_kb: Option<u64>,
    certificate_bytes: usize,
}

#[derive(Serialize)]
struct BenchRecord {
    experiment: &'static str,
    host_cores: usize,
    smoke: bool,
    certify_sweep: Vec<CertifyRecord>,
    scale_emit: Vec<EmitRecord>,
    determinism: &'static str,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Resets the process's RSS high-water mark (`VmHWM`), so the next
/// [`peak_rss_kb`] reading covers only the workload in between. No-op on
/// kernels without `/proc/self/clear_refs`.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Current `VmHWM` in KiB, if the kernel exposes it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Runs `work` with a fresh RSS high-water mark, returning its result
/// alongside wall-clock and peak memory.
fn measured<T>(work: impl FnOnce() -> T) -> (T, Measure) {
    reset_peak_rss();
    let t = Instant::now();
    let out = work();
    let wall_ms = ms(t);
    (
        out,
        Measure {
            wall_ms,
            peak_rss_kb: peak_rss_kb(),
        },
    )
}

fn fmt_rss(m: &Measure) -> String {
    match m.peak_rss_kb {
        Some(kb) => format!("{:.1} MB", kb as f64 / 1024.0),
        None => "n/a".to_string(),
    }
}

fn main() {
    let smoke = std::env::var("MMIO_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = Pool::new(4.min(host_cores));
    let mut determinism_ok = true;

    // --- 1. Scale emit at r = 8 ---------------------------------------------
    // Routing-certificate emission only ever materializes G_k (the Fact-1
    // transport into G_r is symbolic), so r = 8 emits in milliseconds at a
    // few MB — while `build_cdag(strassen, 8)` (≈40M vertices) aborts under
    // a 768 MB cap. The CI `implicit-scale` job enforces that cap end to
    // end; here we record the implicit side's cost.
    let scale_base = strassen();
    let scale_r = 8;
    let routing_k = 2;
    let ((class_ok, cert_bytes), emit_measure) = measured(|| {
        let class = RoutingClass::build(&scale_base, routing_k, &pool);
        match class {
            Some(class) => {
                let cert = mmio_core::transport::emit_certificate(&class, scale_r);
                (true, cert.to_json().len())
            }
            None => (false, 0),
        }
    });
    if !class_ok {
        eprintln!("DIVERGENCE: strassen lost its Hall matching");
        determinism_ok = false;
    }
    println!(
        "\nP3b: routing-certificate emission at r = {scale_r} (G_r ≈ {} vertices, never built): \
         {:.1} ms, peak {} — {} certificate bytes",
        count_vertices(scale_base.a() as u64, scale_base.b() as u64, scale_r)
            .expect("in u64 range"),
        emit_measure.wall_ms,
        fmt_rss(&emit_measure),
        cert_bytes
    );
    let scale_emit = vec![EmitRecord {
        algo: scale_base.name().to_string(),
        r: scale_r,
        routing_k,
        wall_ms: emit_measure.wall_ms,
        peak_rss_kb: emit_measure.peak_rss_kb,
        certificate_bytes: cert_bytes,
    }];

    // --- 2. Certify sweep ---------------------------------------------------
    // Rows run smallest-first (r ascending across algorithms) so the RSS
    // floor a row inherits comes from a smaller workload, not a larger one.
    // The bool marks rows where the explicit side still materializes.
    let rows: Vec<(BaseGraph, u32, bool)> = if smoke {
        vec![(strassen(), 3, true), (strassen(), 4, true)]
    } else {
        vec![
            (strassen(), 3, true),
            (winograd(), 3, true),
            (strassen(), 4, true),
            (winograd(), 4, true),
            (strassen(), 5, true),
            (winograd(), 5, true),
            (strassen(), 6, true),
            (winograd(), 6, true),
            (strassen(), 7, true),
        ]
    };
    let m: u64 = 64;
    let mut certify_sweep = Vec::new();
    println!("\nP3a: certify pipeline, explicit Cdag vs implicit IndexView (M = {m})\n");
    println!(
        "{:<10} {:>2} {:>10} | {:>12} {:>12} | {:>12} {:>12} | certs",
        "algo", "r", "vertices", "expl ms", "expl RSS", "impl ms", "impl RSS"
    );
    for (base, r, run_explicit) in &rows {
        let (base, r) = (base, *r);
        let n_vertices = count_vertices(base.a() as u64, base.b() as u64, r).expect("in u64 range");

        let (implicit_cert, implicit) = measured(|| {
            let v = IndexView::from_base(base, r);
            let order = recursive_order(&v);
            certify_pooled_view(base, &v, m, &order, CertifyParams::SMALL, &pool)
        });
        let explicit = run_explicit.then(|| {
            measured(|| {
                let g = build_cdag(base, r);
                let order = recursive_order(&g);
                certify_pooled(&g, m, &order, CertifyParams::SMALL, &pool)
            })
        });

        let identical = explicit.as_ref().map(|(cert, _)| {
            let same = format!("{cert:?}") == format!("{implicit_cert:?}");
            if !same {
                eprintln!(
                    "DIVERGENCE: {} r={r}: explicit {cert:?} vs implicit {implicit_cert:?}",
                    base.name()
                );
                determinism_ok = false;
            }
            same
        });

        println!(
            "{:<10} {r:>2} {n_vertices:>10} | {:>12} {:>12} | {:>12.1} {:>12} | {}",
            base.name(),
            explicit
                .as_ref()
                .map_or("—".to_string(), |(_, e)| format!("{:.1}", e.wall_ms)),
            explicit
                .as_ref()
                .map_or("—".to_string(), |(_, e)| fmt_rss(e)),
            implicit.wall_ms,
            fmt_rss(&implicit),
            match identical {
                Some(true) => "identical",
                Some(false) => "DIVERGED",
                None => "implicit only",
            }
        );
        certify_sweep.push(CertifyRecord {
            algo: base.name().to_string(),
            r,
            n_vertices,
            m,
            explicit: explicit.map(|(_, e)| e),
            implicit,
            identical,
        });
    }

    // --- Record -------------------------------------------------------------
    let record = BenchRecord {
        experiment: "perf_implicit",
        host_cores,
        smoke,
        certify_sweep,
        scale_emit,
        determinism: if determinism_ok {
            "identical"
        } else {
            "DIVERGED"
        },
    };
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_implicit.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&record).expect("serializable"),
    )
    .expect("write BENCH_implicit.json");
    println!("\nwrote {}", path.display());

    assert!(
        determinism_ok,
        "explicit/implicit certificate divergence (see stderr)"
    );
}
