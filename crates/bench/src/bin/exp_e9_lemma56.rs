//! E9 — Lemmas 5 and 6: the Hall condition `|N(D)| ≥ |D|/n₀` checked over
//! every dependence subset (exhaustive per row/column slice), and the
//! matrix–vector reduction (`d` correct coefficients need ≥ `d`
//! multiplications) checked over all `2^b` product subsets for `b = 7` and
//! sampled for Laderman.

use mmio_algos::laderman::laderman;
use mmio_algos::strassen::{strassen, winograd};
use mmio_bench::{write_record, Row};
use mmio_cdag::base::Side;
use mmio_core::lemma56::{
    verify_hall_condition_slice, verify_lemma6_exhaustive, verify_lemma6_sampled,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rows = Vec::new();
    println!("E9a: Hall condition (Lemma 5), exhaustive per slice\n");
    println!(
        "{:<12} {:>5} {:>3} | {:>14} {:>8}",
        "base", "side", "i", "worst |D|/|N(D)|", "n₀"
    );
    for base in [strassen(), winograd(), laderman()] {
        mmio_bench::preflight(&base);
        for side in [Side::A, Side::B] {
            for i in 0..base.n0() {
                let (d, n) = verify_hall_condition_slice(&base, side, i);
                let ratio = d as f64 / n as f64;
                println!(
                    "{:<12} {:>5} {i:>3} | {:>14.3} {:>8}",
                    base.name(),
                    format!("{side:?}"),
                    ratio,
                    base.n0()
                );
                rows.push(
                    Row::new(format!("{},{side:?},i={i}", base.name()))
                        .push("worst_ratio", ratio)
                        .push("n0", base.n0() as f64),
                );
            }
        }
    }

    println!("\nE9b: Lemma 6 (matrix–vector reduction)\n");
    for base in [strassen(), winograd()] {
        for i in 0..base.n0() {
            let worst = verify_lemma6_exhaustive(&base, i);
            println!(
                "  {:<10} i={i}: exhaustive over 2^{} subsets, worst d−|P| = {worst}",
                base.name(),
                base.b()
            );
        }
    }
    let lad = laderman();
    let mut rng = StdRng::seed_from_u64(2015);
    for i in 0..3 {
        verify_lemma6_sampled(&lad, i, 5000, &mut rng);
    }
    println!("  laderman   i=0..2: 5000 sampled subsets each, no violation");
    println!("\nBoth halves of the Lemma 5 proof hold on every instance:");
    println!("the Hall ratio never exceeds n₀, and no product subset computes");
    println!("more correct coefficients than it has products (Winograd [15]).");
    write_record("e9_lemma56", &rows);
}
