//! P2 — the heap-based pebble engine against the scan-based reference.
//!
//! Three measurements, written to `BENCH_pebble.json` at the workspace root
//! (the checked-in perf record; CI re-runs a reduced workload and uploads
//! its own copy as an artifact), extending the perf trajectory started by
//! `BENCH_routing.json`:
//!
//! 1. **Engine sweep**: `AutoScheduler` (lazy-invalidation heaps + dead
//!    free-list + reused CSR scratch) vs `auto::reference` (two O(M) scans
//!    per miss, fresh `Vec<Vec<u64>>` use-lists per run) over Strassen
//!    `r × policy × M` grids, recursive order. Stats are compared on every
//!    timed pair; the largest instance's Belady speedup is the headline
//!    number and must exceed 3× (single core — the gain is algorithmic, not
//!    threads).
//! 2. **Equivalence contract**: recorded schedules + eviction sequences,
//!    fast vs reference, for lru/belady/random on a mid-size grid, plus
//!    strict simulator replay of every fast-engine schedule.
//! 3. **Pooled sweep determinism**: one `pebble::sweep` grid at 1/2/8
//!    threads must serialize byte-identically; serial vs pooled wall-clock
//!    is recorded.
//!
//! The binary exits nonzero on any fast-vs-reference or cross-thread-count
//! divergence. `MMIO_BENCH_SMOKE=1` runs a reduced workload (CI's
//! bench-smoke job): smaller grids, same checks, same output schema.

use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_parallel::Pool;
use mmio_pebble::auto::reference::ReferenceScheduler;
use mmio_pebble::auto::{AutoScheduler, RunOptions, SchedScratch};
use mmio_pebble::orders::{rank_order, recursive_order};
use mmio_pebble::sim::simulate;
use mmio_pebble::stats::EngineCounters;
use mmio_pebble::sweep::{sweep, PolicySpec};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct EngineRecord {
    n: u64,
    r: u32,
    m: usize,
    policy: String,
    io: u64,
    reference_ms: f64,
    fast_ms: f64,
    speedup: f64,
    counters: EngineCounters,
}

#[derive(Serialize)]
struct SweepTimingRecord {
    r: u32,
    grid_points: usize,
    serial_ms: f64,
    pool2_ms: f64,
    pool8_ms: f64,
    speedup_8t: f64,
}

#[derive(Serialize)]
struct BenchRecord {
    experiment: &'static str,
    /// Cores visible to the process when the record was produced; the
    /// engine speedup is single-threaded and independent of this.
    host_cores: usize,
    smoke: bool,
    engine_sweep: Vec<EngineRecord>,
    /// reference / fast on the largest swept instance (Belady, largest M).
    largest_instance_speedup: f64,
    equivalence_instances: usize,
    sweep_timing: SweepTimingRecord,
    determinism: &'static str,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let smoke = std::env::var("MMIO_BENCH_SMOKE").map(|v| v == "1") == Ok(true);
    let base = strassen();
    mmio_bench::preflight(&base);
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut determinism_ok = true;

    // --- 1. Engine sweep: fast vs reference --------------------------------
    let rs: &[u32] = if smoke { &[3, 4] } else { &[4, 5, 6] };
    let policies = [
        PolicySpec::Lru,
        PolicySpec::Belady,
        PolicySpec::Random { seed: 5 },
    ];
    let ms_grid = [8usize, 32, 128, 512];
    let (largest_r, largest_m) = (*rs.last().unwrap(), *ms_grid.last().unwrap());
    let mut engine_sweep = Vec::new();
    let mut largest_instance_speedup = 0.0f64;
    println!("P2a: fast engine vs auto::reference (Strassen, recursive order)\n");
    println!(
        "{:>4} {:>6} {:<8} | {:>12} {:>10} {:>9} | {:>10} {:>10}",
        "n", "M", "policy", "ref ms", "fast ms", "speedup", "evictions", "dead drops"
    );
    for &r in rs {
        let g = build_cdag(&base, r);
        let n_vertices = g.n_vertices();
        let order = recursive_order(&g);
        let mut scratch = SchedScratch::new();
        scratch.prepare(&g, &order);
        for &spec in &policies {
            for &m in &ms_grid {
                // The headline pair is timed over several repetitions (min
                // taken) so the ≥3× gate is not noise-sensitive.
                let headline = r == largest_r && m == largest_m && spec == PolicySpec::Belady;
                let iters = if headline { 3 } else { 1 };
                let fast = AutoScheduler::new(&g, m);
                let reference = ReferenceScheduler::new(&g, m);

                let mut reference_ms = f64::INFINITY;
                let mut ref_stats = None;
                for _ in 0..iters {
                    let mut policy = spec.instantiate(n_vertices);
                    let t = Instant::now();
                    let stats = reference.run(&order, policy.as_mut());
                    reference_ms = reference_ms.min(ms(t));
                    ref_stats = Some(stats);
                }
                let mut fast_ms = f64::INFINITY;
                let mut fast_out = None;
                for _ in 0..iters {
                    let mut policy = spec.instantiate(n_vertices);
                    let t = Instant::now();
                    let out = fast.run_prepared(
                        &order,
                        &mut scratch,
                        policy.as_mut(),
                        RunOptions::default(),
                    );
                    fast_ms = fast_ms.min(ms(t));
                    fast_out = Some(out);
                }
                let ref_stats = ref_stats.unwrap();
                let fast_out = fast_out.unwrap();
                if fast_out.stats != ref_stats {
                    eprintln!(
                        "DIVERGENCE: r={r} M={m} {}: fast {:?} vs reference {:?}",
                        spec.name(),
                        fast_out.stats,
                        ref_stats
                    );
                    determinism_ok = false;
                }
                let speedup = reference_ms / fast_ms;
                if headline {
                    largest_instance_speedup = speedup;
                }
                println!(
                    "{:>4} {:>6} {:<8} | {reference_ms:>12.2} {fast_ms:>10.2} {speedup:>8.2}x | {:>10} {:>10}",
                    g.n(),
                    m,
                    spec.name(),
                    fast_out.counters.policy_evictions,
                    fast_out.counters.dead_drops
                );
                engine_sweep.push(EngineRecord {
                    n: g.n(),
                    r,
                    m,
                    policy: spec.name().to_string(),
                    io: fast_out.stats.io(),
                    reference_ms,
                    fast_ms,
                    speedup,
                    counters: fast_out.counters,
                });
            }
        }
    }
    println!(
        "\nheadline: n={}, M={largest_m}, belady — fast engine {largest_instance_speedup:.2}x \
         over reference (single core)",
        8u64 << (largest_r - 3)
    );

    // --- 2. Equivalence contract -------------------------------------------
    let r_eq = if smoke { 3 } else { 4 };
    let g = build_cdag(&base, r_eq);
    let order = recursive_order(&g);
    let mut scratch = SchedScratch::new();
    scratch.prepare(&g, &order);
    let opts = RunOptions {
        record_schedule: true,
        record_victims: true,
    };
    let mut equivalence_instances = 0usize;
    for &spec in &policies {
        for &m in &[8usize, 32, 512] {
            let fast = AutoScheduler::new(&g, m).run_prepared(
                &order,
                &mut scratch,
                spec.instantiate(g.n_vertices()).as_mut(),
                opts,
            );
            let (ref_stats, ref_sched, ref_victims) = ReferenceScheduler::new(&g, m)
                .run_traced(&order, spec.instantiate(g.n_vertices()).as_mut());
            let schedule = fast.schedule.as_ref().unwrap();
            if fast.stats != ref_stats
                || schedule != &ref_sched
                || fast.victims.as_ref().unwrap() != &ref_victims
            {
                eprintln!(
                    "DIVERGENCE: equivalence contract broken at r={r_eq} M={m} {}",
                    spec.name()
                );
                determinism_ok = false;
            }
            match simulate(&g, schedule, m) {
                Ok(replayed) if replayed == fast.stats => {}
                other => {
                    eprintln!(
                        "DIVERGENCE: fast schedule replay at r={r_eq} M={m} {}: {other:?}",
                        spec.name()
                    );
                    determinism_ok = false;
                }
            }
            equivalence_instances += 1;
        }
    }
    println!(
        "\nP2b: equivalence contract — {equivalence_instances} instances (r={r_eq}, \
         schedules + victim sequences + simulator replay): {}",
        if determinism_ok {
            "identical"
        } else {
            "DIVERGED"
        }
    );

    // --- 3. Pooled sweep determinism ---------------------------------------
    let r_sweep = if smoke { 3 } else { 5 };
    let g = build_cdag(&base, r_sweep);
    let rec = recursive_order(&g);
    let rank = rank_order(&g);
    let order_slices: [&[_]; 2] = [&rec, &rank];
    let sweep_ms = [8usize, 32, 128];
    let grid_points = order_slices.len() * policies.len() * sweep_ms.len();

    let t = Instant::now();
    let serial_pts = sweep(&g, &order_slices, &policies, &sweep_ms, &Pool::serial());
    let serial_ms = ms(t);
    let t = Instant::now();
    let pool2_pts = sweep(&g, &order_slices, &policies, &sweep_ms, &Pool::new(2));
    let pool2_ms = ms(t);
    let t = Instant::now();
    let pool8_pts = sweep(&g, &order_slices, &policies, &sweep_ms, &Pool::new(8));
    let pool8_ms = ms(t);
    let serial_json = serde_json::to_string(&serial_pts).expect("serializable");
    for (threads, pts) in [(2usize, &pool2_pts), (8, &pool8_pts)] {
        let json = serde_json::to_string(pts).expect("serializable");
        if json != serial_json {
            eprintln!("DIVERGENCE: sweep output at {threads} threads differs from serial");
            determinism_ok = false;
        }
    }
    let speedup_8t = serial_ms / pool8_ms;
    println!(
        "\nP2c: pooled sweep (r={r_sweep}, {grid_points} grid points) — serial {serial_ms:.1} ms, \
         2t {pool2_ms:.1} ms, 8t {pool8_ms:.1} ms ({speedup_8t:.2}x); \
         1/2/8-thread outputs byte-identical: {}",
        if determinism_ok { "yes" } else { "NO" }
    );

    // --- Record -------------------------------------------------------------
    let record = BenchRecord {
        experiment: "perf_pebble",
        host_cores,
        smoke,
        engine_sweep,
        largest_instance_speedup,
        equivalence_instances,
        sweep_timing: SweepTimingRecord {
            r: r_sweep,
            grid_points,
            serial_ms,
            pool2_ms,
            pool8_ms,
            speedup_8t,
        },
        determinism: if determinism_ok {
            "identical"
        } else {
            "DIVERGED"
        },
    };
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_pebble.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&record).expect("serializable"),
    )
    .expect("write BENCH_pebble.json");
    println!("\nwrote {}", path.display());

    assert!(
        determinism_ok,
        "fast-vs-reference or cross-thread-count check diverged (see stderr)"
    );
    if !smoke {
        assert!(
            largest_instance_speedup >= 3.0,
            "fast engine must be ≥3x over auto::reference on the largest instance \
             (got {largest_instance_speedup:.2}x)"
        );
    }
}
