//! E4 — the Routing Theorem (Theorem 2): `6a^k`-routings between the
//! inputs and outputs of `G_k`, for every base graph in the library that
//! satisfies the paper's hypotheses, with vertex *and* meta-vertex hit
//! verification.
//!
//! Expected shape: all constructed routings verify; the bound binds most
//! tightly on input/output vertices (hit `Θ(a^k)` times by construction).

use mmio_algos::registry::{all_base_graphs, theorem1_base_graphs};
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_core::theorem2::InOutRouting;

fn main() {
    let mut rows = Vec::new();
    println!("E4: Routing Theorem 6a^k-routings\n");
    println!(
        "{:<22} {:>2} | {:>10} | {:>10} {:>10} {:>10} {:>8}",
        "base", "k", "paths", "bound", "max vert", "max meta", "slack"
    );
    for base in theorem1_base_graphs() {
        mmio_bench::preflight(&base);
        let max_k = if base.a() >= 16 { 1 } else { 3 };
        for k in 1..=max_k {
            let g = build_cdag(&base, k);
            let Some(routing) = InOutRouting::new(&g) else {
                println!("{:<22} {k:>2} | no Hall matching", base.name());
                continue;
            };
            let stats = routing.verify();
            let bound = routing.theorem2_bound();
            assert!(
                stats.is_m_routing(bound),
                "Routing Theorem must hold for {}",
                base.name()
            );
            println!(
                "{:<22} {k:>2} | {:>10} | {bound:>10} {:>10} {:>10} {:>8.2}",
                base.name(),
                stats.paths,
                stats.max_vertex_hits,
                stats.max_meta_hits,
                bound as f64 / stats.max_vertex_hits as f64
            );
            rows.push(
                Row::new(format!("{},k={k}", base.name()))
                    .push("bound", bound as f64)
                    .push("max_vertex", stats.max_vertex_hits as f64)
                    .push("max_meta", stats.max_meta_hits as f64),
            );
        }
    }
    println!("\nBase graphs outside the hypotheses (for contrast):");
    for base in all_base_graphs() {
        if base.single_use_assumption_holds() && base.lemma1_condition_holds() {
            continue;
        }
        let g = build_cdag(&base, 1);
        let status = match InOutRouting::new(&g) {
            Some(routing) => {
                let stats = routing.verify();
                format!(
                    "routing exists anyway; max hits {} vs bound {}",
                    stats.max_vertex_hits,
                    routing.theorem2_bound()
                )
            }
            None => "no n₀-capacity Hall matching".to_string(),
        };
        println!("  {:<22} {}", base.name(), status);
    }
    write_record("e4_routing_theorem", &rows);
}
