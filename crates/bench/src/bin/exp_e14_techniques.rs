//! E14 — the technique museum (paper Section 2): the three prior
//! lower-bound techniques and path routing, each run on each base graph,
//! showing exactly which applies where.
//!
//! | technique | applies to | fails on |
//! |---|---|---|
//! | Loomis–Whitney [12, 5] | classical (monomial products) | any Strassen-like algorithm |
//! | edge expansion [6] | connected decoding, no multiple copying | classical, dummy-product |
//! | path routing (this paper) | every Strassen-like algorithm under single-use | — |

use mmio_algos::classical::classical;
use mmio_algos::strassen::{strassen, winograd};
use mmio_algos::synthetic::with_dummy_product;
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_core::dominator::min_dominator_size;
use mmio_core::expansion::SmallGraph;
use mmio_core::loomis_whitney;
use mmio_core::theorem2::InOutRouting;
use mmio_pebble::orders::recursive_order;

fn main() {
    // LW refusals are reported as `inapplicable`, not as panic noise.
    std::panic::set_hook(Box::new(|_| {}));
    let mut rows = Vec::new();
    println!("E14: which lower-bound technique applies where\n");
    println!(
        "{:<16} | {:>14} | {:>14} | {:>14} | {:>14}",
        "base graph", "dominators", "Loomis–Whitney", "edge expansion", "path routing"
    );
    for base in [
        classical(2),
        strassen(),
        winograd(),
        with_dummy_product(&strassen()),
    ] {
        mmio_bench::preflight(&base);
        let g1 = build_cdag(&base, 1);
        // Loomis–Whitney: needs monomial products — try it, catch refusal.
        let lw = {
            let g = build_cdag(&base, 2);
            let order = recursive_order(&g);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                loomis_whitney::verify_on_order(&g, &order, 8)
            }))
            .map(|windows| format!("holds ({windows} wins)"))
            .unwrap_or_else(|_| "inapplicable".to_string())
        };
        // Edge expansion: h(D₁) > 0?
        let d1 = SmallGraph::decoding_graph(&g1);
        let h = d1.exact_expansion();
        let exp = if h > 0.0 && !base.has_multiple_copying() {
            format!("h = {h:.3}")
        } else if h > 0.0 {
            "h>0, copying ✗".to_string()
        } else {
            "h = 0 ✗".to_string()
        };
        // Dominator sets: always applicable, but blunt — the minimum
        // dominator of all products never exceeds the 2a inputs, so the
        // per-segment charge saturates at Θ(a) regardless of b.
        let products: Vec<_> = g1.products().collect();
        let dom = min_dominator_size(&g1, &products);
        let dom_str = format!("dom = {dom} ≤ {}", 2 * base.a());
        // Path routing: does the 6a^k routing construct + verify?
        let g2 = build_cdag(&base, 2);
        let routing = match InOutRouting::new(&g2) {
            Some(r) => {
                let stats = r.verify();
                if stats.is_m_routing(r.theorem2_bound()) {
                    format!("6a^k ✓ ({})", stats.max_vertex_hits)
                } else {
                    "bound exceeded".to_string()
                }
            }
            None => "no matching".to_string(),
        };
        println!(
            "{:<16} | {dom_str:>14} | {lw:>14} | {exp:>14} | {routing:>14}",
            base.name()
        );
        rows.push(
            Row::new(base.name())
                .push("expansion", h)
                .push("routing_ok", f64::from(InOutRouting::new(&g2).is_some())),
        );
    }

    // Quantify: sampled expansion of Strassen's D_2 stays positive, and the
    // routing bound is met on the same graph — both techniques work there;
    // only routing survives the dummy product.
    let g2 = build_cdag(&strassen(), 2);
    let d2 = SmallGraph::decoding_graph(&g2);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(14);
    let h2 = d2.sampled_expansion(3000, &mut rng);
    println!("\nStrassen D₂ sampled expansion upper bound: {h2:.3} (> 0)");
    println!("\nOnly path routing covers the whole table — the paper's claim,");
    println!("reproduced as running code. (LW panics on linear-combination");
    println!("products by design; see core::loomis_whitney docs.)");
    write_record("e14_techniques", &rows);
}
