//! E11 — schedule sensitivity ("the amount of communication depends on
//! the order in which intermediate values are computed", Section 1):
//! identical CDAG, identical cache, three compute orders × three
//! replacement policies. Includes the `ablation_replacement` comparison.
//!
//! The full 3×3×3 grid runs as one `mmio_pebble::sweep` over the shared
//! thread pool; every cell is asserted against its pre-migration I/O count
//! (randomized eviction is seed-specified, so the pooled fast engine
//! reproduces even the random column bit-for-bit).

use mmio_algos::strassen::strassen;
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_parallel::Pool;
use mmio_pebble::orders::{random_topo_order, rank_order, recursive_order};
use mmio_pebble::sweep::{sweep, PolicySpec, SweepPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MS: [usize; 3] = [8, 32, 128];
const POLICIES: [PolicySpec; 3] = [
    PolicySpec::Belady,
    PolicySpec::Lru,
    PolicySpec::Random { seed: 5 },
];

/// Pre-migration I/O counts, indexed (M, order) → (belady, lru, random).
const EXPECTED_IO: &[(usize, &str, [u64; 3])] = &[
    (8, "recursive", [178517, 214119, 217545]),
    (8, "rank-by-rank", [264861, 283748, 291056]),
    (8, "random-topo", [329472, 334328, 334324]),
    (32, "recursive", [95800, 116438, 126215]),
    (32, "rank-by-rank", [241241, 254324, 263107]),
    (32, "random-topo", [318597, 333589, 333557]),
    (128, "recursive", [47289, 58620, 66338]),
    (128, "rank-by-rank", [228598, 238058, 244535]),
    (128, "random-topo", [299695, 330771, 330827]),
];

fn main() {
    let base = strassen();
    mmio_bench::preflight(&base);
    let g = build_cdag(&base, 5);
    let mut rng = StdRng::seed_from_u64(11);
    let orders = [
        ("recursive", recursive_order(&g)),
        ("rank-by-rank", rank_order(&g)),
        ("random-topo", random_topo_order(&g, &mut rng)),
    ];
    let order_slices: Vec<&[_]> = orders.iter().map(|(_, o)| o.as_slice()).collect();
    let pool = Pool::from_env(None);
    let pts = sweep(&g, &order_slices, &POLICIES, &MS, &pool);
    // Grid is order-major, then policy, then M.
    let cell = |oi: usize, pi: usize, mi: usize| -> &SweepPoint {
        &pts[(oi * POLICIES.len() + pi) * MS.len() + mi]
    };
    let mut rows = Vec::new();

    println!("E11: I/O by compute order × replacement policy (Strassen r=5, n=32)\n");
    println!(
        "{:>6} {:<14} | {:>12} {:>12} {:>12}",
        "M", "order", "belady", "lru", "random-evict"
    );
    for (mi, &m) in MS.iter().enumerate() {
        for (oi, (name, _)) in orders.iter().enumerate() {
            let b = cell(oi, 0, mi).stats().io();
            let l = cell(oi, 1, mi).stats().io();
            let rv = cell(oi, 2, mi).stats().io();
            let expected = EXPECTED_IO
                .iter()
                .find(|&&(em, en, _)| em == m && en == *name)
                .map(|&(_, _, e)| e)
                .expect("every grid cell has a pinned value");
            assert_eq!(
                [b, l, rv],
                expected,
                "M={m},{name}: sweep I/O diverged from pre-migration values"
            );
            println!("{m:>6} {name:<14} | {b:>12} {l:>12} {rv:>12}");
            rows.push(
                Row::new(format!("M={m},{name}"))
                    .push("belady", b as f64)
                    .push("lru", l as f64)
                    .push("random", rv as f64),
            );
        }
    }
    println!("\nTwo independent effects, both large:");
    println!("- order: the recursive schedule beats rank-by-rank by a factor");
    println!("  that grows as M shrinks (locality is a property of the order);");
    println!("- policy: Belady ≤ LRU ≤ random at every (order, M).");
    write_record("e11_schedules", &rows);
}
