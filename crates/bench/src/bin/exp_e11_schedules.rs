//! E11 — schedule sensitivity ("the amount of communication depends on
//! the order in which intermediate values are computed", Section 1):
//! identical CDAG, identical cache, three compute orders × three
//! replacement policies. Includes the `ablation_replacement` comparison.

use mmio_algos::strassen::strassen;
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_pebble::orders::{random_topo_order, rank_order, recursive_order};
use mmio_pebble::policy::{Belady, Lru, RandomEvict};
use mmio_pebble::AutoScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let base = strassen();
    mmio_bench::preflight(&base);
    let g = build_cdag(&base, 5);
    let mut rng = StdRng::seed_from_u64(11);
    let orders = [
        ("recursive", recursive_order(&g)),
        ("rank-by-rank", rank_order(&g)),
        ("random-topo", random_topo_order(&g, &mut rng)),
    ];
    let mut rows = Vec::new();

    println!("E11: I/O by compute order × replacement policy (Strassen r=5, n=32)\n");
    println!(
        "{:>6} {:<14} | {:>12} {:>12} {:>12}",
        "M", "order", "belady", "lru", "random-evict"
    );
    for m in [8usize, 32, 128] {
        for (name, order) in &orders {
            let sched = AutoScheduler::new(&g, m);
            let b = sched.run(order, &mut Belady).io();
            let l = sched.run(order, &mut Lru::new(g.n_vertices())).io();
            let rv = sched
                .run(order, &mut RandomEvict::new(StdRng::seed_from_u64(5)))
                .io();
            println!("{m:>6} {name:<14} | {b:>12} {l:>12} {rv:>12}");
            rows.push(
                Row::new(format!("M={m},{name}"))
                    .push("belady", b as f64)
                    .push("lru", l as f64)
                    .push("random", rv as f64),
            );
        }
    }
    println!("\nTwo independent effects, both large:");
    println!("- order: the recursive schedule beats rank-by-rank by a factor");
    println!("  that grows as M shrinks (locality is a property of the order);");
    println!("- policy: Belady ≤ LRU ≤ random at every (order, M).");
    write_record("e11_schedules", &rows);
}
