//! E13 — multi-level memory hierarchies: Theorem 1 applied per boundary.
//!
//! The paper's introduction motivates the bound by "communication of data
//! within memory hierarchy"; the 2-level result composes level-by-level
//! (the standard inclusive-hierarchy argument). We simulate a 4-level
//! hierarchy and check that the traffic across every boundary `i`
//! dominates `(n/√M_i)^{ω₀}·M_i` in shape.
//!
//! The per-boundary runs go through `Hierarchy::measure_pooled` (a
//! `mmio_pebble::sweep` over the level sizes on the shared thread pool) and
//! are asserted against the pre-migration boundary traffic.

use mmio_algos::strassen::strassen;
use mmio_bench::{write_record, Row};
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::LowerBound;
use mmio_parallel::Pool;
use mmio_pebble::hierarchy::Hierarchy;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::sweep::PolicySpec;

/// Pre-migration boundary traffic for the 4 levels below.
const EXPECTED_IO: [u64; 4] = [178517, 95800, 47289, 19889];

fn main() {
    let base = strassen();
    mmio_bench::preflight(&base);
    let lb = LowerBound::new(&base);
    let g = build_cdag(&base, 5);
    let order = recursive_order(&g);
    let h = Hierarchy::new(vec![8, 32, 128, 512]);
    let traffic = h.measure_pooled(&g, &order, PolicySpec::Belady, &Pool::from_env(None));
    assert_eq!(
        traffic.boundary_io, EXPECTED_IO,
        "pooled hierarchy traffic diverged from pre-migration values"
    );
    let mut rows = Vec::new();

    println!("E13: 4-level hierarchy, Strassen r=5 (n = {})\n", g.n());
    println!(
        "{:>10} | {:>12} | {:>12} {:>8}",
        "level size", "boundary IO", "Ω bound", "ratio"
    );
    for (i, (&m, &io)) in traffic
        .level_sizes
        .iter()
        .zip(&traffic.boundary_io)
        .enumerate()
    {
        let bound = lb.sequential_io(g.n(), m as u64);
        println!(
            "{m:>10} | {io:>12} | {bound:>12.0} {:>8.2}",
            io as f64 / bound
        );
        rows.push(
            Row::new(format!("L{i},M={m}"))
                .push("io", io as f64)
                .push("bound", bound),
        );
        assert!(io as f64 >= bound, "Theorem 1 must hold per boundary");
    }
    println!("\nEvery boundary's traffic dominates its own (n/√M)^ω₀·M —");
    println!("the lower bound composes across the hierarchy.");
    write_record("e13_multilevel", &rows);
}
