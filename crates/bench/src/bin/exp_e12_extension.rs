//! E12 — the Section 8 extension (future work of the paper): lifting the
//! single-use assumption via value-class "jumps".
//!
//! On a base graph that *violates* the assumption (Strassen with a
//! duplicated nontrivial combination):
//! - the duplicated products are detected as jump groups;
//! - the balanced router keeps per-value-class chain loads near the
//!   Lemma 3 bound;
//! - generalized (value-class) segment boundaries stay within a constant
//!   of the meta-vertex boundaries — the conjecture's "does not decrease
//!   the number of boundary-crossing edges", checked empirically.

use mmio_algos::strassen::strassen;
use mmio_algos::synthetic::with_duplicated_combination;
use mmio_bench::{write_record, Row};
use mmio_cdag::base::Side;
use mmio_cdag::build::build_cdag;
use mmio_cdag::values::ValueClasses;
use mmio_core::extension::{analyze_generalized, duplicate_groups, BalancedRouter};
use mmio_core::routing::VertexHitCounter;
use mmio_pebble::orders::recursive_order;

fn main() {
    let base = with_duplicated_combination(&strassen());
    // The single-use violation is this experiment's subject; the pre-flight
    // analyzer must flag it (MMIO-A007) and nothing else.
    mmio_bench::preflight_expecting(&base, &[mmio_analyze::codes::CDAG_MULTI_USE]);
    assert!(!base.single_use_assumption_holds());
    println!(
        "E12: base graph '{}' violates the single-use assumption (b = {})\n",
        base.name(),
        base.b()
    );
    let mut rows = Vec::new();

    // Jump groups.
    let g1 = build_cdag(&base, 1);
    println!(
        "duplicate groups: A-side {:?}, B-side {:?}\n",
        duplicate_groups(&g1, Side::A),
        duplicate_groups(&g1, Side::B)
    );

    // Balanced routing: per-class loads.
    println!(
        "{:>2} | {:>8} | {:>14} {:>14}",
        "k", "bound", "max class hits", "max vertex hits"
    );
    for k in 1..=3u32 {
        let g = build_cdag(&base, k);
        let router = BalancedRouter::new(&g).expect("matching exists");
        let vc = ValueClasses::compute(&g);
        let mut counter = VertexHitCounter::new(&g, None);
        router.router().route_all(&mut counter);
        let mut class_hits = std::collections::HashMap::new();
        let mut max_vertex = 0u64;
        for v in g.vertices() {
            let h = counter.hits_of(v);
            max_vertex = max_vertex.max(h);
            *class_hits.entry(vc.class_of(v)).or_insert(0u64) += h;
        }
        let max_class = class_hits.values().copied().max().unwrap();
        let bound = router.router().lemma3_bound();
        println!("{k:>2} | {bound:>8} | {max_class:>14} {max_vertex:>14}");
        rows.push(
            Row::new(format!("k={k}"))
                .push("bound", bound as f64)
                .push("max_class_hits", max_class as f64),
        );
    }

    // Generalized segment boundaries.
    let g = build_cdag(&base, 3);
    let order = recursive_order(&g);
    let counted: Vec<bool> = g.vertices().map(|v| g.is_output(v)).collect();
    let segments = analyze_generalized(&g, &order, &counted, 16);
    let min_ratio = segments
        .iter()
        .map(|s| s.class_boundary as f64 / s.meta_boundary.max(1) as f64)
        .fold(f64::INFINITY, f64::min);
    let min_eq2 = segments
        .iter()
        .map(|s| s.class_boundary as f64 / s.counted as f64)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\ngeneralized segments: {} total, min class/meta boundary ratio {:.3},",
        segments.len(),
        min_ratio
    );
    println!("min class-boundary/|S̄| ratio {min_eq2:.3} (Equation 2 needs ≥ 1/12 = 0.083)");
    println!("\nValue-class merging shrinks boundaries only by a bounded factor and");
    println!("Equation 2 survives — empirical support for the Section 8 conjecture.");
    write_record("e12_extension", &rows);
}
