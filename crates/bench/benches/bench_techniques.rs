//! Criterion bench: the prior-technique implementations — max-flow
//! dominators, exact edge expansion, Loomis–Whitney projections — whose
//! cost matters for the E14 museum sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use mmio_algos::classical::classical;
use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_core::dominator::min_dominator_size;
use mmio_core::expansion::SmallGraph;
use mmio_core::loomis_whitney::projections;
use std::hint::black_box;

fn bench_dominator(c: &mut Criterion) {
    let g = build_cdag(&strassen(), 3);
    let products: Vec<_> = g.products().collect();
    c.bench_function("dominator_maxflow_r3", |b| {
        b.iter(|| black_box(min_dominator_size(&g, &products)))
    });
}

fn bench_expansion(c: &mut Criterion) {
    let g = build_cdag(&strassen(), 1);
    let d1 = SmallGraph::decoding_graph(&g);
    c.bench_function("expansion_exact_d1", |b| {
        b.iter(|| black_box(d1.exact_expansion()))
    });
}

fn bench_lw(c: &mut Criterion) {
    let g = build_cdag(&classical(2), 3);
    let products: Vec<_> = g.products().collect();
    c.bench_function("loomis_whitney_projections_512", |b| {
        b.iter(|| black_box(projections(&g, &products)))
    });
}

criterion_group!(benches, bench_dominator, bench_expansion, bench_lw);
criterion_main!(benches);
