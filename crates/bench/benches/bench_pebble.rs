//! Criterion bench: memory-hierarchy simulator throughput — the
//! `ablation_replacement` measurement (cost of Belady's future-knowledge
//! vs LRU's recency bookkeeping) and order sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_pebble::orders::{rank_order, recursive_order};
use mmio_pebble::policy::{Belady, Lru};
use mmio_pebble::AutoScheduler;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let g = build_cdag(&strassen(), 4);
    let order = recursive_order(&g);
    let mut group = c.benchmark_group("ablation_replacement");
    for m in [16usize, 128] {
        group.bench_with_input(BenchmarkId::new("lru", m), &m, |b, &m| {
            let sched = AutoScheduler::new(&g, m);
            b.iter(|| black_box(sched.run(&order, &mut Lru::new(g.n_vertices()))))
        });
        group.bench_with_input(BenchmarkId::new("belady", m), &m, |b, &m| {
            let sched = AutoScheduler::new(&g, m);
            b.iter(|| black_box(sched.run(&order, &mut Belady)))
        });
    }
    group.finish();
}

fn bench_orders(c: &mut Criterion) {
    let g = build_cdag(&strassen(), 4);
    let mut group = c.benchmark_group("simulate_by_order");
    let rec = recursive_order(&g);
    let rank = rank_order(&g);
    group.bench_function("recursive", |b| {
        let sched = AutoScheduler::new(&g, 64);
        b.iter(|| black_box(sched.run(&rec, &mut Belady)))
    });
    group.bench_function("rank", |b| {
        let sched = AutoScheduler::new(&g, 64);
        b.iter(|| black_box(sched.run(&rank, &mut Belady)))
    });
    group.finish();
}

criterion_group!(benches, bench_policies, bench_orders);
criterion_main!(benches);
