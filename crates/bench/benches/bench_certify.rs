//! Criterion bench: the end-to-end lower-bound certificate pipeline
//! (Lemma 1 selection → counted mask → segment partition → per-segment
//! boundaries), which dominates the experiment harness runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_core::theorem1::{certify_with, CertifyParams};
use mmio_pebble::orders::recursive_order;
use std::hint::black_box;

fn bench_certify(c: &mut Criterion) {
    let mut group = c.benchmark_group("certify");
    group.sample_size(10);
    for r in [3u32, 4] {
        let g = build_cdag(&strassen(), r);
        let order = recursive_order(&g);
        group.bench_with_input(BenchmarkId::new("strassen", r), &r, |b, _| {
            b.iter(|| black_box(certify_with(&g, 8, &order, CertifyParams::SMALL)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_certify);
criterion_main!(benches);
