//! Criterion bench: routing construction and verification throughput —
//! Lemma 3 chains, Claim 1 decoding routings, and the full Routing Theorem
//! (E3/E4/E5's engines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_core::chains::ChainRouter;
use mmio_core::claim1::DecodingRouting;
use mmio_core::routing::VertexHitCounter;
use mmio_core::theorem2::InOutRouting;
use std::hint::black_box;

fn bench_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma3_chains");
    for k in [1u32, 2, 3] {
        let g = build_cdag(&strassen(), k);
        group.bench_with_input(BenchmarkId::new("route_all", k), &g, |b, g| {
            let router = ChainRouter::new(g).unwrap();
            b.iter(|| {
                let mut counter = VertexHitCounter::new(g, None);
                router.route_all(&mut counter);
                black_box(counter.stats())
            })
        });
    }
    group.finish();
}

fn bench_claim1(c: &mut Criterion) {
    let mut group = c.benchmark_group("claim1_decoding");
    group.sample_size(10);
    for k in [2u32, 3, 4] {
        let g = build_cdag(&strassen(), k);
        group.bench_with_input(BenchmarkId::new("verify", k), &g, |b, g| {
            let routing = DecodingRouting::new(g).unwrap();
            b.iter(|| black_box(routing.verify()))
        });
    }
    group.finish();
}

fn bench_theorem2(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_theorem");
    group.sample_size(10);
    for k in [1u32, 2] {
        let g = build_cdag(&strassen(), k);
        group.bench_with_input(BenchmarkId::new("verify", k), &g, |b, g| {
            let routing = InOutRouting::new(g).unwrap();
            b.iter(|| black_box(routing.verify()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chains, bench_claim1, bench_theorem2);
criterion_main!(benches);
