//! Criterion bench: actual matrix-multiplication runtime — classical loop
//! orders vs hand-written Strassen vs the generic bilinear executor, plus
//! the `ablation_cutoff` sweep (where to stop recursing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmio_algos::strassen::strassen as strassen_base;
use mmio_algos::Executor;
use mmio_matrix::classical::{multiply_blocked, multiply_ikj, multiply_naive};
use mmio_matrix::random::random_f64_matrix;
use mmio_matrix::strassen;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_classical(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("classical_runtime");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let a = random_f64_matrix(n, n, &mut rng);
        let b = random_f64_matrix(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| black_box(multiply_naive(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("ikj", n), &n, |bch, _| {
            bch.iter(|| black_box(multiply_ikj(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked32", n), &n, |bch, _| {
            bch.iter(|| black_box(multiply_blocked(&a, &b, 32)))
        });
    }
    group.finish();
}

fn bench_strassen_crossover(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("strassen_crossover");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let a = random_f64_matrix(n, n, &mut rng);
        let b = random_f64_matrix(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("strassen_c64", n), &n, |bch, _| {
            bch.iter(|| black_box(strassen::multiply(&a, &b, 64)))
        });
        group.bench_with_input(BenchmarkId::new("ikj", n), &n, |bch, _| {
            bch.iter(|| black_box(multiply_ikj(&a, &b)))
        });
    }
    group.finish();
}

fn bench_cutoff_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 256usize;
    let a = random_f64_matrix(n, n, &mut rng);
    let b = random_f64_matrix(n, n, &mut rng);
    let mut group = c.benchmark_group("ablation_cutoff");
    group.sample_size(10);
    for cutoff in [8usize, 16, 32, 64, 128] {
        group.bench_with_input(
            BenchmarkId::new("generic_exec", cutoff),
            &cutoff,
            |bch, &co| {
                let exec = Executor::new(strassen_base(), co);
                bch.iter(|| black_box(exec.multiply(&a, &b)))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_classical,
    bench_strassen_crossover,
    bench_cutoff_ablation
);
criterion_main!(benches);
