//! Criterion bench: CDAG construction and meta-vertex computation
//! throughput across recursion depths (the `ablation_graph` data point:
//! cost of the explicit-CSR representation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmio_algos::laderman::laderman;
use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_cdag::MetaVertices;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdag_build");
    for r in [2u32, 3, 4, 5] {
        let base = strassen();
        group.bench_with_input(BenchmarkId::new("strassen", r), &r, |b, &r| {
            b.iter(|| black_box(build_cdag(&base, r)))
        });
    }
    let lad = laderman();
    for r in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::new("laderman", r), &r, |b, &r| {
            b.iter(|| black_box(build_cdag(&lad, r)))
        });
    }
    group.finish();
}

fn bench_meta(c: &mut Criterion) {
    let mut group = c.benchmark_group("meta_vertices");
    for r in [3u32, 4, 5] {
        let g = build_cdag(&strassen(), r);
        group.bench_with_input(BenchmarkId::new("strassen", r), &g, |b, g| {
            b.iter(|| black_box(MetaVertices::compute(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_meta);
criterion_main!(benches);
