//! Golden tests: every seeded defect class must be caught with its exact
//! diagnostic code, and the real algorithm registry must produce zero
//! errors (no false positives).

use mmio_algos::registry::all_base_graphs;
use mmio_algos::strassen::strassen;
use mmio_algos::synthetic::with_duplicated_combination;
use mmio_analyze::{
    analyze_base_at, audit_fact1, audit_routing, audit_schedule, codes, lint_base, lint_facts,
    GraphFacts, Report, RoutingCertificate, Severity,
};
use mmio_cdag::build::build_cdag;
use mmio_cdag::fact1::Subcomputation;
use mmio_cdag::{BaseGraph, Cdag};
use mmio_matrix::{Matrix, Rational};
use mmio_pebble::{Action, Schedule};

fn tiny() -> Cdag {
    let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
    build_cdag(&BaseGraph::new("tiny", 1, one.clone(), one.clone(), one), 1)
}

/// A well-formed facts view of a 4-vertex diamond, mutated per defect.
fn diamond() -> GraphFacts {
    GraphFacts {
        preds: vec![vec![], vec![0], vec![0], vec![1, 2]],
        succs: vec![vec![1, 2], vec![3], vec![3], vec![]],
        rank: vec![0, 1, 1, 2],
        is_input: vec![true, false, false, false],
        is_output: vec![false, false, false, true],
        copy_parent: vec![None, Some(0), None, None],
        copy_coeff_one: vec![false, true, false, false],
    }
}

/// Asserts `report` contains `code` at Error severity and no other errors.
fn assert_only_error(report: &Report, code: &str) {
    assert!(
        report.has_code(code),
        "expected {code}, got {:?}",
        report.codes()
    );
    for d in report.errors() {
        assert_eq!(d.code, code, "unexpected extra error: {d}");
    }
}

// ---- Defect class 1: cycle -------------------------------------------------

#[test]
fn defect_cycle() {
    let mut f = diamond();
    f.preds[2].push(3);
    f.succs[3].push(2);
    let mut report = Report::new();
    let audit = lint_facts(&f, &mut report);
    assert!(
        report.has_code(codes::CDAG_CYCLE),
        "expected MMIO-A001, got {:?}",
        report.codes()
    );
    // A back-edge necessarily violates rank monotonicity too; nothing else
    // may fire.
    for d in report.errors() {
        assert!(
            d.code == codes::CDAG_CYCLE || d.code == codes::CDAG_RANK_MISMATCH,
            "unexpected extra error: {d}"
        );
    }
    assert!(audit.topo_order.is_none(), "a cycle admits no witness");
}

// ---- Defect class 2: rank mismatch -----------------------------------------

#[test]
fn defect_rank_mismatch() {
    let mut f = diamond();
    f.rank[3] = 1; // same rank as its predecessors
    let mut report = Report::new();
    lint_facts(&f, &mut report);
    assert_only_error(&report, codes::CDAG_RANK_MISMATCH);
}

// ---- Defect class 3: Fact 1 copy miscount ----------------------------------

#[test]
fn defect_fact1_miscount() {
    let g = build_cdag(&strassen(), 2);
    let mut report = Report::new();
    // Claim 8 copies of G_1 where Fact 1 demands b^{r-k} = 7.
    audit_fact1(&g, 1, 8, &mut report);
    assert_only_error(&report, codes::CDAG_FACT1);
}

// ---- Defect class 4: multi-use linear combination --------------------------

#[test]
fn defect_multi_use_combination() {
    let base = with_duplicated_combination(&strassen());
    let mut report = Report::new();
    lint_base(&base, &mut report);
    assert_only_error(&report, codes::CDAG_MULTI_USE);
}

// ---- Defect class 5: cache capacity overflow -------------------------------

#[test]
fn defect_capacity_overflow() {
    let g = tiny();
    let mut actions = vec![Action::Load(g.input_a(0, 0)), Action::Load(g.input_b(0, 0))];
    actions.extend(
        g.vertices()
            .filter(|&v| !g.is_input(v))
            .map(Action::Compute),
    );
    actions.push(Action::Store(g.outputs().next().unwrap()));
    let s = Schedule { actions };
    // The same schedule is legal at M=16 but overflows at M=3.
    let mut clean = Report::new();
    audit_schedule(&g, &s, 16, &mut clean);
    assert!(!clean.has_errors());
    let mut report = Report::new();
    let audit = audit_schedule(&g, &s, 3, &mut report);
    assert_only_error(&report, codes::SCHED_CAPACITY);
    assert!(audit.first_violation.is_some());
}

// ---- Defect class 6: compute with missing operand --------------------------

#[test]
fn defect_missing_operand() {
    let g = tiny();
    let prod = g.products().next().unwrap();
    let s = Schedule {
        actions: vec![Action::Compute(prod)],
    };
    let mut report = Report::new();
    let audit = audit_schedule(&g, &s, 16, &mut report);
    assert!(report.has_code(codes::SCHED_MISSING_OPERAND));
    assert_eq!(audit.first_violation, Some(0));
}

// ---- Defect class 7: output never written ----------------------------------

#[test]
fn defect_unwritten_output() {
    let g = tiny();
    let mut actions = vec![Action::Load(g.input_a(0, 0)), Action::Load(g.input_b(0, 0))];
    actions.extend(
        g.vertices()
            .filter(|&v| !g.is_input(v))
            .map(Action::Compute),
    );
    // No Store action at all.
    let s = Schedule { actions };
    let mut report = Report::new();
    audit_schedule(&g, &s, 16, &mut report);
    assert_only_error(&report, codes::SCHED_OUTPUT_NOT_STORED);
}

// ---- Defect class 8: inflated routing hit count ----------------------------

#[test]
fn defect_inflated_hit_count() {
    let g = build_cdag(&strassen(), 1);
    let input = g.inputs().next().unwrap();
    let combo = g.succs(input)[0];
    // Seven paths through one vertex against a claimed 6-routing.
    let cert = RoutingCertificate {
        claimed_bound: 6,
        expected_paths: Some(7),
        paths: vec![vec![input, combo]; 7],
    };
    let mut report = Report::new();
    let audit = audit_routing(&g, &cert, &mut report);
    assert!(report.has_code(codes::ROUTE_VERTEX_OVERLOAD));
    assert_eq!(audit.max_vertex_hits, 7);
    for d in report.errors() {
        assert!(
            d.code == codes::ROUTE_VERTEX_OVERLOAD || d.code == codes::ROUTE_META_OVERLOAD,
            "unexpected error {d}"
        );
    }
}

// ---- Extra defect classes beyond the required eight ------------------------

#[test]
fn defect_copy_rule_violation() {
    let mut f = diamond();
    f.copy_coeff_one[1] = false; // copy edge with a non-unit coefficient
    let mut report = Report::new();
    lint_facts(&f, &mut report);
    assert_only_error(&report, codes::CDAG_COPY_RULE);
}

#[test]
fn defect_incorrect_tensor() {
    let base = BaseGraph::new(
        "wrong",
        1,
        Matrix::from_vec(1, 1, vec![Rational::integer(2)]),
        Matrix::from_vec(1, 1, vec![Rational::ONE]),
        Matrix::from_vec(1, 1, vec![Rational::ONE]),
    );
    let mut report = Report::new();
    lint_base(&base, &mut report);
    assert!(report.has_code(codes::CDAG_INCORRECT));
}

#[test]
fn defect_bad_load_and_recompute() {
    let g = tiny();
    let prod = g.products().next().unwrap();
    let mut report = Report::new();
    audit_schedule(
        &g,
        &Schedule {
            actions: vec![Action::Load(prod)],
        },
        16,
        &mut report,
    );
    assert!(report.has_code(codes::SCHED_BAD_LOAD));

    let a = g.input_a(0, 0);
    let combo = g.succs(a)[0];
    let mut report = Report::new();
    audit_schedule(
        &g,
        &Schedule {
            actions: vec![
                Action::Load(a),
                Action::Compute(combo),
                Action::Compute(combo),
            ],
        },
        16,
        &mut report,
    );
    assert!(report.has_code(codes::SCHED_BAD_COMPUTE));
}

#[test]
fn defect_wrong_path_count() {
    let g = build_cdag(&strassen(), 1);
    let input = g.inputs().next().unwrap();
    let combo = g.succs(input)[0];
    let cert = RoutingCertificate {
        claimed_bound: 100,
        expected_paths: Some(512), // 2a^k·a^k for k=1
        paths: vec![vec![input, combo]],
    };
    let mut report = Report::new();
    audit_routing(&g, &cert, &mut report);
    assert_only_error(&report, codes::ROUTE_PATH_COUNT);
}

// ---- Zero false positives on the registry ----------------------------------

#[test]
fn registry_is_error_free() {
    for base in all_base_graphs() {
        // Rank sweep mirrors `mmio analyze all`; depth capped for the large
        // tensor-square graphs to keep debug-mode test time sane.
        let max_r = if base.b() > 30 { 2 } else { 3 };
        for r in 1..=max_r {
            let report = analyze_base_at(&base, r);
            assert!(
                !report.has_errors(),
                "{} at r={r}: {:?}",
                base.name(),
                report.errors().map(|d| d.to_string()).collect::<Vec<_>>()
            );
        }
    }
}

/// The `+dummy` variant's isolated decoding vertex must surface as a
/// *warning* (dangling), never an error.
#[test]
fn dummy_product_is_warning_not_error() {
    let base = mmio_algos::synthetic::with_dummy_product(&strassen());
    let report = analyze_base_at(&base, 1);
    assert!(!report.has_errors());
    assert!(report.has_code(codes::CDAG_DANGLING));
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.code != codes::CDAG_DANGLING || d.severity == Severity::Warning));
}

/// Full-pipeline smoke: auto-generated schedule and Theorem 2 routing
/// certificate for Strassen both audit clean.
#[test]
fn constructed_artifacts_audit_clean() {
    use mmio_core::theorem2::InOutRouting;
    use mmio_pebble::orders::recursive_order;
    use mmio_pebble::policy::Belady;
    use mmio_pebble::AutoScheduler;

    let base = strassen();
    let g = build_cdag(&base, 2);

    let m = 32;
    let order = recursive_order(&g);
    let (_, sched) = AutoScheduler::new(&g, m).run_recorded(&order, &mut Belady);
    let mut report = Report::new();
    audit_schedule(&g, &sched, m, &mut report);
    assert!(!report.has_errors(), "{:?}", report.diagnostics);

    let routing = InOutRouting::new(&g).expect("Strassen satisfies the hypotheses");
    let ak = 4u64.pow(2); // a^k with a = n0² = 4, k = 2
    let mut paths = Vec::with_capacity((2 * ak * ak) as usize);
    for side in [mmio_core::deps::DepSide::A, mmio_core::deps::DepSide::B] {
        for in_e in 0..ak {
            let (ir, ic) = mmio_core::deps::unpack_entry(in_e, 2, 2);
            for out_e in 0..ak {
                let (or_, oc) = mmio_core::deps::unpack_entry(out_e, 2, 2);
                paths.push(routing.path(side, ir, ic, or_, oc));
            }
        }
    }
    let cert = RoutingCertificate {
        claimed_bound: routing.theorem2_bound(),
        expected_paths: Some(2 * ak * ak),
        paths,
    };
    let mut report = Report::new();
    let audit = audit_routing(&g, &cert, &mut report);
    assert!(!report.has_errors(), "{:?}", report.diagnostics);
    assert!(audit.max_vertex_hits <= routing.theorem2_bound());

    // Fact 1 with the honest count is clean at every depth.
    let mut report = Report::new();
    for k in 0..=2 {
        audit_fact1(&g, k, Subcomputation::count(&g, k), &mut report);
    }
    assert!(!report.has_errors());
}
