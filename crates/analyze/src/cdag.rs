//! CDAG structure lints (`MMIO-Axxx`).
//!
//! Two layers of checks:
//!
//! - [`lint_facts`] runs on a [`GraphFacts`] view: acyclicity (with a
//!   topological-order witness), rank consistency along every edge,
//!   dangling/unreachable vertices, and the meta-vertex copy rules;
//! - [`lint_base`] runs on a [`BaseGraph`]: the tensor identity, the
//!   single-use assumption, and the Lemma 1 hypothesis;
//! - [`audit_fact1`] re-verifies the Fact 1 decomposition of a built `G_r`
//!   against a claimed copy count.

use crate::codes;
use crate::diag::{Report, Severity, Span};
use crate::facts::GraphFacts;
use mmio_cdag::base::Side;
use mmio_cdag::build::build_cdag;
use mmio_cdag::fact1::Subcomputation;
use mmio_cdag::{index, BaseGraph, Cdag};

/// Witness data produced by [`lint_facts`] alongside the diagnostics.
#[derive(Clone, Debug, Default)]
pub struct CdagAudit {
    /// A topological order of all vertices — the acyclicity witness.
    /// `None` when a cycle was found.
    pub topo_order: Option<Vec<u32>>,
}

/// Runs the structural lints over `facts`, appending findings to `report`.
pub fn lint_facts(facts: &GraphFacts, report: &mut Report) -> CdagAudit {
    let n = facts.n();

    // --- Acyclicity (Kahn's algorithm); the produced order is the witness.
    let mut indeg: Vec<usize> = facts.preds.iter().map(Vec::len).collect();
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &s in &facts.succs[v as usize] {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                queue.push(s);
            }
        }
    }
    let acyclic = order.len() == n;
    if !acyclic {
        // Every vertex with remaining in-degree sits on or behind a cycle;
        // report one representative.
        let on_cycle = (0..n).find(|&v| indeg[v] > 0).unwrap_or(0);
        report.push_with_hint(
            codes::CDAG_CYCLE,
            Severity::Error,
            Span::Vertex(on_cycle as u32),
            format!(
                "no topological order: {} of {} vertices lie on or behind a cycle",
                n - order.len(),
                n
            ),
            "a CDAG must be acyclic; check the edge construction",
        );
    }

    // --- Rank consistency: every edge must strictly increase the rank.
    for (v, preds) in facts.preds.iter().enumerate() {
        for &p in preds {
            if facts.rank[p as usize] >= facts.rank[v] {
                report.push(
                    codes::CDAG_RANK_MISMATCH,
                    Severity::Error,
                    Span::Vertex(v as u32),
                    format!(
                        "edge v{p}→v{v} does not increase rank ({} ≥ {})",
                        facts.rank[p as usize], facts.rank[v]
                    ),
                );
            }
        }
    }

    // --- Dangling: a non-output whose value is never read. Aggregated past
    // a few instances — a dummy product at depth r danglifies every copy.
    let dangling: Vec<usize> = (0..n)
        .filter(|&v| facts.succs[v].is_empty() && !facts.is_output[v])
        .collect();
    for &v in dangling.iter().take(4) {
        report.push_with_hint(
            codes::CDAG_DANGLING,
            Severity::Warning,
            Span::Vertex(v as u32),
            "non-output vertex has no successors (its value is never used)",
            "dead products (e.g. dummy multiplications) are legal but wasted work",
        );
    }
    if dangling.len() > 4 {
        report.push(
            codes::CDAG_DANGLING,
            Severity::Warning,
            Span::Global,
            format!("... and {} more dangling vertices", dangling.len() - 4),
        );
    }

    // --- Unreachable from inputs (only meaningful on an acyclic graph).
    if acyclic {
        let mut reach = vec![false; n];
        for &v in &order {
            let vi = v as usize;
            reach[vi] = facts.is_input[vi] || facts.preds[vi].iter().any(|&p| reach[p as usize]);
        }
        let unreachable: Vec<usize> = (0..n).filter(|&v| !reach[v]).collect();
        for &v in unreachable.iter().take(4) {
            report.push(
                codes::CDAG_UNREACHABLE,
                Severity::Warning,
                Span::Vertex(v as u32),
                "vertex is unreachable from every input",
            );
        }
        if unreachable.len() > 4 {
            report.push(
                codes::CDAG_UNREACHABLE,
                Severity::Warning,
                Span::Global,
                format!(
                    "... and {} more unreachable vertices",
                    unreachable.len() - 4
                ),
            );
        }
    }

    // --- Meta-vertex copy rules: a copy has exactly one predecessor (its
    // declared parent) and copies with coefficient 1.
    for v in 0..n {
        let Some(parent) = facts.copy_parent[v] else {
            continue;
        };
        if facts.preds[v].len() != 1 || facts.preds[v][0] != parent {
            report.push(
                codes::CDAG_COPY_RULE,
                Severity::Error,
                Span::Vertex(v as u32),
                format!(
                    "copy vertex must have its parent v{parent} as sole predecessor (has {:?})",
                    facts.preds[v]
                ),
            );
        } else if !facts.copy_coeff_one[v] {
            report.push(
                codes::CDAG_COPY_RULE,
                Severity::Error,
                Span::Vertex(v as u32),
                "copy edge must carry coefficient 1",
            );
        }
    }

    CdagAudit {
        topo_order: acyclic.then_some(order),
    }
}

/// Lints the base graph itself: tensor identity, single-use assumption,
/// Lemma 1 hypothesis.
pub fn lint_base(base: &BaseGraph, report: &mut Report) {
    if let Err(errs) = base.verify_correctness() {
        report.push(
            codes::CDAG_INCORRECT,
            Severity::Error,
            Span::Global,
            format!(
                "tensor identity violated at {} triple(s); first: {}",
                errs.len(),
                errs[0]
            ),
        );
    }

    // Single-use assumption: locate the offending duplicated row pair so the
    // diagnostic is actionable, rather than just a boolean.
    for side in [Side::A, Side::B] {
        let (enc, name) = match side {
            Side::A => (base.enc(Side::A), "enc_a"),
            Side::B => (base.enc(Side::B), "enc_b"),
        };
        for m1 in 0..base.b() {
            if base.row_is_trivial(side, m1) {
                continue;
            }
            for m2 in (m1 + 1)..base.b() {
                if enc.row(m1) == enc.row(m2) {
                    report.push_with_hint(
                        codes::CDAG_MULTI_USE,
                        Severity::Error,
                        Span::Row {
                            matrix: name,
                            row: m2,
                        },
                        format!(
                            "nontrivial combination of row {m1} is reused by row {m2} \
                             (feeds two multiplications)"
                        ),
                        "the paper's single-use assumption (Section 3) forbids this",
                    );
                }
            }
        }
    }

    if !base.lemma1_condition_holds() {
        report.push(
            codes::CDAG_LEMMA1,
            Severity::Warning,
            Span::Global,
            "an encoding has only trivial rows (no linear combinations taken); \
             Lemma 1 and the fast lower bound do not apply",
        );
    }
}

/// Re-verifies the Fact 1 decomposition at depth `k` against a claimed copy
/// count: the middle `2(k+1)` ranks of `G_r` must consist of exactly
/// `claimed_copies` vertex-disjoint copies of `G_k`, and that number must be
/// `b^{r-k}`.
pub fn audit_fact1(g: &Cdag, k: u32, claimed_copies: u64, report: &mut Report) {
    let expected = index::pow(g.base().b(), g.r() - k);
    if claimed_copies != expected {
        report.push(
            codes::CDAG_FACT1,
            Severity::Error,
            Span::Global,
            format!(
                "claimed {claimed_copies} copies of G_{k}, but Fact 1 demands \
                 b^(r-k) = {expected}"
            ),
        );
        return;
    }

    // Structural verification: enumerate each copy via the Fact 1
    // isomorphism and check pairwise disjointness and exact coverage of the
    // middle levels.
    let gk = build_cdag(g.base(), k);
    let mut owner: Vec<Option<u64>> = vec![None; g.n_vertices()];
    let mut total = 0u64;
    for sub in Subcomputation::all(g, k) {
        for v in sub.vertices(&gk) {
            total += 1;
            if let Some(prev) = owner[v.idx()] {
                report.push(
                    codes::CDAG_FACT1,
                    Severity::Error,
                    Span::Vertex(v.0),
                    format!(
                        "vertex belongs to subcomputations {prev} and {} — copies \
                         are not vertex-disjoint",
                        sub.prefix
                    ),
                );
                return;
            }
            owner[v.idx()] = Some(sub.prefix);
        }
    }
    let want_total = expected * gk.n_vertices() as u64;
    if total != want_total {
        report.push(
            codes::CDAG_FACT1,
            Severity::Error,
            Span::Global,
            format!("decomposition covers {total} vertices; b^(r-k)·|V(G_{k})| = {want_total}"),
        );
    }
}

/// Runs every CDAG pass on a base graph at recursion depth `r`:
/// base lints, structural lints of the built `G_r`, and the Fact 1 audit at
/// every depth `0..=r`.
pub fn analyze_base_at(base: &BaseGraph, r: u32) -> Report {
    let mut report = Report::new();
    lint_base(base, &mut report);
    let g = build_cdag(base, r);
    let facts = GraphFacts::from_cdag(&g);
    lint_facts(&facts, &mut report);
    for k in 0..=r {
        audit_fact1(&g, k, Subcomputation::count(&g, k), &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built facts for a 3-vertex chain in → mid → out.
    fn chain() -> GraphFacts {
        GraphFacts {
            preds: vec![vec![], vec![0], vec![1]],
            succs: vec![vec![1], vec![2], vec![]],
            rank: vec![0, 1, 2],
            is_input: vec![true, false, false],
            is_output: vec![false, false, true],
            copy_parent: vec![None; 3],
            copy_coeff_one: vec![false; 3],
        }
    }

    #[test]
    fn clean_chain_has_no_findings() {
        let mut report = Report::new();
        let audit = lint_facts(&chain(), &mut report);
        assert!(report.diagnostics.is_empty());
        assert_eq!(audit.topo_order, Some(vec![0, 1, 2]));
    }

    #[test]
    fn cycle_detected_with_no_witness() {
        let mut f = chain();
        // Close the loop: out → mid.
        f.preds[1].push(2);
        f.succs[2].push(1);
        let mut report = Report::new();
        let audit = lint_facts(&f, &mut report);
        assert!(report.has_code(codes::CDAG_CYCLE));
        assert!(audit.topo_order.is_none());
    }

    #[test]
    fn rank_inversion_detected() {
        let mut f = chain();
        f.rank = vec![0, 2, 1]; // mid outranks out
        let mut report = Report::new();
        lint_facts(&f, &mut report);
        assert!(report.has_code(codes::CDAG_RANK_MISMATCH));
    }

    #[test]
    fn unreachable_vertex_detected() {
        let mut f = chain();
        // Cut in → mid (both directions): mid and out still form a valid
        // DAG but no input reaches them.
        f.preds[1].clear();
        f.succs[0].clear();
        let mut report = Report::new();
        lint_facts(&f, &mut report);
        assert!(report.has_code(codes::CDAG_UNREACHABLE));
    }

    #[test]
    fn trivial_encoding_fires_lemma1_warning() {
        // classical(2) takes no linear combinations, so Lemma 1's
        // hypothesis fails and the base lint must say so.
        let mut report = Report::new();
        lint_base(&mmio_algos::classical::classical(2), &mut report);
        assert!(report.has_code(codes::CDAG_LEMMA1));
        // A base that does combine rows stays clean of that warning.
        let mut clean = Report::new();
        lint_base(&mmio_algos::strassen::strassen(), &mut clean);
        assert!(!clean.has_code(codes::CDAG_LEMMA1));
    }
}
