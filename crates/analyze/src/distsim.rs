//! Distributed-run auditing: independent re-verification of a traced
//! `mmio_parallel::distsim` execution (`MMIO-Dxxx`).
//!
//! The simulator *claims* totals — words moved, per-rank sent/received
//! counters, critical-path and local-I/O maxima. This pass trusts none of
//! them: it replays the recorded [`DistEvent`] stream against the CDAG and
//! the assignment, rebuilding every processor's cache and every counter
//! from scratch, and reports any disagreement as a diagnostic. Double-entry
//! bookkeeping for the distributed machine, in the same spirit as the
//! schedule and routing audits:
//!
//! - **`MMIO-D001`** conservation: `total_words == Σ sent == Σ received`,
//!   per-rank counters match the event stream, recounted critical path and
//!   local-I/O maxima match the claims;
//! - **`MMIO-D002`** availability: a value is sent only after its owner
//!   computed it (inputs are born available), and every compute finds its
//!   operands resident in the computing rank's cache;
//! - **`MMIO-D003`** assignment totality: every non-input vertex executes
//!   exactly once, on its assigned rank;
//! - **`MMIO-D004`** capacity: no cache ever holds more than `M` values,
//!   and evict/insert events stay consistent with cache membership;
//! - **`MMIO-D005`** matching: every receive pairs with an outstanding
//!   send of the same value on the same channel.

use crate::codes;
use crate::diag::{Report, Severity, Span};
use mmio_cdag::{Cdag, VertexId};
use mmio_parallel::assign::Assignment;
use mmio_parallel::distsim::{DistEvent, DistTrace};
use std::collections::HashMap;

/// Counters from one distsim audit (alongside the diagnostics pushed into
/// the report).
#[derive(Clone, Copy, Debug, Default)]
pub struct DistAudit {
    /// Events replayed.
    pub events: usize,
    /// Compute events seen.
    pub execs: u64,
    /// Words recounted from matched send/recv pairs.
    pub words: u64,
    /// Maximum cache occupancy observed on any rank.
    pub max_occupancy: usize,
    /// Whether the audit found no errors.
    pub ok: bool,
}

/// Replays `trace` against `g` and `assignment`, pushing any `MMIO-Dxxx`
/// finding into `report`. See the module docs for the checked properties.
pub fn audit_dist_trace(
    g: &Cdag,
    assignment: &Assignment,
    trace: &DistTrace,
    report: &mut Report,
) -> DistAudit {
    let p = trace.p as usize;
    let n = g.n_vertices();
    let mut audit = DistAudit {
        events: trace.events.len(),
        ..DistAudit::default()
    };
    let before = report.error_count();

    let is_input = |v: u32| g.preds(VertexId(v)).is_empty();
    let bad_vertex = |v: u32| (v as usize) >= n;
    let bad_proc = |r: u32| (r as usize) >= p;

    // Replay state, rebuilt from nothing.
    let mut resident = vec![vec![false; n]; p];
    let mut occupancy = vec![0usize; p];
    let mut computed = vec![false; n];
    let mut exec_on: Vec<Option<u32>> = vec![None; n];
    let mut in_flight: HashMap<(u32, u32, u32), u64> = HashMap::new();
    let mut sent = vec![0u64; p];
    let mut received = vec![0u64; p];
    let mut local_io = vec![0u64; p];

    for (i, &e) in trace.events.iter().enumerate() {
        let step = Span::Step(i);
        // Malformed coordinates make the rest of the replay meaningless
        // for this event; report and skip it.
        let (procs, vs): (Vec<u32>, Vec<u32>) = match e {
            DistEvent::Evict { proc, v } | DistEvent::Insert { proc, v, .. } => {
                (vec![proc], vec![v])
            }
            DistEvent::Exec { proc, v } => (vec![proc], vec![v]),
            DistEvent::Send { from, to, v } => (vec![from, to], vec![v]),
            DistEvent::Recv { to, from, v } => (vec![to, from], vec![v]),
        };
        if procs.iter().any(|&r| bad_proc(r)) || vs.iter().any(|&v| bad_vertex(v)) {
            report.push(
                codes::DIST_ASSIGNMENT,
                Severity::Error,
                step,
                format!("event {e:?} names a rank >= {p} or vertex >= {n}"),
            );
            continue;
        }
        match e {
            DistEvent::Evict { proc, v } => {
                let (proc_u, v_u) = (proc as usize, v as usize);
                if !resident[proc_u][v_u] {
                    report.push(
                        codes::DIST_OVER_CAPACITY,
                        Severity::Error,
                        Span::Proc(proc),
                        format!("evict of v{v}, which is not in rank {proc}'s cache"),
                    );
                } else {
                    resident[proc_u][v_u] = false;
                    occupancy[proc_u] -= 1;
                }
            }
            DistEvent::Insert { proc, v, charged } => {
                let (proc_u, v_u) = (proc as usize, v as usize);
                if resident[proc_u][v_u] {
                    report.push(
                        codes::DIST_OVER_CAPACITY,
                        Severity::Error,
                        Span::Proc(proc),
                        format!("insert of v{v}, already in rank {proc}'s cache"),
                    );
                } else {
                    resident[proc_u][v_u] = true;
                    occupancy[proc_u] += 1;
                    audit.max_occupancy = audit.max_occupancy.max(occupancy[proc_u]);
                    if occupancy[proc_u] > trace.m {
                        report.push_with_hint(
                            codes::DIST_OVER_CAPACITY,
                            Severity::Error,
                            Span::Proc(proc),
                            format!(
                                "rank {proc} holds {} values, capacity M = {}",
                                occupancy[proc_u], trace.m
                            ),
                            "evict before inserting",
                        );
                    }
                }
                if charged {
                    local_io[proc_u] += 1;
                }
            }
            DistEvent::Send { from, to, v } => {
                if !is_input(v) && !computed[v as usize] {
                    report.push(
                        codes::DIST_NOT_AVAILABLE,
                        Severity::Error,
                        Span::Proc(from),
                        format!("rank {from} sends v{v} before it was computed"),
                    );
                }
                *in_flight.entry((from, to, v)).or_insert(0) += 1;
                sent[from as usize] += 1;
            }
            DistEvent::Recv { to, from, v } => {
                match in_flight.get_mut(&(from, to, v)) {
                    Some(c) if *c > 0 => {
                        *c -= 1;
                        audit.words += 1;
                    }
                    _ => {
                        report.push_with_hint(
                            codes::DIST_UNMATCHED_RECV,
                            Severity::Error,
                            Span::Proc(to),
                            format!("rank {to} receives v{v} from {from} with no outstanding send"),
                            "every receive must pair with a prior send on the same channel",
                        );
                    }
                }
                received[to as usize] += 1;
            }
            DistEvent::Exec { proc, v } => {
                audit.execs += 1;
                let v_u = v as usize;
                if is_input(v) {
                    report.push(
                        codes::DIST_ASSIGNMENT,
                        Severity::Error,
                        Span::Vertex(v),
                        format!("input v{v} cannot be computed"),
                    );
                    continue;
                }
                if assignment.of(VertexId(v)) != proc {
                    report.push(
                        codes::DIST_ASSIGNMENT,
                        Severity::Error,
                        Span::Vertex(v),
                        format!(
                            "v{v} executed on rank {proc}, assigned to rank {}",
                            assignment.of(VertexId(v))
                        ),
                    );
                }
                if let Some(prev) = exec_on[v_u] {
                    report.push(
                        codes::DIST_ASSIGNMENT,
                        Severity::Error,
                        Span::Vertex(v),
                        format!("v{v} executed twice (ranks {prev} and {proc})"),
                    );
                }
                for &op in g.preds(VertexId(v)) {
                    if !resident[proc as usize][op.idx()] {
                        report.push(
                            codes::DIST_NOT_AVAILABLE,
                            Severity::Error,
                            Span::Vertex(v),
                            format!("operand {op:?} of v{v} not resident on rank {proc}"),
                        );
                    }
                }
                computed[v_u] = true;
                exec_on[v_u] = Some(proc);
            }
        }
    }

    // Terminal checks: totality and conservation.
    for v in g.vertices() {
        if !g.preds(v).is_empty() && exec_on[v.idx()].is_none() {
            report.push(
                codes::DIST_ASSIGNMENT,
                Severity::Error,
                Span::Vertex(v.idx() as u32),
                format!("non-input {v:?} never executed"),
            );
        }
    }
    let total_sent: u64 = sent.iter().sum();
    let total_received: u64 = received.iter().sum();
    let mut conserve = |what: &str, got: u64, claimed: u64| {
        if got != claimed {
            report.push(
                codes::DIST_CONSERVATION,
                Severity::Error,
                Span::Global,
                format!("{what}: recounted {got}, run claims {claimed}"),
            );
        }
    };
    conserve(
        "total words vs sends",
        total_sent,
        trace.claimed.total_words,
    );
    conserve(
        "total words vs receives",
        total_received,
        trace.claimed.total_words,
    );
    conserve(
        "critical path",
        sent.iter()
            .zip(&received)
            .map(|(&s, &r)| s + r)
            .max()
            .unwrap_or(0),
        trace.claimed.critical_path_words,
    );
    conserve(
        "max local I/O",
        local_io.iter().copied().max().unwrap_or(0),
        trace.claimed.max_local_io,
    );
    conserve(
        "total local I/O",
        local_io.iter().sum(),
        trace.claimed.total_local_io,
    );
    for r in 0..p {
        if sent[r] != trace.sent[r] || received[r] != trace.received[r] {
            report.push(
                codes::DIST_CONSERVATION,
                Severity::Error,
                Span::Proc(r as u32),
                format!(
                    "rank {r} counters: recounted sent {} / received {}, run claims {} / {}",
                    sent[r], received[r], trace.sent[r], trace.received[r]
                ),
            );
        }
    }

    audit.ok = report.error_count() == before;
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_parallel::assign::{by_top_subproblem, cyclic_per_rank};
    use mmio_parallel::distsim::simulate_traced;
    use mmio_pebble::orders::recursive_order;

    fn traced(p: u32, m: usize) -> (Cdag, Assignment, DistTrace) {
        let g = build_cdag(&strassen(), 2);
        let order = recursive_order(&g);
        let a = by_top_subproblem(&g, p);
        let t = simulate_traced(&g, &a, &order, m);
        (g, a, t)
    }

    #[test]
    fn clean_run_audits_clean() {
        let (g, a, t) = traced(7, 16);
        let mut report = Report::new();
        let audit = audit_dist_trace(&g, &a, &t, &mut report);
        assert!(audit.ok, "{:?}", report.diagnostics);
        assert_eq!(audit.words, t.claimed.total_words);
        assert!(audit.max_occupancy <= 16);
        assert!(audit.execs > 0);
    }

    #[test]
    fn cyclic_assignment_audits_clean_too() {
        let g = build_cdag(&strassen(), 2);
        let order = recursive_order(&g);
        let a = cyclic_per_rank(&g, 5);
        let t = simulate_traced(&g, &a, &order, 16);
        let mut report = Report::new();
        assert!(audit_dist_trace(&g, &a, &t, &mut report).ok);
    }

    #[test]
    fn dropped_recv_fires_conservation() {
        let (g, a, mut t) = traced(7, 16);
        let pos = t
            .events
            .iter()
            .position(|e| matches!(e, DistEvent::Recv { .. }))
            .expect("some communication");
        t.events.remove(pos);
        let mut report = Report::new();
        let audit = audit_dist_trace(&g, &a, &t, &mut report);
        assert!(!audit.ok);
        assert!(report.has_code(codes::DIST_CONSERVATION));
    }

    #[test]
    fn forged_recv_fires_unmatched() {
        let (g, a, mut t) = traced(7, 16);
        t.events.push(DistEvent::Recv {
            to: 0,
            from: 1,
            v: 0,
        });
        let mut report = Report::new();
        audit_dist_trace(&g, &a, &t, &mut report);
        assert!(report.has_code(codes::DIST_UNMATCHED_RECV));
    }

    #[test]
    fn dropped_exec_fires_assignment() {
        let (g, a, mut t) = traced(7, 16);
        let pos = t
            .events
            .iter()
            .position(|e| matches!(e, DistEvent::Exec { .. }))
            .expect("some compute");
        t.events.remove(pos);
        let mut report = Report::new();
        audit_dist_trace(&g, &a, &t, &mut report);
        assert!(report.has_code(codes::DIST_ASSIGNMENT));
    }

    #[test]
    fn shrunk_capacity_fires_over_capacity() {
        let (g, a, mut t) = traced(7, 16);
        // The run legitimately used up to 16 slots; claiming M = 2 after
        // the fact must be caught by occupancy recounting.
        t.m = 2;
        let mut report = Report::new();
        let audit = audit_dist_trace(&g, &a, &t, &mut report);
        assert!(report.has_code(codes::DIST_OVER_CAPACITY));
        assert!(audit.max_occupancy > 2);
    }

    #[test]
    fn inflated_claim_fires_conservation() {
        let (g, a, mut t) = traced(7, 16);
        t.claimed.total_words += 1;
        let mut report = Report::new();
        audit_dist_trace(&g, &a, &t, &mut report);
        assert!(report.has_code(codes::DIST_CONSERVATION));
    }
}
