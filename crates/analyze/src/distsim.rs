//! Distributed-run auditing: independent re-verification of a traced
//! `mmio_parallel::distsim` execution (`MMIO-Dxxx`).
//!
//! The simulator *claims* totals — words moved, per-rank sent/received
//! counters, critical-path and local-I/O maxima. This pass trusts none of
//! them: it replays the recorded [`DistEvent`] stream against the CDAG and
//! the assignment, rebuilding every processor's cache and every counter
//! from scratch, and reports any disagreement as a diagnostic. Double-entry
//! bookkeeping for the distributed machine, in the same spirit as the
//! schedule and routing audits:
//!
//! - **`MMIO-D001`** conservation: `total_words == Σ sent == Σ received`,
//!   per-rank counters match the event stream, recounted critical path and
//!   local-I/O maxima match the claims;
//! - **`MMIO-D002`** availability: a value is sent only after its owner
//!   computed it (inputs are born available), and every compute finds its
//!   operands resident in the computing rank's cache;
//! - **`MMIO-D003`** assignment totality: every non-input vertex executes
//!   exactly once, on its assigned rank;
//! - **`MMIO-D004`** capacity: no cache ever holds more than `M` values,
//!   and evict/insert events stay consistent with cache membership;
//! - **`MMIO-D005`** matching: every receive pairs with an outstanding
//!   send of the same value on the same channel;
//! - **`MMIO-D006`** contention conservation (contended traces only):
//!   per-round words, link occupancy (every send re-routed over the
//!   claimed topology), hop totals, and per-rank/per-link load maxima
//!   recounted from the event stream match the claimed [`RoundLoad`]s —
//!   in particular Σ link loads per round equals the routed hop·words of
//!   that round's sends;
//! - **`MMIO-D007`** makespan: every claimed round time and the total
//!   makespan match the α-β-γ formula applied to the *recounted* loads,
//!   and the model keeps `β ≥ 1` (the makespan ≥ critical-path
//!   contract).

use crate::codes;
use crate::diag::{Report, Severity, Span};
use mmio_cdag::{Cdag, VertexId};
use mmio_parallel::assign::Assignment;
use mmio_parallel::distsim::{round_time, ContentionReport, DistEvent, DistTrace, RoundLoad};
use std::collections::HashMap;

/// Counters from one distsim audit (alongside the diagnostics pushed into
/// the report).
#[derive(Clone, Copy, Debug, Default)]
pub struct DistAudit {
    /// Events replayed.
    pub events: usize,
    /// Compute events seen.
    pub execs: u64,
    /// Words recounted from matched send/recv pairs.
    pub words: u64,
    /// Maximum cache occupancy observed on any rank.
    pub max_occupancy: usize,
    /// Whether the audit found no errors.
    pub ok: bool,
}

/// Replays `trace` against `g` and `assignment`, pushing any `MMIO-Dxxx`
/// finding into `report`. See the module docs for the checked properties.
pub fn audit_dist_trace(
    g: &Cdag,
    assignment: &Assignment,
    trace: &DistTrace,
    report: &mut Report,
) -> DistAudit {
    let p = trace.p as usize;
    let n = g.n_vertices();
    let mut audit = DistAudit {
        events: trace.events.len(),
        ..DistAudit::default()
    };
    let before = report.error_count();

    let is_input = |v: u32| g.preds(VertexId(v)).is_empty();
    let bad_vertex = |v: u32| (v as usize) >= n;
    let bad_proc = |r: u32| (r as usize) >= p;

    // Replay state, rebuilt from nothing.
    let mut resident = vec![vec![false; n]; p];
    let mut occupancy = vec![0usize; p];
    let mut computed = vec![false; n];
    let mut exec_on: Vec<Option<u32>> = vec![None; n];
    let mut in_flight: HashMap<(u32, u32, u32), u64> = HashMap::new();
    let mut sent = vec![0u64; p];
    let mut received = vec![0u64; p];
    let mut local_io = vec![0u64; p];

    for (i, &e) in trace.events.iter().enumerate() {
        let step = Span::Step(i);
        // Malformed coordinates make the rest of the replay meaningless
        // for this event; report and skip it.
        let (procs, vs): (Vec<u32>, Vec<u32>) = match e {
            DistEvent::Evict { proc, v } | DistEvent::Insert { proc, v, .. } => {
                (vec![proc], vec![v])
            }
            DistEvent::Exec { proc, v } => (vec![proc], vec![v]),
            DistEvent::Send { from, to, v } => (vec![from, to], vec![v]),
            DistEvent::Recv { to, from, v } => (vec![to, from], vec![v]),
        };
        if procs.iter().any(|&r| bad_proc(r)) || vs.iter().any(|&v| bad_vertex(v)) {
            report.push(
                codes::DIST_ASSIGNMENT,
                Severity::Error,
                step,
                format!("event {e:?} names a rank >= {p} or vertex >= {n}"),
            );
            continue;
        }
        match e {
            DistEvent::Evict { proc, v } => {
                let (proc_u, v_u) = (proc as usize, v as usize);
                if !resident[proc_u][v_u] {
                    report.push(
                        codes::DIST_OVER_CAPACITY,
                        Severity::Error,
                        Span::Proc(proc),
                        format!("evict of v{v}, which is not in rank {proc}'s cache"),
                    );
                } else {
                    resident[proc_u][v_u] = false;
                    occupancy[proc_u] -= 1;
                }
            }
            DistEvent::Insert { proc, v, charged } => {
                let (proc_u, v_u) = (proc as usize, v as usize);
                if resident[proc_u][v_u] {
                    report.push(
                        codes::DIST_OVER_CAPACITY,
                        Severity::Error,
                        Span::Proc(proc),
                        format!("insert of v{v}, already in rank {proc}'s cache"),
                    );
                } else {
                    resident[proc_u][v_u] = true;
                    occupancy[proc_u] += 1;
                    audit.max_occupancy = audit.max_occupancy.max(occupancy[proc_u]);
                    if occupancy[proc_u] > trace.m {
                        report.push_with_hint(
                            codes::DIST_OVER_CAPACITY,
                            Severity::Error,
                            Span::Proc(proc),
                            format!(
                                "rank {proc} holds {} values, capacity M = {}",
                                occupancy[proc_u], trace.m
                            ),
                            "evict before inserting",
                        );
                    }
                }
                if charged {
                    local_io[proc_u] += 1;
                }
            }
            DistEvent::Send { from, to, v } => {
                if !is_input(v) && !computed[v as usize] {
                    report.push(
                        codes::DIST_NOT_AVAILABLE,
                        Severity::Error,
                        Span::Proc(from),
                        format!("rank {from} sends v{v} before it was computed"),
                    );
                }
                *in_flight.entry((from, to, v)).or_insert(0) += 1;
                sent[from as usize] += 1;
            }
            DistEvent::Recv { to, from, v } => {
                match in_flight.get_mut(&(from, to, v)) {
                    Some(c) if *c > 0 => {
                        *c -= 1;
                        audit.words += 1;
                    }
                    _ => {
                        report.push_with_hint(
                            codes::DIST_UNMATCHED_RECV,
                            Severity::Error,
                            Span::Proc(to),
                            format!("rank {to} receives v{v} from {from} with no outstanding send"),
                            "every receive must pair with a prior send on the same channel",
                        );
                    }
                }
                received[to as usize] += 1;
            }
            DistEvent::Exec { proc, v } => {
                audit.execs += 1;
                let v_u = v as usize;
                if is_input(v) {
                    report.push(
                        codes::DIST_ASSIGNMENT,
                        Severity::Error,
                        Span::Vertex(v),
                        format!("input v{v} cannot be computed"),
                    );
                    continue;
                }
                if assignment.of(VertexId(v)) != proc {
                    report.push(
                        codes::DIST_ASSIGNMENT,
                        Severity::Error,
                        Span::Vertex(v),
                        format!(
                            "v{v} executed on rank {proc}, assigned to rank {}",
                            assignment.of(VertexId(v))
                        ),
                    );
                }
                if let Some(prev) = exec_on[v_u] {
                    report.push(
                        codes::DIST_ASSIGNMENT,
                        Severity::Error,
                        Span::Vertex(v),
                        format!("v{v} executed twice (ranks {prev} and {proc})"),
                    );
                }
                for &op in g.preds(VertexId(v)) {
                    if !resident[proc as usize][op.idx()] {
                        report.push(
                            codes::DIST_NOT_AVAILABLE,
                            Severity::Error,
                            Span::Vertex(v),
                            format!("operand {op:?} of v{v} not resident on rank {proc}"),
                        );
                    }
                }
                computed[v_u] = true;
                exec_on[v_u] = Some(proc);
            }
        }
    }

    // Terminal checks: totality and conservation.
    for v in g.vertices() {
        if !g.preds(v).is_empty() && exec_on[v.idx()].is_none() {
            report.push(
                codes::DIST_ASSIGNMENT,
                Severity::Error,
                Span::Vertex(v.idx() as u32),
                format!("non-input {v:?} never executed"),
            );
        }
    }
    let total_sent: u64 = sent.iter().sum();
    let total_received: u64 = received.iter().sum();
    let mut conserve = |what: &str, got: u64, claimed: u64| {
        if got != claimed {
            report.push(
                codes::DIST_CONSERVATION,
                Severity::Error,
                Span::Global,
                format!("{what}: recounted {got}, run claims {claimed}"),
            );
        }
    };
    conserve(
        "total words vs sends",
        total_sent,
        trace.claimed.total_words,
    );
    conserve(
        "total words vs receives",
        total_received,
        trace.claimed.total_words,
    );
    conserve(
        "critical path",
        sent.iter()
            .zip(&received)
            .map(|(&s, &r)| s + r)
            .max()
            .unwrap_or(0),
        trace.claimed.critical_path_words,
    );
    conserve(
        "max local I/O",
        local_io.iter().copied().max().unwrap_or(0),
        trace.claimed.max_local_io,
    );
    conserve(
        "total local I/O",
        local_io.iter().sum(),
        trace.claimed.total_local_io,
    );
    for r in 0..p {
        if sent[r] != trace.sent[r] || received[r] != trace.received[r] {
            report.push(
                codes::DIST_CONSERVATION,
                Severity::Error,
                Span::Proc(r as u32),
                format!(
                    "rank {r} counters: recounted sent {} / received {}, run claims {} / {}",
                    sent[r], received[r], trace.sent[r], trace.received[r]
                ),
            );
        }
    }

    if let Some(c) = &trace.contention {
        audit_contention(g, trace, c, report);
    }

    audit.ok = report.error_count() == before;
    audit
}

/// Re-derives the contended per-round loads from the event stream —
/// every send re-routed over the claimed topology, every exec
/// re-bucketed by its vertex's CDAG rank — and checks the claimed
/// [`RoundLoad`] table, round times, and makespan against the recount.
fn audit_contention(g: &Cdag, trace: &DistTrace, c: &ContentionReport, report: &mut Report) {
    let mm = c.machine;
    if mm.beta == 0 {
        report.push(
            codes::DIST_MAKESPAN,
            Severity::Error,
            Span::Global,
            "machine model claims inverse bandwidth β = 0; the makespan ≥ \
             critical-path-words contract needs β ≥ 1"
                .to_string(),
        );
    }
    if let Err(e) = mm.topo.validate(trace.p) {
        report.push(
            codes::DIST_LINK_CONSERVATION,
            Severity::Error,
            Span::Global,
            format!("claimed topology does not fit {} ranks: {e}", trace.p),
        );
        return;
    }
    let rounds = 2 * g.r() as usize + 2;
    if c.rounds.len() != rounds {
        report.push(
            codes::DIST_LINK_CONSERVATION,
            Severity::Error,
            Span::Global,
            format!(
                "contention table has {} rounds, CDAG has ranks 0..={}",
                c.rounds.len(),
                rounds - 1
            ),
        );
        return;
    }

    // Recount from nothing: route every send, bucket every exec.
    let p = trace.p as usize;
    let n = g.n_vertices();
    let n_links = mm.topo.n_links(trace.p);
    let mut words = vec![0u64; rounds];
    let mut hop_words = vec![0u64; rounds];
    let mut max_hops = vec![0u64; rounds];
    let mut rank_words = vec![0u64; rounds * p];
    let mut execs = vec![0u64; rounds * p];
    let mut link_words = vec![0u64; rounds * n_links];
    let mut route = Vec::new();
    for &e in &trace.events {
        match e {
            DistEvent::Send { from, to, v } => {
                if (v as usize) >= n || (from as usize) >= p || (to as usize) >= p {
                    continue; // already reported by the replay above
                }
                let round = g.rank(VertexId(v)) as usize;
                words[round] += 1;
                rank_words[round * p + from as usize] += 1;
                rank_words[round * p + to as usize] += 1;
                let h = mm.topo.hops(trace.p, from, to);
                hop_words[round] += h;
                max_hops[round] = max_hops[round].max(h);
                mm.topo.route_into(trace.p, from, to, &mut route);
                for &link in &route {
                    link_words[round * n_links + link as usize] += 1;
                }
            }
            DistEvent::Exec { proc, v } => {
                if (v as usize) >= n || (proc as usize) >= p {
                    continue;
                }
                execs[g.rank(VertexId(v)) as usize * p + proc as usize] += 1;
            }
            _ => {}
        }
    }

    let mut makespan = 0u64;
    for (r, claimed) in c.rounds.iter().enumerate() {
        let got = RoundLoad {
            round: r as u32,
            words: words[r],
            hop_words: hop_words[r],
            max_hops: max_hops[r],
            max_link_words: link_words[r * n_links..(r + 1) * n_links]
                .iter()
                .copied()
                .max()
                .unwrap_or(0),
            max_rank_words: rank_words[r * p..(r + 1) * p]
                .iter()
                .copied()
                .max()
                .unwrap_or(0),
            max_execs: execs[r * p..(r + 1) * p].iter().copied().max().unwrap_or(0),
            time: 0,
        };
        // Per-round link-occupancy conservation against the claims. The
        // recounted Σ link loads equals `got.hop_words` by construction,
        // so checking hop_words pins the claimed occupancy to the routed
        // sends of this round.
        let fields: [(&str, u64, u64); 6] = [
            ("words", got.words, claimed.words),
            (
                "hop_words (link occupancy)",
                got.hop_words,
                claimed.hop_words,
            ),
            ("max_hops", got.max_hops, claimed.max_hops),
            ("max_link_words", got.max_link_words, claimed.max_link_words),
            ("max_rank_words", got.max_rank_words, claimed.max_rank_words),
            ("max_execs", got.max_execs, claimed.max_execs),
        ];
        for (what, recounted, claim) in fields {
            if recounted != claim {
                report.push(
                    codes::DIST_LINK_CONSERVATION,
                    Severity::Error,
                    Span::Step(r),
                    format!("round {r} {what}: recounted {recounted}, run claims {claim}"),
                );
            }
        }
        if claimed.round != r as u32 {
            report.push(
                codes::DIST_LINK_CONSERVATION,
                Severity::Error,
                Span::Step(r),
                format!("round entry {r} labels itself round {}", claimed.round),
            );
        }
        let time = round_time(
            &mm,
            got.max_execs,
            got.max_hops,
            got.max_link_words,
            got.max_rank_words,
        );
        if time != claimed.time {
            report.push(
                codes::DIST_MAKESPAN,
                Severity::Error,
                Span::Step(r),
                format!(
                    "round {r} time: α-β-γ formula on recounted loads gives {time}, \
                     run claims {}",
                    claimed.time
                ),
            );
        }
        makespan += time;
    }
    if makespan != c.makespan {
        report.push(
            codes::DIST_MAKESPAN,
            Severity::Error,
            Span::Global,
            format!(
                "makespan: recounted round times sum to {makespan}, run claims {}",
                c.makespan
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;
    use mmio_parallel::assign::{by_top_subproblem, cyclic_per_rank};
    use mmio_parallel::distsim::{simulate_traced, simulate_traced_on, MachineModel, Topology};
    use mmio_parallel::Pool;
    use mmio_pebble::orders::recursive_order;

    fn traced(p: u32, m: usize) -> (Cdag, Assignment, DistTrace) {
        let g = build_cdag(&strassen(), 2);
        let order = recursive_order(&g);
        let a = by_top_subproblem(&g, p);
        let t = simulate_traced(&g, &a, &order, m);
        (g, a, t)
    }

    #[test]
    fn clean_run_audits_clean() {
        let (g, a, t) = traced(7, 16);
        let mut report = Report::new();
        let audit = audit_dist_trace(&g, &a, &t, &mut report);
        assert!(audit.ok, "{:?}", report.diagnostics);
        assert_eq!(audit.words, t.claimed.total_words);
        assert!(audit.max_occupancy <= 16);
        assert!(audit.execs > 0);
    }

    #[test]
    fn cyclic_assignment_audits_clean_too() {
        let g = build_cdag(&strassen(), 2);
        let order = recursive_order(&g);
        let a = cyclic_per_rank(&g, 5);
        let t = simulate_traced(&g, &a, &order, 16);
        let mut report = Report::new();
        assert!(audit_dist_trace(&g, &a, &t, &mut report).ok);
    }

    #[test]
    fn dropped_recv_fires_conservation() {
        let (g, a, mut t) = traced(7, 16);
        let pos = t
            .events
            .iter()
            .position(|e| matches!(e, DistEvent::Recv { .. }))
            .expect("some communication");
        t.events.remove(pos);
        let mut report = Report::new();
        let audit = audit_dist_trace(&g, &a, &t, &mut report);
        assert!(!audit.ok);
        assert!(report.has_code(codes::DIST_CONSERVATION));
    }

    #[test]
    fn forged_recv_fires_unmatched() {
        let (g, a, mut t) = traced(7, 16);
        t.events.push(DistEvent::Recv {
            to: 0,
            from: 1,
            v: 0,
        });
        let mut report = Report::new();
        audit_dist_trace(&g, &a, &t, &mut report);
        assert!(report.has_code(codes::DIST_UNMATCHED_RECV));
    }

    #[test]
    fn dropped_exec_fires_assignment() {
        let (g, a, mut t) = traced(7, 16);
        let pos = t
            .events
            .iter()
            .position(|e| matches!(e, DistEvent::Exec { .. }))
            .expect("some compute");
        t.events.remove(pos);
        let mut report = Report::new();
        audit_dist_trace(&g, &a, &t, &mut report);
        assert!(report.has_code(codes::DIST_ASSIGNMENT));
    }

    #[test]
    fn shrunk_capacity_fires_over_capacity() {
        let (g, a, mut t) = traced(7, 16);
        // The run legitimately used up to 16 slots; claiming M = 2 after
        // the fact must be caught by occupancy recounting.
        t.m = 2;
        let mut report = Report::new();
        let audit = audit_dist_trace(&g, &a, &t, &mut report);
        assert!(report.has_code(codes::DIST_OVER_CAPACITY));
        assert!(audit.max_occupancy > 2);
    }

    #[test]
    fn inflated_claim_fires_conservation() {
        let (g, a, mut t) = traced(7, 16);
        t.claimed.total_words += 1;
        let mut report = Report::new();
        audit_dist_trace(&g, &a, &t, &mut report);
        assert!(report.has_code(codes::DIST_CONSERVATION));
    }

    #[test]
    fn forged_early_send_fires_not_available() {
        let (g, a, mut t) = traced(7, 16);
        // Send a non-input vertex's value before anything computed it.
        let v = g
            .vertices()
            .find(|&v| !g.preds(v).is_empty())
            .expect("some compute")
            .idx() as u32;
        let from = a.of(VertexId(v));
        t.events.insert(
            0,
            DistEvent::Send {
                from,
                to: (from + 1) % 7,
                v,
            },
        );
        let mut report = Report::new();
        let audit = audit_dist_trace(&g, &a, &t, &mut report);
        assert!(!audit.ok);
        assert!(report.has_code(codes::DIST_NOT_AVAILABLE));
    }

    fn contended(topo: Topology) -> (Cdag, Assignment, DistTrace) {
        let g = build_cdag(&strassen(), 2);
        let order = recursive_order(&g);
        let a = cyclic_per_rank(&g, 9);
        let mm = MachineModel::new(topo, 2, 1, 1);
        let t = simulate_traced_on(&g, &a, &order, 16, Some(mm), &Pool::serial());
        (g, a, t)
    }

    #[test]
    fn contended_runs_audit_clean_on_every_topology() {
        for topo in [Topology::Full, Topology::Ring, Topology::Torus2d { q: 3 }] {
            let (g, a, t) = contended(topo);
            let mut report = Report::new();
            let audit = audit_dist_trace(&g, &a, &t, &mut report);
            assert!(audit.ok, "{topo:?}: {:?}", report.diagnostics);
        }
    }

    #[test]
    fn tampered_link_load_fires_link_conservation() {
        let (g, a, mut t) = contended(Topology::Ring);
        let c = t.contention.as_mut().expect("contended");
        let row = c
            .rounds
            .iter_mut()
            .find(|r| r.words > 0)
            .expect("some communication");
        row.max_link_words += 1;
        let mut report = Report::new();
        assert!(!audit_dist_trace(&g, &a, &t, &mut report).ok);
        assert!(report.has_code(codes::DIST_LINK_CONSERVATION));
    }

    #[test]
    fn tampered_hop_words_fires_link_conservation() {
        let (g, a, mut t) = contended(Topology::Torus2d { q: 3 });
        let c = t.contention.as_mut().expect("contended");
        let row = c
            .rounds
            .iter_mut()
            .find(|r| r.hop_words > 0)
            .expect("some communication");
        row.hop_words -= 1;
        let mut report = Report::new();
        assert!(!audit_dist_trace(&g, &a, &t, &mut report).ok);
        assert!(report.has_code(codes::DIST_LINK_CONSERVATION));
    }

    #[test]
    fn tampered_makespan_fires_makespan() {
        let (g, a, mut t) = contended(Topology::Ring);
        t.contention.as_mut().expect("contended").makespan += 1;
        let mut report = Report::new();
        assert!(!audit_dist_trace(&g, &a, &t, &mut report).ok);
        assert!(report.has_code(codes::DIST_MAKESPAN));
    }

    #[test]
    fn tampered_round_time_fires_makespan() {
        let (g, a, mut t) = contended(Topology::Full);
        let c = t.contention.as_mut().expect("contended");
        c.rounds[2].time += 3;
        let mut report = Report::new();
        assert!(!audit_dist_trace(&g, &a, &t, &mut report).ok);
        assert!(report.has_code(codes::DIST_MAKESPAN));
    }

    #[test]
    fn zero_beta_claim_fires_makespan() {
        let (g, a, mut t) = contended(Topology::Ring);
        t.contention.as_mut().expect("contended").machine.beta = 0;
        let mut report = Report::new();
        assert!(!audit_dist_trace(&g, &a, &t, &mut report).ok);
        assert!(report.has_code(codes::DIST_MAKESPAN));
    }
}
