//! Schedule legality analysis (`MMIO-Sxxx`): an abstract interpretation of
//! an explicit pebble-game schedule.
//!
//! [`audit_schedule`] walks the action list maintaining the abstract state
//! (cache residency, slow-memory contents, computed set) and proves, step by
//! step, that every compute has its operands resident, that cache occupancy
//! never exceeds `M`, and that the terminal state has every vertex computed
//! and every output stored. The first violating step is reported with its
//! index. The implementation is written from the model rules (paper
//! Section 1) and deliberately shares no code with
//! [`mmio_pebble::sim`] — it is an independent re-verification, so the two
//! can cross-check each other.

use crate::codes;
use crate::diag::{Report, Severity, Span};
use mmio_cdag::Cdag;
use mmio_pebble::{Action, Schedule};

/// Counters and witnesses from a schedule audit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleAudit {
    /// Loads executed before any violation.
    pub loads: u64,
    /// Stores executed before any violation.
    pub stores: u64,
    /// Computes executed before any violation.
    pub computes: u64,
    /// Maximum simultaneous cache occupancy observed.
    pub peak_occupancy: usize,
    /// Index of the first violating step, if any.
    pub first_violation: Option<usize>,
}

impl ScheduleAudit {
    /// Total I/O (loads + stores).
    pub fn io(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Audits `schedule` against the machine model on `g` with cache size `m`.
///
/// Appends at most one step-level diagnostic (the first violation) plus
/// terminal-state diagnostics, and returns the counters. A schedule is legal
/// iff no [`Severity::Error`] diagnostic is appended.
pub fn audit_schedule(
    g: &Cdag,
    schedule: &Schedule,
    m: usize,
    report: &mut Report,
) -> ScheduleAudit {
    let n = g.n_vertices();
    let mut resident = vec![false; n];
    let mut occupancy = 0usize;
    let mut in_slow = vec![false; n]; // beyond the inputs, which start there
    let mut computed = vec![false; n];
    let mut audit = ScheduleAudit::default();

    for (step, &action) in schedule.actions.iter().enumerate() {
        let span = Span::Step(step);
        match action {
            Action::Load(v) => {
                if !(g.is_input(v) || in_slow[v.idx()]) {
                    report.push(
                        codes::SCHED_BAD_LOAD,
                        Severity::Error,
                        span,
                        format!("load of {v:?}, which is not in slow memory"),
                    );
                    audit.first_violation = Some(step);
                    return audit;
                }
                if resident[v.idx()] {
                    report.push(
                        codes::SCHED_BAD_LOAD,
                        Severity::Error,
                        span,
                        format!("load of {v:?}, which is already cached"),
                    );
                    audit.first_violation = Some(step);
                    return audit;
                }
                if occupancy >= m {
                    report.push_with_hint(
                        codes::SCHED_CAPACITY,
                        Severity::Error,
                        span,
                        format!("load of {v:?} into a full cache ({occupancy}/{m})"),
                        "insert a Drop or Store+Drop before this step",
                    );
                    audit.first_violation = Some(step);
                    return audit;
                }
                resident[v.idx()] = true;
                occupancy += 1;
                audit.loads += 1;
            }
            Action::Store(v) => {
                if !resident[v.idx()] {
                    report.push(
                        codes::SCHED_NOT_RESIDENT,
                        Severity::Error,
                        span,
                        format!("store of {v:?}, which is not cached"),
                    );
                    audit.first_violation = Some(step);
                    return audit;
                }
                in_slow[v.idx()] = true;
                audit.stores += 1;
            }
            Action::Drop(v) => {
                if !resident[v.idx()] {
                    report.push(
                        codes::SCHED_NOT_RESIDENT,
                        Severity::Error,
                        span,
                        format!("drop of {v:?}, which is not cached"),
                    );
                    audit.first_violation = Some(step);
                    return audit;
                }
                resident[v.idx()] = false;
                occupancy -= 1;
            }
            Action::Compute(v) => {
                if g.is_input(v) || computed[v.idx()] {
                    report.push(
                        codes::SCHED_BAD_COMPUTE,
                        Severity::Error,
                        span,
                        if g.is_input(v) {
                            format!("compute of input {v:?}")
                        } else {
                            format!("recomputation of {v:?} (the model forbids it)")
                        },
                    );
                    audit.first_violation = Some(step);
                    return audit;
                }
                if let Some(&p) = g.preds(v).iter().find(|p| !resident[p.idx()]) {
                    report.push_with_hint(
                        codes::SCHED_MISSING_OPERAND,
                        Severity::Error,
                        span,
                        format!("compute of {v:?} with operand {p:?} not resident"),
                        "load or compute the operand first",
                    );
                    audit.first_violation = Some(step);
                    return audit;
                }
                if occupancy >= m {
                    report.push_with_hint(
                        codes::SCHED_CAPACITY,
                        Severity::Error,
                        span,
                        format!("compute of {v:?} needs a free slot ({occupancy}/{m})"),
                        "insert a Drop or Store+Drop before this step",
                    );
                    audit.first_violation = Some(step);
                    return audit;
                }
                resident[v.idx()] = true;
                occupancy += 1;
                computed[v.idx()] = true;
                audit.computes += 1;
            }
        }
        audit.peak_occupancy = audit.peak_occupancy.max(occupancy);
    }

    // Terminal conditions: everything computed, every output stored.
    for v in g.vertices() {
        if !g.is_input(v) && !computed[v.idx()] {
            report.push(
                codes::SCHED_NOT_COMPUTED,
                Severity::Error,
                Span::Vertex(v.0),
                format!("{v:?} was never computed"),
            );
            break; // one witness suffices
        }
    }
    for v in g.outputs() {
        if !in_slow[v.idx()] {
            report.push_with_hint(
                codes::SCHED_OUTPUT_NOT_STORED,
                Severity::Error,
                Span::Vertex(v.0),
                format!("output {v:?} was never stored to slow memory"),
                "append Store actions for every output",
            );
            break;
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_cdag::build::build_cdag;
    use mmio_cdag::BaseGraph;
    use mmio_matrix::{Matrix, Rational};

    fn tiny() -> Cdag {
        let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
        build_cdag(&BaseGraph::new("tiny", 1, one.clone(), one.clone(), one), 1)
    }

    fn valid(g: &Cdag) -> Schedule {
        let mut actions = vec![Action::Load(g.input_a(0, 0)), Action::Load(g.input_b(0, 0))];
        actions.extend(
            g.vertices()
                .filter(|&v| !g.is_input(v))
                .map(Action::Compute),
        );
        actions.push(Action::Store(g.outputs().next().unwrap()));
        Schedule { actions }
    }

    #[test]
    fn valid_schedule_is_clean() {
        let g = tiny();
        let mut report = Report::new();
        let audit = audit_schedule(&g, &valid(&g), 16, &mut report);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert_eq!(audit.loads, 2);
        assert_eq!(audit.stores, 1);
        assert_eq!(audit.computes as usize, g.n_vertices() - 2);
        assert!(audit.peak_occupancy >= 3);
        assert_eq!(audit.first_violation, None);
    }

    #[test]
    fn audit_matches_reference_simulator() {
        // Cross-check the two independent implementations on a real
        // auto-generated schedule.
        use mmio_pebble::orders::recursive_order;
        use mmio_pebble::policy::Belady;
        use mmio_pebble::AutoScheduler;
        let g = build_cdag(&mmio_algos::strassen::strassen(), 2);
        let m = 24;
        let order = recursive_order(&g);
        let (stats, sched) = AutoScheduler::new(&g, m).run_recorded(&order, &mut Belady);
        let mut report = Report::new();
        let audit = audit_schedule(&g, &sched, m, &mut report);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert_eq!(audit.loads, stats.loads);
        assert_eq!(audit.stores, stats.stores);
        assert_eq!(audit.computes, stats.computes);
        assert!(audit.peak_occupancy <= m);
    }

    #[test]
    fn audit_accepts_fast_engine_schedules_for_every_policy() {
        // The heap-based engine must emit schedules the auditor certifies
        // clean for every replacement policy, not just Belady — lazy heap
        // invalidation and the dead free-list change *how* victims are
        // found, never the legality of the recorded actions.
        use mmio_pebble::orders::recursive_order;
        use mmio_pebble::sweep::PolicySpec;
        use mmio_pebble::{AutoScheduler, RunOptions, SchedScratch};
        let g = build_cdag(&mmio_algos::strassen::strassen(), 2);
        let order = recursive_order(&g);
        let mut scratch = SchedScratch::new();
        scratch.prepare(&g, &order);
        let opts = RunOptions {
            record_schedule: true,
            record_victims: false,
        };
        for spec in [
            PolicySpec::Lru,
            PolicySpec::Belady,
            PolicySpec::Random { seed: 7 },
        ] {
            for m in [9, 24, 64] {
                let out = AutoScheduler::new(&g, m).run_prepared(
                    &order,
                    &mut scratch,
                    spec.instantiate(g.n_vertices()).as_mut(),
                    opts,
                );
                let mut report = Report::new();
                let audit = audit_schedule(&g, out.schedule.as_ref().unwrap(), m, &mut report);
                assert!(
                    !report.has_errors(),
                    "{} M={m}: {:?}",
                    spec.name(),
                    report.diagnostics
                );
                assert_eq!(audit.loads, out.stats.loads);
                assert_eq!(audit.stores, out.stats.stores);
                assert_eq!(audit.computes, out.stats.computes);
                assert!(audit.peak_occupancy <= m);
                assert_eq!(audit.first_violation, None);
            }
        }
    }

    #[test]
    fn first_violating_step_is_reported() {
        let g = tiny();
        let mut s = valid(&g);
        s.actions.insert(2, Action::Drop(g.input_a(0, 0)));
        let mut report = Report::new();
        let audit = audit_schedule(&g, &s, 16, &mut report);
        // The combo of A is computed right after the drop: operand missing.
        assert!(report.has_code(codes::SCHED_MISSING_OPERAND));
        assert_eq!(audit.first_violation, Some(3));
    }

    #[test]
    fn store_of_uncached_value_fires_not_resident() {
        let g = tiny();
        let mut s = valid(&g);
        // Store an output that is not resident yet (nothing computed it).
        s.actions
            .insert(0, Action::Store(g.outputs().next().unwrap()));
        let mut report = Report::new();
        let audit = audit_schedule(&g, &s, 16, &mut report);
        assert!(report.has_code(codes::SCHED_NOT_RESIDENT));
        assert_eq!(audit.first_violation, Some(0));
    }

    #[test]
    fn missing_compute_fires_not_computed() {
        let g = tiny();
        let mut s = valid(&g);
        // Drop every action except the two loads: nothing gets computed.
        s.actions.truncate(2);
        let mut report = Report::new();
        audit_schedule(&g, &s, 16, &mut report);
        assert!(report.has_code(codes::SCHED_NOT_COMPUTED));
    }
}
