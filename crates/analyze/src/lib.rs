//! # mmio-analyze
//!
//! Static analysis and certification for the workspace's three artifact
//! kinds, reporting structured [`Diagnostic`]s with stable codes:
//!
//! | family | pass | module |
//! |--------|------|--------|
//! | `MMIO-Axxx` | CDAG structure lints (acyclicity witness, rank consistency, dangling/unreachable, copy rules, Fact 1, single-use, tensor identity) | [`cdag`] |
//! | `MMIO-Sxxx` | schedule legality (operand residency, cache occupancy ≤ M, terminal conditions) | [`schedule`] |
//! | `MMIO-Rxxx` | routing certificate auditing (path validity, per-vertex and per-meta hit bounds) | [`routing`] |
//! | `MMIO-Dxxx` | distributed-run auditing (send/recv conservation, operand availability, assignment totality, cache occupancy ≤ M) | [`distsim`] |
//!
//! A fifth family, `MMIO-Cxxx` (concurrency soundness), shares this crate's
//! diagnostic framework but is emitted by `mmio-check`'s happens-before
//! race detector and bounded model checker.
//!
//! The passes are *re-verifiers*: they share no code with the constructors
//! they audit (`mmio_cdag::MetaVertices`, `mmio_pebble::sim`, the
//! `mmio-core` routing builders), so agreement between constructor and
//! analyzer is genuine double-entry bookkeeping. Where a defect cannot occur
//! in a correctly built artifact (a `Cdag` is topologically ordered by
//! construction), the pass runs on an extracted [`facts::GraphFacts`] view
//! that tests can fabricate — see the code table in `DESIGN.md` and the
//! golden tests in `tests/golden.rs`.
//!
//! ```
//! use mmio_analyze::{analyze_base_at, codes};
//! use mmio_cdag::BaseGraph;
//! use mmio_matrix::{Matrix, Rational};
//!
//! let one = Matrix::from_vec(1, 1, vec![Rational::ONE]);
//! let base = BaseGraph::new("unit", 1, one.clone(), one.clone(), one);
//! let report = analyze_base_at(&base, 2);
//! assert!(!report.has_errors());
//! // The 1×1 identity algorithm takes no linear combinations: Lemma 1 does
//! // not apply, which the analyzer notes as a warning.
//! assert!(report.has_code(codes::CDAG_LEMMA1));
//! ```

// The fact-extraction and audit passes walk every vertex of graphs that
// reach tens of millions of vertices; performance lints are errors here,
// as in mmio-cdag and mmio-pebble.
#![deny(clippy::perf)]
#![forbid(unsafe_code)]

pub mod cdag;
pub mod codes;
pub mod diag;
pub mod distsim;
pub mod facts;
pub mod routing;
pub mod schedule;

pub use cdag::{analyze_base_at, audit_fact1, lint_base, lint_facts, CdagAudit};
pub use diag::{Diagnostic, Report, Severity, Span};
pub use distsim::{audit_dist_trace, DistAudit};
pub use facts::GraphFacts;
pub use routing::{
    audit_routing, audit_routing_paths, report_routing_infeasible, RoutingAudit, RoutingAuditor,
    RoutingCertificate,
};
pub use schedule::{audit_schedule, ScheduleAudit};
