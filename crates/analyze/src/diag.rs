//! Structured diagnostics: the common currency of every analysis pass.
//!
//! A [`Diagnostic`] pairs a stable machine-readable code (`MMIO-Axxx` for
//! CDAG lints, `MMIO-Sxxx` for schedule legality, `MMIO-Rxxx` for routing
//! certificates) with a severity, a [`Span`] locating the finding, a
//! human-readable message, and an optional suggestion. A [`Report`] collects
//! diagnostics across passes and serializes to JSON for tooling.

use serde::{Serialize, Value};
use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note; never fails an analysis.
    Info,
    /// Suspicious but legal structure (e.g. a dangling vertex).
    Warning,
    /// A rule violation: the artifact is invalid.
    Error,
}

impl Severity {
    /// Lower-case name used in JSON and human output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the analyzed artifact a diagnostic points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Span {
    /// A CDAG vertex (dense id).
    Vertex(u32),
    /// A schedule step (0-based action index).
    Step(usize),
    /// A routing path (0-based index into the certificate's path list).
    Path(usize),
    /// A base-graph matrix row (`matrix` is `"enc_a"`, `"enc_b"`, or
    /// `"dec"`).
    Row {
        /// Which coefficient matrix.
        matrix: &'static str,
        /// Row index within it.
        row: usize,
    },
    /// A trace-local thread (sync-trace diagnostics).
    Thread(u32),
    /// A distributed-machine rank (distsim audit diagnostics).
    Proc(u32),
    /// A source line (static-audit diagnostics; the file is named in the
    /// message — paths are dynamic, and `Span` stays `Copy`).
    Source(u32),
    /// The artifact as a whole.
    Global,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Vertex(v) => write!(f, "v{v}"),
            Span::Step(s) => write!(f, "step {s}"),
            Span::Path(p) => write!(f, "path {p}"),
            Span::Row { matrix, row } => write!(f, "{matrix}[{row}]"),
            Span::Thread(t) => write!(f, "thread {t}"),
            Span::Proc(p) => write!(f, "proc {p}"),
            Span::Source(l) => write!(f, "line {l}"),
            Span::Global => f.write_str("global"),
        }
    }
}

impl Serialize for Span {
    fn to_value(&self) -> Value {
        let kv = |k: &str, name: &str, idx: u64| {
            Value::Object(vec![
                ("kind".to_string(), Value::Str(k.to_string())),
                (name.to_string(), Value::UInt(idx)),
            ])
        };
        match *self {
            Span::Vertex(v) => kv("vertex", "id", u64::from(v)),
            Span::Step(s) => kv("step", "index", s as u64),
            Span::Path(p) => kv("path", "index", p as u64),
            Span::Row { matrix, row } => Value::Object(vec![
                ("kind".to_string(), Value::Str("row".to_string())),
                ("matrix".to_string(), Value::Str(matrix.to_string())),
                ("row".to_string(), Value::UInt(row as u64)),
            ]),
            Span::Thread(t) => kv("thread", "index", u64::from(t)),
            Span::Proc(p) => kv("proc", "rank", u64::from(p)),
            Span::Source(l) => kv("source", "line", u64::from(l)),
            Span::Global => {
                Value::Object(vec![("kind".to_string(), Value::Str("global".to_string()))])
            }
        }
    }
}

/// One finding of an analysis pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable machine code, e.g. `"MMIO-A001"`. See [`crate::codes`].
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Location in the analyzed artifact.
    pub span: Span,
    /// Human-readable description of what was found.
    pub message: String,
    /// Optional remediation hint.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.severity, self.code, self.span, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (hint: {s})")?;
        }
        Ok(())
    }
}

impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("code".to_string(), Value::Str(self.code.to_string())),
            (
                "severity".to_string(),
                Value::Str(self.severity.as_str().to_string()),
            ),
            ("span".to_string(), self.span.to_value()),
            ("message".to_string(), Value::Str(self.message.clone())),
            (
                "suggestion".to_string(),
                match &self.suggestion {
                    Some(s) => Value::Str(s.clone()),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// A collection of diagnostics from one or more passes.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends a diagnostic.
    pub fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            suggestion: None,
        });
    }

    /// Appends a diagnostic with a remediation hint.
    pub fn push_with_hint(
        &mut self,
        code: &'static str,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            suggestion: Some(suggestion.into()),
        });
    }

    /// Findings at [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// The distinct codes present, sorted.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Whether a specific code was emitted.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl Serialize for Report {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("errors".to_string(), Value::UInt(self.error_count() as u64)),
            (
                "warnings".to_string(),
                Value::UInt(self.warning_count() as u64),
            ),
            ("diagnostics".to_string(), self.diagnostics.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_codes() {
        let mut r = Report::new();
        r.push("MMIO-A001", Severity::Error, Span::Vertex(3), "cycle");
        r.push("MMIO-A003", Severity::Warning, Span::Global, "dangling");
        r.push("MMIO-A001", Severity::Error, Span::Vertex(4), "cycle");
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert_eq!(r.codes(), vec!["MMIO-A001", "MMIO-A003"]);
        assert!(r.has_code("MMIO-A003"));
        assert!(!r.has_code("MMIO-S001"));
    }

    #[test]
    fn json_shape() {
        let mut r = Report::new();
        r.push_with_hint(
            "MMIO-S002",
            Severity::Error,
            Span::Step(7),
            "cache overflow",
            "raise M",
        );
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"MMIO-S002\""));
        assert!(json.contains("\"step\""));
        assert!(json.contains("\"raise M\""));
        let v: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("errors"), Some(&Value::Int(1)));
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic {
            code: "MMIO-R001",
            severity: Severity::Error,
            span: Span::Path(2),
            message: "hit count 9 exceeds bound 6".into(),
            suggestion: None,
        };
        let s = d.to_string();
        assert!(s.contains("MMIO-R001"));
        assert!(s.contains("path 2"));
    }
}
