//! Routing certificate auditing (`MMIO-Rxxx`).
//!
//! A [`RoutingCertificate`] is the explicit form of a claimed `m`-routing
//! (Definition 2): the full list of paths plus the claimed bound `m` and the
//! expected path count `|X|·|Y|`. [`audit_routing`] re-verifies the claim
//! from scratch: every path must traverse real edges, and no vertex — nor
//! meta-vertex, under the auditor's *own* copy-grouping (a union-find built
//! from edge coefficients, independent of [`mmio_cdag::MetaVertices`] and of
//! the `mmio-core` routing constructors) — may be hit more than `m` times.

use crate::codes;
use crate::diag::{Report, Severity, Span};
use mmio_cdag::{Cdag, VertexId};

/// An explicit routing claim to be audited.
#[derive(Clone, Debug)]
pub struct RoutingCertificate {
    /// The claimed bound `m`: no (meta-)vertex on more than `m` paths.
    pub claimed_bound: u64,
    /// The expected number of paths (`|X|·|Y|`), if the caller knows it.
    pub expected_paths: Option<u64>,
    /// The paths themselves, each a vertex sequence.
    pub paths: Vec<Vec<VertexId>>,
}

/// Measured quantities from a certificate audit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoutingAudit {
    /// Number of paths in the certificate.
    pub paths: u64,
    /// Maximum per-vertex hit count (with multiplicity).
    pub max_vertex_hits: u64,
    /// Maximum per-meta-vertex hit count (once per touching path).
    pub max_meta_hits: u64,
}

/// Union-find over dense vertex ids: the auditor's independent copy
/// grouping. A vertex joins its parent's group when it has exactly one
/// predecessor and the connecting coefficient is 1 — precisely the copies of
/// paper Section 3, re-derived from the edge data alone.
struct CopyGroups {
    parent: Vec<u32>,
}

impl CopyGroups {
    fn compute(g: &Cdag) -> CopyGroups {
        let mut uf = CopyGroups {
            parent: (0..g.n_vertices() as u32).collect(),
        };
        for v in g.vertices() {
            let preds = g.preds(v);
            if preds.len() == 1 && g.pred_coeffs(v)[0].is_one() {
                uf.union(v.0, preds[0].0);
            }
        }
        uf
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Audits a routing certificate against the graph, appending `MMIO-Rxxx`
/// diagnostics and returning the measured hit statistics.
pub fn audit_routing(g: &Cdag, cert: &RoutingCertificate, report: &mut Report) -> RoutingAudit {
    let n = g.n_vertices();
    let mut groups = CopyGroups::compute(g);
    let mut vertex_hits = vec![0u64; n];
    let mut meta_hits = vec![0u64; n];
    let mut audit = RoutingAudit {
        paths: cert.paths.len() as u64,
        ..RoutingAudit::default()
    };

    if let Some(expected) = cert.expected_paths {
        if expected != audit.paths {
            report.push(
                codes::ROUTE_PATH_COUNT,
                Severity::Error,
                Span::Global,
                format!(
                    "certificate has {} paths; an in-out routing requires |X|·|Y| = {expected}",
                    audit.paths
                ),
            );
        }
    }

    let mut touched: Vec<u32> = Vec::new();
    for (i, path) in cert.paths.iter().enumerate() {
        if path.is_empty() {
            report.push(
                codes::ROUTE_BAD_PATH,
                Severity::Error,
                Span::Path(i),
                "empty path",
            );
            continue;
        }
        // Paths are undirected walks: each hop must be an edge in either
        // direction.
        if let Some(w) = path
            .windows(2)
            .find(|w| !(g.preds(w[1]).contains(&w[0]) || g.succs(w[1]).contains(&w[0])))
        {
            report.push(
                codes::ROUTE_BAD_PATH,
                Severity::Error,
                Span::Path(i),
                format!("{:?}→{:?} is not an edge of the CDAG", w[0], w[1]),
            );
            continue;
        }
        touched.clear();
        for &v in path {
            vertex_hits[v.idx()] += 1;
            touched.push(groups.find(v.0));
        }
        // A path hits each meta-vertex at most once (the paper's counting).
        touched.sort_unstable();
        touched.dedup();
        for &root in &touched {
            meta_hits[root as usize] += 1;
        }
    }

    audit.max_vertex_hits = vertex_hits.iter().copied().max().unwrap_or(0);
    audit.max_meta_hits = meta_hits.iter().copied().max().unwrap_or(0);

    if audit.max_vertex_hits > cert.claimed_bound {
        let worst = (0..n).max_by_key(|&v| vertex_hits[v]).unwrap_or(0);
        report.push(
            codes::ROUTE_VERTEX_OVERLOAD,
            Severity::Error,
            Span::Vertex(worst as u32),
            format!(
                "vertex lies on {} paths, exceeding the claimed bound {}",
                audit.max_vertex_hits, cert.claimed_bound
            ),
        );
    }
    if audit.max_meta_hits > cert.claimed_bound {
        let worst = (0..n).max_by_key(|&v| meta_hits[v]).unwrap_or(0);
        report.push(
            codes::ROUTE_META_OVERLOAD,
            Severity::Error,
            Span::Vertex(worst as u32),
            format!(
                "meta-vertex rooted at v{worst} is hit by {} paths, exceeding the \
                 claimed bound {}",
                audit.max_meta_hits, cert.claimed_bound
            ),
        );
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn single_edge_path_is_clean() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        let cert = RoutingCertificate {
            claimed_bound: 2,
            expected_paths: Some(2),
            paths: vec![vec![input, combo], vec![combo, input]],
        };
        let mut report = Report::new();
        let audit = audit_routing(&g, &cert, &mut report);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert_eq!(audit.max_vertex_hits, 2);
    }

    #[test]
    fn non_edge_rejected() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let output = g.outputs().next().unwrap();
        let cert = RoutingCertificate {
            claimed_bound: 10,
            expected_paths: None,
            paths: vec![vec![input, output]],
        };
        let mut report = Report::new();
        audit_routing(&g, &cert, &mut report);
        assert!(report.has_code(codes::ROUTE_BAD_PATH));
    }

    #[test]
    fn copy_groups_match_meta_vertices() {
        // The auditor's independent grouping must agree with the library's
        // MetaVertices on real graphs.
        use mmio_cdag::MetaVertices;
        let g = build_cdag(&strassen(), 2);
        let meta = MetaVertices::compute(&g);
        let mut groups = CopyGroups::compute(&g);
        for v in g.vertices() {
            for w in g.vertices() {
                let same_lib = meta.meta_of(v) == meta.meta_of(w);
                let same_aud = groups.find(v.0) == groups.find(w.0);
                if same_lib != same_aud {
                    panic!("grouping disagrees at {v:?},{w:?}: lib={same_lib} aud={same_aud}");
                }
            }
        }
    }
}
