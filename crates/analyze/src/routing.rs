//! Routing certificate auditing (`MMIO-Rxxx`).
//!
//! A [`RoutingCertificate`] is the explicit form of a claimed `m`-routing
//! (Definition 2): the full list of paths plus the claimed bound `m` and the
//! expected path count `|X|·|Y|`. [`audit_routing`] re-verifies the claim
//! from scratch: every path must traverse real edges, and no vertex — nor
//! meta-vertex, under the auditor's *own* copy-grouping (a union-find built
//! from edge coefficients, independent of [`mmio_cdag::MetaVertices`] and of
//! the `mmio-core` routing constructors) — may be hit more than `m` times.

use crate::codes;
use crate::diag::{Report, Severity, Span};
use mmio_cdag::hits::{HitCounter, UnionFind};
use mmio_cdag::{Cdag, VertexId};

/// An explicit routing claim to be audited.
#[derive(Clone, Debug)]
pub struct RoutingCertificate {
    /// The claimed bound `m`: no (meta-)vertex on more than `m` paths.
    pub claimed_bound: u64,
    /// The expected number of paths (`|X|·|Y|`), if the caller knows it.
    pub expected_paths: Option<u64>,
    /// The paths themselves, each a vertex sequence.
    pub paths: Vec<Vec<VertexId>>,
}

/// Measured quantities from a certificate audit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoutingAudit {
    /// Number of paths in the certificate.
    pub paths: u64,
    /// Maximum per-vertex hit count (with multiplicity).
    pub max_vertex_hits: u64,
    /// Maximum per-meta-vertex hit count (once per touching path).
    pub max_meta_hits: u64,
}

/// The auditor's independent copy grouping: a union-find over dense vertex
/// ids where a vertex joins its parent's group when it has exactly one
/// predecessor and the connecting coefficient is 1 — precisely the copies of
/// paper Section 3, re-derived from the edge data alone (independent of
/// [`mmio_cdag::MetaVertices`]). Returned as a flat root table.
fn copy_group_roots(g: &Cdag) -> Vec<u32> {
    let mut uf = UnionFind::new(g.n_vertices());
    for v in g.vertices() {
        let preds = g.preds(v);
        if preds.len() == 1 && g.pred_coeffs(v)[0].is_one() {
            uf.union(v.0, preds[0].0);
        }
    }
    uf.roots()
}

/// The streaming form of the routing audit: the union-find copy grouping is
/// computed once at construction, and the hit buffers are reused across
/// [`RoutingAuditor::reset`] calls — so one auditor can re-verify every
/// Fact-1 copy of a transported routing class without reallocating.
pub struct RoutingAuditor<'g> {
    g: &'g Cdag,
    /// Shared counter, grouped by [`copy_group_roots`]. Tracks only the
    /// structurally valid paths; `paths` counts all submitted ones.
    counter: HitCounter,
    paths: u64,
}

impl<'g> RoutingAuditor<'g> {
    /// Creates an auditor for `g`, deriving the independent copy grouping.
    pub fn new(g: &'g Cdag) -> RoutingAuditor<'g> {
        RoutingAuditor {
            g,
            counter: HitCounter::with_groups(copy_group_roots(g)),
            paths: 0,
        }
    }

    /// Clears hit counts (keeping the copy grouping and allocations) so the
    /// auditor can audit another path family over the same graph.
    pub fn reset(&mut self) {
        self.counter.reset();
        self.paths = 0;
    }

    /// Audits one path (reported as path `index`), checking each hop against
    /// the graph's real edges and accumulating hit counts. Returns whether
    /// the path was structurally valid (invalid paths are diagnosed and
    /// excluded from the counts, but still counted toward `paths`).
    pub fn add_path(&mut self, index: usize, path: &[VertexId], report: &mut Report) -> bool {
        self.paths += 1;
        if path.is_empty() {
            report.push(
                codes::ROUTE_BAD_PATH,
                Severity::Error,
                Span::Path(index),
                "empty path",
            );
            return false;
        }
        // Paths are undirected walks: each hop must be an edge in either
        // direction.
        let g = self.g;
        if let Some(w) = path
            .windows(2)
            .find(|w| !(g.preds(w[1]).contains(&w[0]) || g.succs(w[1]).contains(&w[0])))
        {
            report.push(
                codes::ROUTE_BAD_PATH,
                Severity::Error,
                Span::Path(index),
                format!("{:?}→{:?} is not an edge of the CDAG", w[0], w[1]),
            );
            return false;
        }
        self.counter.add_path(path.iter().map(|v| v.0));
        true
    }

    /// Checks the accumulated counts against `claimed_bound`, appending
    /// overload diagnostics, and returns the measured statistics.
    pub fn finish(&self, claimed_bound: u64, report: &mut Report) -> RoutingAudit {
        let s = self.counter.summary();
        let audit = RoutingAudit {
            paths: self.paths,
            max_vertex_hits: s.max_vertex_hits,
            max_meta_hits: s.max_group_hits,
        };
        if audit.max_vertex_hits > claimed_bound {
            let worst = self.counter.argmax_vertex().unwrap_or(0);
            report.push(
                codes::ROUTE_VERTEX_OVERLOAD,
                Severity::Error,
                Span::Vertex(worst),
                format!(
                    "vertex lies on {} paths, exceeding the claimed bound {}",
                    audit.max_vertex_hits, claimed_bound
                ),
            );
        }
        if audit.max_meta_hits > claimed_bound {
            let worst = self.counter.argmax_group().unwrap_or(0);
            report.push(
                codes::ROUTE_META_OVERLOAD,
                Severity::Error,
                Span::Vertex(worst),
                format!(
                    "meta-vertex rooted at v{worst} is hit by {} paths, exceeding the \
                     claimed bound {}",
                    audit.max_meta_hits, claimed_bound
                ),
            );
        }
        audit
    }
}

/// Audits a family of borrowed path slices (e.g. straight out of an
/// `mmio_core` path arena) without requiring them to be materialized as a
/// `Vec<Vec<VertexId>>` certificate first. Semantics match
/// [`audit_routing`]; the path-count check runs after the sweep because the
/// iterator's length is not known upfront.
pub fn audit_routing_paths<'a>(
    g: &Cdag,
    claimed_bound: u64,
    expected_paths: Option<u64>,
    paths: impl IntoIterator<Item = &'a [VertexId]>,
    report: &mut Report,
) -> RoutingAudit {
    let mut auditor = RoutingAuditor::new(g);
    for (i, path) in paths.into_iter().enumerate() {
        auditor.add_path(i, path, report);
    }
    if let Some(expected) = expected_paths {
        if expected != auditor.paths {
            report.push(
                codes::ROUTE_PATH_COUNT,
                Severity::Error,
                Span::Global,
                format!(
                    "certificate has {} paths; an in-out routing requires |X|·|Y| = {expected}",
                    auditor.paths
                ),
            );
        }
    }
    auditor.finish(claimed_bound, report)
}

/// Reports that the Routing Theorem's hypotheses fail outright: no
/// n₀-capacity Hall matching exists, so there is no path family to audit
/// at all. Lives here so the `MMIO-Rxxx` family keeps a single emitting
/// crate even when the caller (e.g. the serve tier) detects the failure.
pub fn report_routing_infeasible(report: &mut Report) {
    report.push(
        codes::ROUTE_BAD_PATH,
        Severity::Error,
        Span::Global,
        "no n₀-capacity Hall matching: the Routing Theorem's hypotheses fail",
    );
}

/// Audits a routing certificate against the graph, appending `MMIO-Rxxx`
/// diagnostics and returning the measured hit statistics.
pub fn audit_routing(g: &Cdag, cert: &RoutingCertificate, report: &mut Report) -> RoutingAudit {
    if let Some(expected) = cert.expected_paths {
        let actual = cert.paths.len() as u64;
        if expected != actual {
            report.push(
                codes::ROUTE_PATH_COUNT,
                Severity::Error,
                Span::Global,
                format!(
                    "certificate has {actual} paths; an in-out routing requires |X|·|Y| = \
                     {expected}"
                ),
            );
        }
    }
    let mut auditor = RoutingAuditor::new(g);
    for (i, path) in cert.paths.iter().enumerate() {
        auditor.add_path(i, path, report);
    }
    auditor.finish(cert.claimed_bound, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn single_edge_path_is_clean() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        let cert = RoutingCertificate {
            claimed_bound: 2,
            expected_paths: Some(2),
            paths: vec![vec![input, combo], vec![combo, input]],
        };
        let mut report = Report::new();
        let audit = audit_routing(&g, &cert, &mut report);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert_eq!(audit.max_vertex_hits, 2);
    }

    #[test]
    fn non_edge_rejected() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let output = g.outputs().next().unwrap();
        let cert = RoutingCertificate {
            claimed_bound: 10,
            expected_paths: None,
            paths: vec![vec![input, output]],
        };
        let mut report = Report::new();
        audit_routing(&g, &cert, &mut report);
        assert!(report.has_code(codes::ROUTE_BAD_PATH));
    }

    #[test]
    fn slice_audit_matches_certificate_audit() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        let cert = RoutingCertificate {
            claimed_bound: 2,
            expected_paths: Some(2),
            paths: vec![vec![input, combo], vec![combo, input]],
        };
        let mut r1 = Report::new();
        let by_cert = audit_routing(&g, &cert, &mut r1);
        let mut r2 = Report::new();
        let by_slices = audit_routing_paths(
            &g,
            cert.claimed_bound,
            cert.expected_paths,
            cert.paths.iter().map(Vec::as_slice),
            &mut r2,
        );
        assert_eq!(by_cert, by_slices);
        assert_eq!(r1.diagnostics.len(), r2.diagnostics.len());
    }

    #[test]
    fn auditor_reset_reuses_grouping() {
        let g = build_cdag(&strassen(), 1);
        let input = g.inputs().next().unwrap();
        let combo = g.succs(input)[0];
        let mut auditor = RoutingAuditor::new(&g);
        let mut report = Report::new();
        assert!(auditor.add_path(0, &[input, combo], &mut report));
        assert_eq!(auditor.finish(1, &mut report).paths, 1);
        auditor.reset();
        // After reset, prior hits are gone: the same path audits clean again.
        assert!(auditor.add_path(0, &[input, combo], &mut report));
        let audit = auditor.finish(1, &mut report);
        assert_eq!(audit.paths, 1);
        assert_eq!(audit.max_vertex_hits, 1);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
    }

    #[test]
    fn copy_groups_match_meta_vertices() {
        // The auditor's independent grouping must agree with the library's
        // MetaVertices on real graphs.
        use mmio_cdag::MetaVertices;
        let g = build_cdag(&strassen(), 2);
        let meta = MetaVertices::compute(&g);
        let roots = copy_group_roots(&g);
        for v in g.vertices() {
            for w in g.vertices() {
                let same_lib = meta.meta_of(v) == meta.meta_of(w);
                let same_aud = roots[v.idx()] == roots[w.idx()];
                if same_lib != same_aud {
                    panic!("grouping disagrees at {v:?},{w:?}: lib={same_lib} aud={same_aud}");
                }
            }
        }
    }
}
