//! [`GraphFacts`]: the flattened structural view the CDAG lints run on.
//!
//! The lints deliberately do not consume [`mmio_cdag::Cdag`] directly:
//! a real `Cdag` is correct by construction (dense ids are a topological
//! order), so defects like cycles or rank inversions could never be
//! exercised. Extracting the facts into a plain adjacency structure lets
//! golden tests seed every defect class while production use extracts the
//! facts from a built graph.

use mmio_cdag::base::Side;
use mmio_cdag::{Cdag, Layer};

/// Flattened structural facts about a (claimed) CDAG.
#[derive(Clone, Debug, Default)]
pub struct GraphFacts {
    /// Predecessor lists per vertex (dense ids).
    pub preds: Vec<Vec<u32>>,
    /// Successor lists per vertex.
    pub succs: Vec<Vec<u32>>,
    /// Paper rank of each vertex (`0..=2r+1`).
    pub rank: Vec<u32>,
    /// Whether each vertex is an input of the whole CDAG.
    pub is_input: Vec<bool>,
    /// Whether each vertex is an output of the whole CDAG.
    pub is_output: Vec<bool>,
    /// For copy vertices, the vertex they are declared to copy.
    pub copy_parent: Vec<Option<u32>>,
    /// For copy vertices, whether the copying edge carries coefficient 1.
    pub copy_coeff_one: Vec<bool>,
}

impl GraphFacts {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.preds.len()
    }

    /// Extracts the facts of a built CDAG.
    ///
    /// Copy vertices are identified from the definition (paper Section 3):
    /// a vertex is a copy when the base-graph row generating it is trivial
    /// (one nonzero coefficient, equal to 1); its parent is its single
    /// predecessor. This re-derivation is intentionally independent of
    /// [`mmio_cdag::MetaVertices`], which the lints are auditing.
    pub fn from_cdag(g: &Cdag) -> GraphFacts {
        let base = g.base();
        let (a, b) = (base.a(), base.b());
        let triv_a: Vec<bool> = (0..b).map(|m| base.row_is_trivial(Side::A, m)).collect();
        let triv_b: Vec<bool> = (0..b).map(|m| base.row_is_trivial(Side::B, m)).collect();
        let triv_d: Vec<bool> = (0..a).map(|y| base.dec_row_is_trivial(y)).collect();

        let n = g.n_vertices();
        let mut facts = GraphFacts {
            preds: Vec::with_capacity(n),
            succs: Vec::with_capacity(n),
            rank: Vec::with_capacity(n),
            is_input: Vec::with_capacity(n),
            is_output: Vec::with_capacity(n),
            copy_parent: vec![None; n],
            copy_coeff_one: vec![false; n],
        };
        for v in g.vertices() {
            facts.preds.push(g.preds(v).iter().map(|p| p.0).collect());
            facts.succs.push(g.succs(v).iter().map(|s| s.0).collect());
            facts.rank.push(g.rank(v));
            facts.is_input.push(g.is_input(v));
            facts.is_output.push(g.is_output(v));

            let vr = g.vref(v);
            let is_copy = match vr.layer {
                Layer::EncA | Layer::EncB if vr.level > 0 => {
                    let tau = (vr.mul % b as u64) as usize;
                    match vr.layer {
                        Layer::EncA => triv_a[tau],
                        _ => triv_b[tau],
                    }
                }
                Layer::Dec if vr.level > 0 => {
                    // O(1) radix-table lookup; recomputing `a^{level-1}` per
                    // vertex made this loop O(n·r).
                    let upsilon = (vr.entry / g.entry_width(Layer::Dec, vr.level - 1)) as usize;
                    triv_d[upsilon]
                }
                _ => false,
            };
            if is_copy {
                facts.copy_parent[v.idx()] = g.preds(v).first().map(|p| p.0);
                facts.copy_coeff_one[v.idx()] =
                    g.pred_coeffs(v).first().is_some_and(|c| c.is_one());
            }
        }
        facts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmio_algos::strassen::strassen;
    use mmio_cdag::build::build_cdag;

    #[test]
    fn extraction_shape() {
        let g = build_cdag(&strassen(), 2);
        let f = GraphFacts::from_cdag(&g);
        assert_eq!(f.n(), g.n_vertices());
        assert_eq!(f.is_input.iter().filter(|&&x| x).count(), 2 * 16);
        assert_eq!(f.is_output.iter().filter(|&&x| x).count(), 16);
        // Edge lists agree in both directions.
        let edges: usize = f.preds.iter().map(Vec::len).sum();
        let back: usize = f.succs.iter().map(Vec::len).sum();
        assert_eq!(edges, back);
        assert_eq!(edges, g.n_edges());
    }

    #[test]
    fn copies_have_parents_with_unit_coefficient() {
        let g = build_cdag(&strassen(), 2);
        let f = GraphFacts::from_cdag(&g);
        let copies = f.copy_parent.iter().filter(|p| p.is_some()).count();
        assert!(copies > 0, "Strassen copies inputs into M2..M7");
        for v in 0..f.n() {
            if let Some(p) = f.copy_parent[v] {
                assert_eq!(f.preds[v], vec![p]);
                assert!(f.copy_coeff_one[v]);
            }
        }
    }
}
