//! The diagnostic code registry.
//!
//! Codes are stable identifiers: tests and downstream tooling match on them,
//! so a code is never reused for a different meaning. Families:
//!
//! - `MMIO-Axxx` — CDAG structure lints ([`crate::cdag`]);
//! - `MMIO-Sxxx` — schedule legality ([`crate::schedule`]);
//! - `MMIO-Rxxx` — routing certificates ([`crate::routing`]);
//! - `MMIO-Cxxx` — concurrency soundness (sync traces and the `mmio-check`
//!   model checker);
//! - `MMIO-Dxxx` — distributed-run audits ([`crate::distsim`]);
//! - `MMIO-Fxxx` — serve-tier fault handling (`mmio-serve`: snapshot
//!   recovery, load shedding, deadlines, panic isolation);
//! - `MMIO-Lxxx` — workspace static-soundness lints (`mmio-audit`:
//!   panic-reachability on the trust paths, diagnostic-registry lifecycle,
//!   determinism hygiene).
//!
//! The `MMIO-Vxxx` family lives in `mmio-cert::codes` — the standalone
//! verifier registers its own reject codes so its trust base stays free of
//! the engine crates. [`all_tables`] merges every family into one
//! machine-checkable registry.

/// Cycle detected: the vertex ordering admits no topological order.
pub const CDAG_CYCLE: &str = "MMIO-A001";
/// Edge does not increase the paper rank (pred rank ≥ succ rank).
pub const CDAG_RANK_MISMATCH: &str = "MMIO-A002";
/// Dangling vertex: a non-output whose value is never used.
pub const CDAG_DANGLING: &str = "MMIO-A003";
/// Vertex unreachable from every input.
pub const CDAG_UNREACHABLE: &str = "MMIO-A004";
/// Copy vertex violating the meta-vertex rules (≠ 1 predecessor, wrong
/// parent, or coefficient ≠ 1).
pub const CDAG_COPY_RULE: &str = "MMIO-A005";
/// Fact 1 violation: the middle `2(k+1)` ranks do not decompose into
/// `b^{r-k}` vertex-disjoint copies of `G_k`.
pub const CDAG_FACT1: &str = "MMIO-A006";
/// Single-use assumption violated: a nontrivial linear combination feeds
/// more than one multiplication.
pub const CDAG_MULTI_USE: &str = "MMIO-A007";
/// The base graph does not compute matrix multiplication (tensor identity
/// violated).
pub const CDAG_INCORRECT: &str = "MMIO-A008";
/// Lemma 1 hypothesis fails: one side's encoding has only trivial rows.
pub const CDAG_LEMMA1: &str = "MMIO-A009";

/// Compute with an operand not resident in cache.
pub const SCHED_MISSING_OPERAND: &str = "MMIO-S001";
/// Cache occupancy would exceed `M`.
pub const SCHED_CAPACITY: &str = "MMIO-S002";
/// Schedule ended with an output never stored to slow memory.
pub const SCHED_OUTPUT_NOT_STORED: &str = "MMIO-S003";
/// Illegal load: value not in slow memory, or already resident.
pub const SCHED_BAD_LOAD: &str = "MMIO-S004";
/// Illegal compute: input vertex, or recomputation.
pub const SCHED_BAD_COMPUTE: &str = "MMIO-S005";
/// Store or drop of a value not resident in cache.
pub const SCHED_NOT_RESIDENT: &str = "MMIO-S006";
/// Schedule ended with a vertex never computed.
pub const SCHED_NOT_COMPUTED: &str = "MMIO-S007";

/// A vertex lies on more paths than the certificate's claimed bound.
pub const ROUTE_VERTEX_OVERLOAD: &str = "MMIO-R001";
/// A meta-vertex is hit by more paths than the claimed bound.
pub const ROUTE_META_OVERLOAD: &str = "MMIO-R002";
/// A certificate path traverses a non-edge (or is empty).
pub const ROUTE_BAD_PATH: &str = "MMIO-R003";
/// The certificate contains the wrong number of paths.
pub const ROUTE_PATH_COUNT: &str = "MMIO-R004";

/// Data race: two threads access the same location, at least one writes,
/// and no happens-before edge orders them.
pub const CONC_DATA_RACE: &str = "MMIO-C001";
/// Lost update: an index was claimed by two workers (or never claimed),
/// so the parallel output diverges from serial.
pub const CONC_LOST_UPDATE: &str = "MMIO-C002";
/// Double fill: the same memo class was built and inserted twice.
pub const CONC_DOUBLE_FILL: &str = "MMIO-C003";
/// The bounded model checker found a schedule whose output differs from
/// the serial execution (determinism contract violated).
pub const CONC_SCHEDULE_DIVERGES: &str = "MMIO-C004";
/// The bounded model checker found a schedule that deadlocks (some thread
/// neither finished nor has an enabled step).
pub const CONC_DEADLOCK: &str = "MMIO-C005";

/// Conservation violated: `total_words`, `Σ sent`, `Σ received`, or the
/// per-rank critical-path recount disagree with the run's claims.
pub const DIST_CONSERVATION: &str = "MMIO-D001";
/// A value was sent or consumed before it was available at its owner.
pub const DIST_NOT_AVAILABLE: &str = "MMIO-D002";
/// Assignment totality violated: a vertex executed on the wrong rank,
/// twice, or never.
pub const DIST_ASSIGNMENT: &str = "MMIO-D003";
/// A processor's cache occupancy exceeded `M` (or evict/insert events are
/// inconsistent with cache membership).
pub const DIST_OVER_CAPACITY: &str = "MMIO-D004";
/// A receive event has no outstanding matching send.
pub const DIST_UNMATCHED_RECV: &str = "MMIO-D005";
/// Contention conservation violated: the claimed per-round words, link
/// occupancy, hop totals, or per-rank/per-link load maxima disagree with
/// a recount of the event stream routed over the claimed topology.
pub const DIST_LINK_CONSERVATION: &str = "MMIO-D006";
/// The claimed per-round contended times or the makespan disagree with
/// the α-β-γ formula applied to the recounted loads (or the model's
/// inverse bandwidth is 0, voiding the makespan ≥ critical-path bound).
pub const DIST_MAKESPAN: &str = "MMIO-D007";

/// A request line failed to parse or validate (not JSON, unknown op,
/// wrong field types, out-of-range parameters, unknown algorithm).
pub const SERVE_BAD_REQUEST: &str = "MMIO-F000";
/// Cache snapshot unreadable or unparseable: not JSON, truncated, or
/// missing required fields. The entry is quarantined and recomputed.
pub const SERVE_SNAPSHOT_UNPARSEABLE: &str = "MMIO-F001";
/// Cache snapshot checksum mismatch (bit flip or torn final write). The
/// entry is quarantined and recomputed.
pub const SERVE_SNAPSHOT_CHECKSUM: &str = "MMIO-F002";
/// Cache snapshot carries a stale or unknown format version. The entry is
/// quarantined and recomputed.
pub const SERVE_SNAPSHOT_VERSION: &str = "MMIO-F003";
/// Cache snapshot's content-hash key disagrees with its filename or its
/// recomputed content hash (cross-linked or mislabeled entry). Quarantined.
pub const SERVE_SNAPSHOT_KEY: &str = "MMIO-F004";
/// Transient cache I/O failure: retries with backoff were exhausted and
/// the request degraded to memo-less recompute.
pub const SERVE_CACHE_DEGRADED: &str = "MMIO-F005";
/// A job panicked; the panic was isolated to the job and surfaced as a
/// typed response instead of taking the server down.
pub const SERVE_JOB_PANIC: &str = "MMIO-F006";
/// A request's deadline expired before its job produced a result.
pub const SERVE_DEADLINE: &str = "MMIO-F007";
/// The bounded job queue was full; the request was shed with a typed
/// `overloaded` response instead of queuing unboundedly.
pub const SERVE_OVERLOADED: &str = "MMIO-F008";
/// A worker exceeded the wedge threshold and was replaced by a fresh one.
pub const SERVE_WORKER_REPLACED: &str = "MMIO-F009";
/// A cached payload passed its checksum but failed semantic
/// re-verification (`mmio-cert`); quarantined and recomputed.
pub const SERVE_PAYLOAD_REVERIFY: &str = "MMIO-F010";
/// An orphaned temp file from an interrupted persist was swept during the
/// recovery scan.
pub const SERVE_ORPHAN_TEMP: &str = "MMIO-F011";

/// A panic site (`unwrap`/`expect`) is reachable from a static trust root
/// (`mmio_cert::verify_json` or the serve request path) with no
/// `// audit: safe —` justification.
pub const AUDIT_UNWRAP_REACHABLE: &str = "MMIO-L001";
/// An explicit panic macro (`panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`, `assert!` family) is reachable from a trust root.
pub const AUDIT_PANIC_REACHABLE: &str = "MMIO-L002";
/// A slice/array indexing expression (aborts on out-of-bounds in every
/// profile) is reachable from a trust root.
pub const AUDIT_INDEX_REACHABLE: &str = "MMIO-L003";
/// Unchecked integer arithmetic (overflow panics under
/// `debug_assertions`) is reachable from a trust root. Advisory: release
/// builds wrap instead of aborting.
pub const AUDIT_ARITH_REACHABLE: &str = "MMIO-L004";
/// An `// audit: safe —` justification comment with no dischargeable site
/// on its line (orphaned — the code it justified is gone).
pub const AUDIT_JUSTIFICATION_ORPHANED: &str = "MMIO-L005";
/// An `// audit: safe —` justification on a site no audit pass flags
/// (stale — the site is no longer reachable from any trust root).
pub const AUDIT_JUSTIFICATION_STALE: &str = "MMIO-L006";
/// A diagnostic code is emitted by workspace source but registered in no
/// `codes::TABLE`.
pub const AUDIT_CODE_UNREGISTERED: &str = "MMIO-L010";
/// A registered diagnostic code is never emitted by any crate (dead).
pub const AUDIT_CODE_DEAD: &str = "MMIO-L011";
/// A registered diagnostic code is not documented in `DESIGN.md`.
pub const AUDIT_CODE_UNDOCUMENTED: &str = "MMIO-L012";
/// A registered diagnostic code is asserted by no test or golden-corpus
/// file.
pub const AUDIT_CODE_UNTESTED: &str = "MMIO-L013";
/// A diagnostic code is emitted by two different crates.
pub const AUDIT_CODE_DUPLICATE_EMITTER: &str = "MMIO-L014";
/// `HashMap`/`HashSet` iteration feeds a rendered or serialized output
/// path (iteration order is nondeterministic; output bytes must not be).
pub const AUDIT_HASH_ITERATION: &str = "MMIO-L020";
/// A wall-clock source (`SystemTime::now`/`Instant::now`) is reachable
/// from certificate emission or memo-key construction.
pub const AUDIT_TIME_IN_PAYLOAD: &str = "MMIO-L021";
/// A crate root is missing `#![forbid(unsafe_code)]`.
pub const AUDIT_MISSING_FORBID_UNSAFE: &str = "MMIO-L022";
/// A `mutate`/`trace` feature-gated item is callable from a
/// default-feature build (feature-gate hygiene).
pub const AUDIT_FEATURE_LEAK: &str = "MMIO-L023";

/// `(code, one-line description)` for every registered code, in order —
/// the source of the documentation table in `DESIGN.md`.
pub const TABLE: &[(&str, &str)] = &[
    (CDAG_CYCLE, "cycle: no topological order exists"),
    (CDAG_RANK_MISMATCH, "edge does not increase paper rank"),
    (CDAG_DANGLING, "non-output vertex is never used"),
    (CDAG_UNREACHABLE, "vertex unreachable from every input"),
    (CDAG_COPY_RULE, "copy vertex violates meta-vertex rules"),
    (CDAG_FACT1, "Fact 1 decomposition check failed"),
    (CDAG_MULTI_USE, "single-use assumption violated"),
    (CDAG_INCORRECT, "tensor identity violated"),
    (
        CDAG_LEMMA1,
        "Lemma 1 hypothesis fails (all-trivial encoding)",
    ),
    (SCHED_MISSING_OPERAND, "compute with non-resident operand"),
    (SCHED_CAPACITY, "cache occupancy exceeds M"),
    (SCHED_OUTPUT_NOT_STORED, "output never stored"),
    (SCHED_BAD_LOAD, "illegal load"),
    (SCHED_BAD_COMPUTE, "illegal compute"),
    (SCHED_NOT_RESIDENT, "store/drop of non-resident value"),
    (SCHED_NOT_COMPUTED, "vertex never computed"),
    (
        ROUTE_VERTEX_OVERLOAD,
        "vertex hit count exceeds claimed bound",
    ),
    (
        ROUTE_META_OVERLOAD,
        "meta-vertex hit count exceeds claimed bound",
    ),
    (ROUTE_BAD_PATH, "path traverses a non-edge or is empty"),
    (ROUTE_PATH_COUNT, "wrong number of paths in certificate"),
    (CONC_DATA_RACE, "unordered conflicting accesses (data race)"),
    (
        CONC_LOST_UPDATE,
        "index claimed twice or never (lost update)",
    ),
    (CONC_DOUBLE_FILL, "memo class filled twice"),
    (
        CONC_SCHEDULE_DIVERGES,
        "a schedule's output differs from serial",
    ),
    (CONC_DEADLOCK, "a schedule deadlocks"),
    (
        DIST_CONSERVATION,
        "send/recv/word totals violate conservation",
    ),
    (DIST_NOT_AVAILABLE, "value used before it was available"),
    (
        DIST_ASSIGNMENT,
        "vertex executed on wrong rank, twice, or never",
    ),
    (DIST_OVER_CAPACITY, "local cache occupancy exceeds M"),
    (DIST_UNMATCHED_RECV, "receive without a matching send"),
    (
        DIST_LINK_CONSERVATION,
        "per-round link occupancy diverges from routed sends",
    ),
    (
        DIST_MAKESPAN,
        "contended round times or makespan diverge from the α-β-γ formula",
    ),
    (SERVE_BAD_REQUEST, "malformed or invalid request line"),
    (
        SERVE_SNAPSHOT_UNPARSEABLE,
        "cache snapshot unreadable or truncated",
    ),
    (SERVE_SNAPSHOT_CHECKSUM, "cache snapshot checksum mismatch"),
    (
        SERVE_SNAPSHOT_VERSION,
        "cache snapshot format version stale or unknown",
    ),
    (SERVE_SNAPSHOT_KEY, "cache snapshot key mismatch"),
    (
        SERVE_CACHE_DEGRADED,
        "cache I/O retries exhausted; degraded to recompute",
    ),
    (SERVE_JOB_PANIC, "job panicked; isolated as typed response"),
    (SERVE_DEADLINE, "request deadline exceeded"),
    (SERVE_OVERLOADED, "job queue full; request shed"),
    (SERVE_WORKER_REPLACED, "wedged worker replaced"),
    (
        SERVE_PAYLOAD_REVERIFY,
        "cached payload failed re-verification",
    ),
    (SERVE_ORPHAN_TEMP, "orphaned temp file swept on recovery"),
    (
        AUDIT_UNWRAP_REACHABLE,
        "unwrap/expect reachable from a trust root",
    ),
    (
        AUDIT_PANIC_REACHABLE,
        "panic-family macro reachable from a trust root",
    ),
    (
        AUDIT_INDEX_REACHABLE,
        "slice indexing reachable from a trust root",
    ),
    (
        AUDIT_ARITH_REACHABLE,
        "unchecked arithmetic reachable from a trust root",
    ),
    (
        AUDIT_JUSTIFICATION_ORPHANED,
        "audit justification with nothing to justify",
    ),
    (
        AUDIT_JUSTIFICATION_STALE,
        "audit justification on an unflagged site",
    ),
    (
        AUDIT_CODE_UNREGISTERED,
        "emitted code registered in no codes::TABLE",
    ),
    (AUDIT_CODE_DEAD, "registered code never emitted"),
    (
        AUDIT_CODE_UNDOCUMENTED,
        "registered code missing from DESIGN.md",
    ),
    (
        AUDIT_CODE_UNTESTED,
        "registered code asserted by no test or corpus",
    ),
    (
        AUDIT_CODE_DUPLICATE_EMITTER,
        "code emitted by two different crates",
    ),
    (
        AUDIT_HASH_ITERATION,
        "HashMap/HashSet iteration feeds rendered output",
    ),
    (
        AUDIT_TIME_IN_PAYLOAD,
        "wall-clock source reachable from payload/key construction",
    ),
    (
        AUDIT_MISSING_FORBID_UNSAFE,
        "crate root missing #![forbid(unsafe_code)]",
    ),
    (
        AUDIT_FEATURE_LEAK,
        "mutate/trace feature item callable from default build",
    ),
];

/// The merged cross-crate code registry: every `(registering crate,
/// table)` pair in the workspace. The auditor's lifecycle pass, the CLI
/// `codes` listing, and the `DESIGN.md` tables all read this one source,
/// so a code added to either table is automatically lifecycle-checked.
pub fn all_tables() -> Vec<(&'static str, &'static [(&'static str, &'static str)])> {
    vec![
        ("mmio-analyze", TABLE),
        ("mmio-cert", mmio_cert::codes::TABLE),
    ]
}

#[cfg(test)]
mod tests {
    use super::{all_tables, TABLE};

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for (code, desc) in TABLE {
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(
                code.starts_with("MMIO-") && code.len() == 9,
                "malformed {code}"
            );
            assert!(!desc.is_empty());
        }
    }

    #[test]
    fn merged_registry_has_no_duplicate_codes_or_split_families() {
        let tables = all_tables();
        assert!(tables.len() >= 2, "expected analyze + cert tables");
        let mut codes = std::collections::HashSet::new();
        // A family letter (the `X` in `MMIO-Xnnn`) must be registered by
        // exactly one crate: two crates sharing a letter would make code
        // provenance ambiguous.
        let mut family_owner: std::collections::HashMap<char, &str> =
            std::collections::HashMap::new();
        for (crate_name, table) in &tables {
            assert!(!table.is_empty(), "{crate_name}: empty table");
            for (code, desc) in *table {
                assert!(
                    code.starts_with("MMIO-") && code.len() == 9,
                    "malformed {code}"
                );
                assert!(codes.insert(*code), "duplicate code {code}");
                assert!(!desc.is_empty(), "{code}: empty description");
                let family = code.as_bytes()[5] as char;
                let owner = family_owner.entry(family).or_insert(crate_name);
                assert_eq!(
                    owner, crate_name,
                    "family {family} split across {owner} and {crate_name}"
                );
            }
        }
        // Spot-check the families the workspace relies on today.
        for family in ['A', 'S', 'R', 'C', 'D', 'F', 'L', 'V'] {
            assert!(
                family_owner.contains_key(&family),
                "family {family} missing from the merged registry"
            );
        }
    }
}
