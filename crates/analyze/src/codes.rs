//! The diagnostic code registry.
//!
//! Codes are stable identifiers: tests and downstream tooling match on them,
//! so a code is never reused for a different meaning. Families:
//!
//! - `MMIO-Axxx` — CDAG structure lints ([`crate::cdag`]);
//! - `MMIO-Sxxx` — schedule legality ([`crate::schedule`]);
//! - `MMIO-Rxxx` — routing certificates ([`crate::routing`]).

/// Cycle detected: the vertex ordering admits no topological order.
pub const CDAG_CYCLE: &str = "MMIO-A001";
/// Edge does not increase the paper rank (pred rank ≥ succ rank).
pub const CDAG_RANK_MISMATCH: &str = "MMIO-A002";
/// Dangling vertex: a non-output whose value is never used.
pub const CDAG_DANGLING: &str = "MMIO-A003";
/// Vertex unreachable from every input.
pub const CDAG_UNREACHABLE: &str = "MMIO-A004";
/// Copy vertex violating the meta-vertex rules (≠ 1 predecessor, wrong
/// parent, or coefficient ≠ 1).
pub const CDAG_COPY_RULE: &str = "MMIO-A005";
/// Fact 1 violation: the middle `2(k+1)` ranks do not decompose into
/// `b^{r-k}` vertex-disjoint copies of `G_k`.
pub const CDAG_FACT1: &str = "MMIO-A006";
/// Single-use assumption violated: a nontrivial linear combination feeds
/// more than one multiplication.
pub const CDAG_MULTI_USE: &str = "MMIO-A007";
/// The base graph does not compute matrix multiplication (tensor identity
/// violated).
pub const CDAG_INCORRECT: &str = "MMIO-A008";
/// Lemma 1 hypothesis fails: one side's encoding has only trivial rows.
pub const CDAG_LEMMA1: &str = "MMIO-A009";

/// Compute with an operand not resident in cache.
pub const SCHED_MISSING_OPERAND: &str = "MMIO-S001";
/// Cache occupancy would exceed `M`.
pub const SCHED_CAPACITY: &str = "MMIO-S002";
/// Schedule ended with an output never stored to slow memory.
pub const SCHED_OUTPUT_NOT_STORED: &str = "MMIO-S003";
/// Illegal load: value not in slow memory, or already resident.
pub const SCHED_BAD_LOAD: &str = "MMIO-S004";
/// Illegal compute: input vertex, or recomputation.
pub const SCHED_BAD_COMPUTE: &str = "MMIO-S005";
/// Store or drop of a value not resident in cache.
pub const SCHED_NOT_RESIDENT: &str = "MMIO-S006";
/// Schedule ended with a vertex never computed.
pub const SCHED_NOT_COMPUTED: &str = "MMIO-S007";

/// A vertex lies on more paths than the certificate's claimed bound.
pub const ROUTE_VERTEX_OVERLOAD: &str = "MMIO-R001";
/// A meta-vertex is hit by more paths than the claimed bound.
pub const ROUTE_META_OVERLOAD: &str = "MMIO-R002";
/// A certificate path traverses a non-edge (or is empty).
pub const ROUTE_BAD_PATH: &str = "MMIO-R003";
/// The certificate contains the wrong number of paths.
pub const ROUTE_PATH_COUNT: &str = "MMIO-R004";

/// `(code, one-line description)` for every registered code, in order —
/// the source of the documentation table in `DESIGN.md`.
pub const TABLE: &[(&str, &str)] = &[
    (CDAG_CYCLE, "cycle: no topological order exists"),
    (CDAG_RANK_MISMATCH, "edge does not increase paper rank"),
    (CDAG_DANGLING, "non-output vertex is never used"),
    (CDAG_UNREACHABLE, "vertex unreachable from every input"),
    (CDAG_COPY_RULE, "copy vertex violates meta-vertex rules"),
    (CDAG_FACT1, "Fact 1 decomposition check failed"),
    (CDAG_MULTI_USE, "single-use assumption violated"),
    (CDAG_INCORRECT, "tensor identity violated"),
    (
        CDAG_LEMMA1,
        "Lemma 1 hypothesis fails (all-trivial encoding)",
    ),
    (SCHED_MISSING_OPERAND, "compute with non-resident operand"),
    (SCHED_CAPACITY, "cache occupancy exceeds M"),
    (SCHED_OUTPUT_NOT_STORED, "output never stored"),
    (SCHED_BAD_LOAD, "illegal load"),
    (SCHED_BAD_COMPUTE, "illegal compute"),
    (SCHED_NOT_RESIDENT, "store/drop of non-resident value"),
    (SCHED_NOT_COMPUTED, "vertex never computed"),
    (
        ROUTE_VERTEX_OVERLOAD,
        "vertex hit count exceeds claimed bound",
    ),
    (
        ROUTE_META_OVERLOAD,
        "meta-vertex hit count exceeds claimed bound",
    ),
    (ROUTE_BAD_PATH, "path traverses a non-edge or is empty"),
    (ROUTE_PATH_COUNT, "wrong number of paths in certificate"),
];

#[cfg(test)]
mod tests {
    use super::TABLE;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for (code, desc) in TABLE {
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(
                code.starts_with("MMIO-") && code.len() == 9,
                "malformed {code}"
            );
            assert!(!desc.is_empty());
        }
    }
}
