//! Black-box tests of the `mmio` binary.

use std::process::Command;

fn mmio(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mmio"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn list_shows_builtins() {
    let out = mmio(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in ["strassen", "winograd", "laderman", "classical2"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn verify_builtin() {
    let out = mmio(&["verify", "strassen"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("correct"));
}

#[test]
fn verify_unknown_fails() {
    let out = mmio(&["verify", "nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown algorithm"));
}

#[test]
fn export_import_roundtrip() {
    let exported = mmio(&["export", "winograd"]);
    assert!(exported.status.success());
    let dir = std::env::temp_dir().join("mmio_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("winograd.json");
    std::fs::write(&path, &exported.stdout).unwrap();
    let verified = mmio(&["verify", path.to_str().unwrap()]);
    assert!(verified.status.success());
    assert!(String::from_utf8(verified.stdout)
        .unwrap()
        .contains("correct"));
}

#[test]
fn corrupted_import_rejected() {
    let exported = mmio(&["export", "strassen"]);
    let json = String::from_utf8(exported.stdout).unwrap();
    // Flip a coefficient: "−1" → "−2" somewhere.
    let corrupted = json.replacen("\"-1\"", "\"-2\"", 1);
    assert_ne!(json, corrupted, "fixture must contain a -1 coefficient");
    let dir = std::env::temp_dir().join("mmio_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, corrupted).unwrap();
    let out = mmio(&["verify", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("not a matrix multiplication algorithm"));
}

#[test]
fn simulate_reports_io() {
    let out = mmio(&["simulate", "strassen", "3", "16"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("I/Os"));
    assert!(stdout.contains("ratio"));
}

#[test]
fn certify_reports_bound() {
    let out = mmio(&["certify", "strassen", "4", "8"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("certified I/O ≥"));
}

#[test]
fn routing_verifies() {
    let out = mmio(&["routing", "strassen", "2"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("VERIFIED"));
}

#[test]
fn info_emits_json() {
    let out = mmio(&["info", "laderman"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"omega0\""));
    assert!(stdout.contains("\"edge_expansion_applies\""));
}

#[test]
fn no_args_prints_usage() {
    let out = mmio(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage"));
}

#[test]
fn analyze_json_is_thread_count_invariant() {
    // The determinism contract: `--threads N` must never change output.
    // One clean algorithm, one with a different matching structure, and
    // the disconnected-decoding pathology.
    for algo in ["strassen", "winograd", "strassen+dummy"] {
        let serial = mmio(&["--threads", "1", "analyze", algo, "2", "--json"]);
        assert!(serial.status.success(), "{algo}");
        for threads in ["2", "8"] {
            let par = mmio(&["--threads", threads, "analyze", algo, "2", "--json"]);
            assert_eq!(par.status.code(), serial.status.code(), "{algo}");
            assert_eq!(
                par.stdout, serial.stdout,
                "{algo}: analyze --json diverges at {threads} threads"
            );
        }
    }
}

#[test]
fn threads_env_var_matches_flag() {
    let flag = mmio(&["--threads", "3", "routing", "strassen", "1", "3"]);
    assert!(flag.status.success());
    let env = Command::new(env!("CARGO_BIN_EXE_mmio"))
        .env("MMIO_THREADS", "3")
        .args(["routing", "strassen", "1", "3"])
        .output()
        .expect("binary runs");
    assert_eq!(flag.stdout, env.stdout);
    // And the explicit flag wins over the environment.
    let both = Command::new(env!("CARGO_BIN_EXE_mmio"))
        .env("MMIO_THREADS", "2")
        .args(["--threads", "1", "routing", "strassen", "1", "3"])
        .output()
        .expect("binary runs");
    assert_eq!(both.stdout, flag.stdout);
}

#[test]
fn routing_transport_verifies() {
    let out = mmio(&["routing", "winograd", "1", "3"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("49 copies"), "{stdout}");
    assert!(stdout.contains("uniform true"), "{stdout}");
    assert!(!stdout.contains("VIOLATED"), "{stdout}");
}

#[test]
fn check_passes_clean() {
    let out = mmio(&["check"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("check: PASS"), "{stdout}");
    assert!(!stdout.contains("DIVERGES"), "{stdout}");
    assert!(!stdout.contains("MISSED"), "{stdout}");
}

#[test]
fn check_json_is_thread_count_invariant() {
    // The suite fixes its own thread counts; `--threads` must be inert.
    let serial = mmio(&["--threads", "1", "check", "--json"]);
    assert!(serial.status.success());
    for threads in ["2", "8"] {
        let par = mmio(&["--threads", threads, "check", "--json"]);
        assert!(par.status.success());
        assert_eq!(
            par.stdout, serial.stdout,
            "check --json diverges at {threads} threads"
        );
    }
    // And across repeat runs of the same configuration.
    let again = mmio(&["--threads", "1", "check", "--json"]);
    assert_eq!(again.stdout, serial.stdout);
}

#[test]
fn check_json_reports_exact_planted_codes() {
    let out = mmio(&["check", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"ok\": true"), "{stdout}");
    // The three seeded defect traces fire their exact codes (plus the
    // explorer's own planted-bug self-tests).
    for code in ["MMIO-C001", "MMIO-C002", "MMIO-C003", "MMIO-D005"] {
        assert!(stdout.contains(code), "missing selftest code {code}");
    }
    assert!(!stdout.contains("\"fired\": false"), "{stdout}");
}

#[test]
fn unparsable_threads_env_warns_and_falls_back() {
    for bad in ["0", "abc"] {
        let out = Command::new(env!("CARGO_BIN_EXE_mmio"))
            .env("MMIO_THREADS", bad)
            .args(["verify", "strassen"])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "MMIO_THREADS={bad} must not be fatal");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("warning: MMIO_THREADS") && stderr.contains(bad),
            "MMIO_THREADS={bad}: {stderr}"
        );
    }
}

#[test]
fn bad_threads_value_fails() {
    let out = mmio(&["--threads", "zero", "list"]);
    assert!(!out.status.success());
    let out = mmio(&["--threads"]);
    assert!(!out.status.success());
}

#[test]
fn certify_golden_across_views_and_threads() {
    // The view-equivalence contract: `--view explicit` and `--view
    // implicit` (and `auto`, which resolves to one of them) produce
    // byte-identical certify output at every thread count. The expected
    // bytes are pinned so a drift in either path fails loudly.
    let golden = "n = 8, M = 4: 36 complete segments, certified I/O ≥ 1422\n\
                  (k = 1, feasible = false, disjoint subcomputations = 49 ≥ target 1)\n";
    for view in ["explicit", "implicit", "auto"] {
        for threads in ["1", "2", "8"] {
            let out = mmio(&[
                "--threads",
                threads,
                "--view",
                view,
                "certify",
                "strassen",
                "3",
                "4",
            ]);
            assert!(out.status.success(), "view={view} threads={threads}");
            assert_eq!(
                String::from_utf8(out.stdout).unwrap(),
                golden,
                "certify bytes diverge at view={view} threads={threads}"
            );
        }
    }
}

#[test]
fn simulate_identical_across_views() {
    let explicit = mmio(&["--view", "explicit", "simulate", "strassen", "3", "64"]);
    let implicit = mmio(&["--view", "implicit", "simulate", "strassen", "3", "64"]);
    assert!(explicit.status.success() && implicit.status.success());
    assert_eq!(explicit.stdout, implicit.stdout);
}

#[test]
fn routing_transport_identical_across_views() {
    let explicit = mmio(&["--view", "explicit", "routing", "winograd", "1", "3"]);
    let implicit = mmio(&["--view", "implicit", "routing", "winograd", "1", "3"]);
    assert!(explicit.status.success() && implicit.status.success());
    assert_eq!(explicit.stdout, implicit.stdout);
    assert!(String::from_utf8(implicit.stdout)
        .unwrap()
        .contains("VERIFIED"));
}

#[test]
fn bad_view_value_fails() {
    let out = mmio(&["--view", "lazy", "list"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("invalid --view"));
    let out = mmio(&["--view"]);
    assert!(!out.status.success());
}

#[test]
fn degenerate_r0_legal_under_every_view() {
    // r = 0 (n = 1) has no closed-form view; the CLI must fall back to
    // the explicit graph rather than panic, whatever `--view` says.
    let golden = mmio(&["simulate", "strassen", "0", "4"]);
    assert!(golden.status.success());
    for view in ["explicit", "implicit", "auto"] {
        let out = mmio(&["--view", view, "simulate", "strassen", "0", "4"]);
        assert!(out.status.success(), "view={view} at r=0");
        assert_eq!(out.stdout, golden.stdout, "view={view} at r=0");
    }
}
