//! `mmio` — the command-line front door to the workspace.
//!
//! ```text
//! mmio list                         all built-in algorithms
//! mmio info <algo>                  parameters + structural classification
//! mmio verify <algo|file.json>      exact tensor check
//! mmio export <algo>                base graph as JSON (stdout)
//! mmio simulate <algo> <r> <M>      I/O of the recursive schedule
//! mmio certify <algo> <r> <M>       machine-checked lower-bound certificate
//! mmio routing <algo> <k>           construct + verify the 6a^k-routing
//! mmio report <algo> <r> <M>        full JSON analysis report
//! ```
//!
//! `<algo>` is a built-in name (`mmio list`) or a path to a JSON base-graph
//! file (see `mmio export`).

use mmio_algos::registry::all_base_graphs;
use mmio_cdag::build::build_cdag;
use mmio_cdag::connectivity::classify;
use mmio_cdag::serialize;
use mmio_cdag::BaseGraph;
use mmio_core::theorem1::{certify_with, CertifyParams, LowerBound};
use mmio_core::theorem2::InOutRouting;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Belady;
use mmio_pebble::AutoScheduler;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: mmio <command> [args]\n\
         commands:\n  \
         list\n  \
         info     <algo>\n  \
         verify   <algo|file.json>\n  \
         export   <algo>\n  \
         simulate <algo> <r> <M>\n  \
         certify  <algo> <r> <M>\n  \
         routing  <algo> <k>\n  \
         report   <algo> <r> <M>"
    );
    ExitCode::FAILURE
}

fn resolve(name: &str) -> Result<BaseGraph, String> {
    if let Some(base) = all_base_graphs().into_iter().find(|g| g.name() == name) {
        return Ok(base);
    }
    if name.ends_with(".json") {
        let json = std::fs::read_to_string(name).map_err(|e| format!("{name}: {e}"))?;
        return serialize::from_json(&json).map_err(|e| e.to_string());
    }
    Err(format!(
        "unknown algorithm '{name}' (try `mmio list` or pass a .json file)"
    ))
}

fn parse<T: std::str::FromStr>(arg: Option<&String>, what: &str) -> Result<T, String> {
    arg.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("invalid {what}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err("no command".into());
    };
    match cmd.as_str() {
        "list" => {
            println!(
                "{:<22} {:>3} {:>3} {:>4} {:>8} {:>6}",
                "name", "n0", "a", "b", "ω₀", "fast"
            );
            for g in all_base_graphs() {
                println!(
                    "{:<22} {:>3} {:>3} {:>4} {:>8.4} {:>6}",
                    g.name(),
                    g.n0(),
                    g.a(),
                    g.b(),
                    g.omega0(),
                    g.is_fast()
                );
            }
        }
        "info" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let props = classify(&base);
            println!(
                "{}",
                serde_json::to_string_pretty(&props).expect("serializable")
            );
        }
        "verify" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            match base.verify_correctness() {
                Ok(()) => println!(
                    "{}: correct ⟨{},{},{};{}⟩ algorithm (ω₀ = {:.4})",
                    base.name(),
                    base.n0(),
                    base.n0(),
                    base.n0(),
                    base.b(),
                    base.omega0()
                ),
                Err(errs) => {
                    return Err(format!(
                        "{}: {} tensor violations (first: {})",
                        base.name(),
                        errs.len(),
                        errs[0]
                    ))
                }
            }
        }
        "export" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            println!("{}", serialize::to_json(&base));
        }
        "simulate" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let r: u32 = parse(args.get(2), "r")?;
            let m: usize = parse(args.get(3), "M")?;
            let g = build_cdag(&base, r);
            let order = recursive_order(&g);
            let stats = AutoScheduler::new(&g, m).run(&order, &mut Belady);
            let bound = LowerBound::new(&base).sequential_io(g.n(), m as u64);
            println!(
                "n = {}, M = {m}: {} loads + {} stores = {} I/Os (Ω bound {:.0}, ratio {:.2})",
                g.n(),
                stats.loads,
                stats.stores,
                stats.io(),
                bound,
                stats.io() as f64 / bound
            );
        }
        "certify" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let r: u32 = parse(args.get(2), "r")?;
            let m: u64 = parse(args.get(3), "M")?;
            let g = build_cdag(&base, r);
            let order = recursive_order(&g);
            let cert = certify_with(&g, m, &order, CertifyParams::SMALL);
            println!(
                "n = {}, M = {m}: {} complete segments, certified I/O ≥ {}",
                cert.n, cert.analysis.complete_segments, cert.analysis.certified_io
            );
            println!(
                "(k = {}, feasible = {}, disjoint subcomputations = {} ≥ target {})",
                cert.k, cert.k_feasible, cert.disjoint_subcomputations, cert.lemma1_target
            );
        }
        "routing" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let k: u32 = parse(args.get(2), "k")?;
            let g = build_cdag(&base, k);
            let routing = InOutRouting::new(&g)
                .ok_or("no n₀-capacity Hall matching (paper hypotheses fail)")?;
            let stats = routing.verify();
            println!(
                "6a^k = {}: {} paths, max vertex hits {}, max meta hits {} → {}",
                routing.theorem2_bound(),
                stats.paths,
                stats.max_vertex_hits,
                stats.max_meta_hits,
                if stats.is_m_routing(routing.theorem2_bound()) {
                    "VERIFIED"
                } else {
                    "VIOLATED"
                }
            );
        }
        "report" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let r: u32 = parse(args.get(2), "r")?;
            let m: u64 = parse(args.get(3), "M")?;
            let routing_k = if base.a() >= 16 { 1 } else { 2 };
            let report = mmio_core::report::analyze(&base, r, m, routing_k);
            println!(
                "{}",
                serde_json::to_string_pretty(&report).expect("serializable")
            );
        }
        _ => return Err(format!("unknown command '{cmd}'")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
