//! `mmio` — the command-line front door to the workspace.
//!
//! ```text
//! mmio list                         all built-in algorithms
//! mmio info <algo>                  parameters + structural classification
//! mmio verify <algo|file.json>      exact tensor check
//! mmio export <algo>                base graph as JSON (stdout)
//! mmio simulate <algo> <r> <M>      I/O of the recursive schedule
//! mmio certify <algo> <r> <M>       machine-checked lower-bound certificate
//! mmio routing <algo> <k> [r]       construct + verify the 6a^k-routing
//!                                   (with r: transport into all copies in G_r)
//! mmio report <algo> <r> <M>        full JSON analysis report
//! mmio analyze <algo|all> [r] [--json]   static analysis & certification
//! mmio check [--json]               concurrency soundness suite
//! mmio cert emit <algo|all> [r] [--out DIR] [--json]
//!                                   emit proof-carrying certificates
//! mmio cert verify <files|DIR...> [--json]
//!                                   verify certificates (standalone verifier)
//! mmio audit [--json] [--baseline FILE]
//!                                   whole-workspace static soundness audit
//! mmio distsim <algo> <k> [--procs P] [--mem M] [--assign S] [--topo T] [--json]
//!                                   P-processor distributed simulation
//!                                   (optionally α-β-γ contended on T)
//! mmio codes                        merged diagnostic-code registry
//! ```
//!
//! `<algo>` is a built-in name (`mmio list`) or a path to a JSON base-graph
//! file (see `mmio export`).
//!
//! The global flag `--threads N` (or the `MMIO_THREADS` environment
//! variable; default: all available cores) sets the worker count for the
//! parallel verification paths. Output is byte-identical at any thread
//! count.
//!
//! The global flag `--view explicit|implicit|auto` (default: `auto`) picks
//! the `G_r` representation for `simulate`, `certify`, `routing`, and
//! `cert emit`: `explicit` materializes the graph, `implicit` runs on the
//! closed-form [`mmio_cdag::IndexView`] (memory independent of `b^r`), and
//! `auto` switches to the implicit view once the vertex count exceeds a
//! fixed budget. Output is byte-identical across views wherever both run.

#![forbid(unsafe_code)]

use mmio_algos::registry::all_base_graphs;
use mmio_cdag::build::build_cdag;
use mmio_cdag::connectivity::classify;
use mmio_cdag::serialize;
use mmio_cdag::{BaseGraph, IndexView};
use mmio_core::theorem1::LowerBound;
use mmio_core::theorem2::InOutRouting;
use mmio_core::transport::{verify_transported, verify_transported_view, RoutingClass};
use mmio_parallel::Pool;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Belady;
use mmio_pebble::{AutoScheduler, ViewGraph};
use mmio_serve::ops::{self, use_implicit, ViewMode};
use std::process::ExitCode;

fn print_usage() {
    eprintln!(
        "usage: mmio [--threads N] [--view explicit|implicit|auto] <command> [args]\n\
         commands:\n  \
         list\n  \
         info     <algo>\n  \
         verify   <algo|file.json>\n  \
         export   <algo>\n  \
         simulate <algo> <r> <M>\n  \
         certify  <algo> <r> <M>\n  \
         routing  <algo> <k> [r]\n  \
         report   <algo> <r> <M>\n  \
         analyze  <algo|all> [r] [--json]\n  \
         check    [--json]\n  \
         cert     emit <algo|all> [r] [--out DIR] [--json]\n  \
         cert     verify <files|DIR...> [--json]\n  \
         serve    --socket PATH [--cache DIR] [--workers N] \
         [--queue-cap N] [--deadline-ms N]\n  \
         audit    [--json] [--baseline FILE]\n  \
         distsim  <algo> <k> [--procs P] [--mem M] \
         [--assign cyclic|block|subtree|one] [--topo full|ring|torus] [--json]\n  \
         codes"
    );
}

/// A typed CLI failure carrying its stable process exit code. The codes
/// are part of the interface — scripts and CI match on them:
///
/// | exit | meaning                                                |
/// |------|--------------------------------------------------------|
/// | 1    | verification/analysis rejected the input (work ran)    |
/// | 2    | usage error: bad flags, missing or invalid arguments   |
/// | 3    | I/O error: unreadable input, unwritable output         |
/// | 4    | malformed input: unknown algorithm, bad JSON           |
#[derive(Debug, PartialEq, Eq)]
enum CliError {
    /// The command line itself is wrong (exit 2; usage is printed).
    Usage(String),
    /// A file or directory could not be read, written, or created (exit 3).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        detail: String,
    },
    /// The input was read but is not valid (exit 4).
    BadInput(String),
    /// The tool ran and rejected its input on the merits (exit 1).
    Verification(String),
}

impl CliError {
    /// The stable process exit code for this failure class.
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Verification(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::BadInput(_) => 4,
        }
    }

    /// An I/O failure at `path`.
    fn io(path: impl std::fmt::Display, detail: impl std::fmt::Display) -> CliError {
        CliError::Io {
            path: path.to_string(),
            detail: detail.to_string(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::BadInput(m) | CliError::Verification(m) => {
                f.write_str(m)
            }
            CliError::Io { path, detail } => write!(f, "{path}: {detail}"),
        }
    }
}

// Bare string errors throughout `run` are argument problems (missing or
// invalid values) — usage errors by default; the I/O and input paths
// construct their variants explicitly.
impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Usage(m.to_string())
    }
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Usage(m)
    }
}

/// Strips a `--threads N` flag (anywhere in the argument list) and returns
/// the explicit worker count, if any. `Pool::from_env` falls back to the
/// `MMIO_THREADS` environment variable, then to `available_parallelism`.
fn extract_threads(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(None);
    };
    let n: usize = args
        .get(i + 1)
        .ok_or("missing value for --threads")?
        .parse()
        .map_err(|_| "invalid --threads value")?;
    args.drain(i..=i + 1);
    Ok(Some(n))
}

/// Strips a `--view MODE` flag (anywhere in the argument list); defaults
/// to [`ViewMode::Auto`].
fn extract_view(args: &mut Vec<String>) -> Result<ViewMode, String> {
    let Some(i) = args.iter().position(|a| a == "--view") else {
        return Ok(ViewMode::Auto);
    };
    let mode = match args.get(i + 1).map(String::as_str) {
        Some("explicit") => ViewMode::Explicit,
        Some("implicit") => ViewMode::Implicit,
        Some("auto") => ViewMode::Auto,
        Some(other) => return Err(format!("invalid --view '{other}'")),
        None => return Err("missing value for --view".into()),
    };
    args.drain(i..=i + 1);
    Ok(mode)
}

fn resolve(name: &str) -> Result<BaseGraph, CliError> {
    if let Some(base) = ops::resolve_registry(name) {
        return Ok(base);
    }
    if name.ends_with(".json") {
        let json = std::fs::read_to_string(name).map_err(|e| CliError::io(name, e))?;
        return serialize::from_json(&json).map_err(|e| CliError::BadInput(format!("{name}: {e}")));
    }
    Err(CliError::BadInput(format!(
        "unknown algorithm '{name}' (try `mmio list` or pass a .json file)"
    )))
}

fn parse<T: std::str::FromStr>(arg: Option<&String>, what: &str) -> Result<T, CliError> {
    arg.ok_or_else(|| CliError::Usage(format!("missing {what}")))?
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid {what}")))
}

/// Emits the certificate suite for one algorithm at depth `r`: a routing
/// certificate (Theorem 2 paths + Fact-1 transport), a schedule-legality
/// witness, and an LRU sweep witness. Depths are capped exactly like
/// `mmio analyze` so path enumeration and graph size stay tractable.
/// Bases without a Hall matching simply skip the routing certificate.
///
/// The routing certificate only ever builds `G_k` (the transport into `G_r`
/// is symbolic), so it is cheap at any `r`. The schedule and sweep witnesses
/// replay explicit schedules, so under the implicit view their depth is
/// additionally capped at 4 — the routing certificate is the scaling story.
fn emit_certs_for(
    base: &BaseGraph,
    r: u32,
    pool: &Pool,
    implicit: bool,
) -> Vec<(String, mmio_cert::Certificate)> {
    use mmio_pebble::cert::{emit_schedule_certificate, emit_sweep_certificate};
    use mmio_pebble::sweep::{sweep, PolicySpec};

    let name = base.name();
    let mut out = Vec::new();

    let routing_k = r.min(if base.a() >= 16 { 1 } else { 2 }).max(1);
    if let Some(class) = RoutingClass::build(base, routing_k, pool) {
        out.push((
            format!("{name}__routing_k{routing_k}_r{r}.json"),
            mmio_core::transport::emit_certificate(&class, r),
        ));
    }

    let mut sched_r = if base.b() > 30 { r.min(2) } else { r };
    if implicit {
        sched_r = sched_r.min(4);
    }
    let g = build_cdag(base, sched_r);
    let need = g.vertices().map(|v| g.preds(v).len()).max().unwrap_or(1) + 1;
    let m = need + 4;
    let order = recursive_order(&g);
    let (_, sched) = AutoScheduler::new(&g, m).run_recorded(&order, &mut Belady);
    out.push((
        format!("{name}__schedule_r{sched_r}_m{m}.json"),
        emit_schedule_certificate(&g, m, &sched),
    ));

    let ms = [2, need, 4 * need];
    let points = sweep(&g, &[&order], &[PolicySpec::Lru], &ms, pool);
    out.push((
        format!("{name}__sweep_r{sched_r}.json"),
        emit_sweep_certificate(&g, &PolicySpec::Lru, &points),
    ));
    out
}

/// Builds the named assignment strategy and runs the distributed
/// simulation on `g` — generic over the view so `mmio distsim` scales to
/// implicit instances whose `G_r` never fits in memory. Returns the
/// outcome together with the resolved cache size.
fn run_distsim<V: mmio_cdag::CdagView + Sync>(
    g: &V,
    p: u32,
    mem: Option<usize>,
    assign: &str,
    machine: Option<mmio_parallel::distsim::MachineModel>,
    pool: &Pool,
) -> Result<(mmio_parallel::distsim::DistOutcome, usize), CliError> {
    use mmio_parallel::assign;
    let a = match assign {
        "cyclic" => assign::cyclic_per_rank(g, p),
        "block" => assign::block_per_rank(g, p),
        "subtree" => assign::by_top_subproblem(g, p),
        "one" => assign::all_on_one(g, p),
        other => {
            return Err(CliError::Usage(format!(
                "invalid --assign '{other}' (cyclic|block|subtree|one)"
            )))
        }
    };
    let need = g.max_indegree() + 1;
    let m = mem.unwrap_or_else(|| need.max(16));
    if m < need {
        return Err(CliError::Usage(format!(
            "--mem {m} cannot hold an operand set (need ≥ {need})"
        )));
    }
    let order = recursive_order(g);
    let outcome = mmio_parallel::distsim::simulate_on(g, &a, &order, m, machine, pool);
    Ok((outcome, m))
}

/// Expands `mmio cert verify` operands: directories become their sorted
/// `*.json` entries, files pass through.
fn expand_cert_paths(operands: &[&String]) -> Result<Vec<std::path::PathBuf>, CliError> {
    let mut files = Vec::new();
    for op in operands {
        let path = std::path::Path::new(op.as_str());
        if path.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(path)
                .map_err(|e| CliError::io(op, e))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path.to_path_buf());
        }
    }
    Ok(files)
}

fn run() -> Result<ExitCode, CliError> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let explicit_threads = extract_threads(&mut args)?;
    let view = extract_view(&mut args)?;
    let pool = Pool::from_env(explicit_threads);
    let Some(cmd) = args.first() else {
        return Err("no command".into());
    };
    match cmd.as_str() {
        "list" => {
            println!(
                "{:<22} {:>3} {:>3} {:>4} {:>8} {:>6}",
                "name", "n0", "a", "b", "ω₀", "fast"
            );
            for g in all_base_graphs() {
                println!(
                    "{:<22} {:>3} {:>3} {:>4} {:>8.4} {:>6}",
                    g.name(),
                    g.n0(),
                    g.a(),
                    g.b(),
                    g.omega0(),
                    g.is_fast()
                );
            }
        }
        "info" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let props = classify(&base);
            println!(
                "{}",
                serde_json::to_string_pretty(&props).expect("serializable")
            );
        }
        "verify" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            match base.verify_correctness() {
                Ok(()) => println!(
                    "{}: correct ⟨{},{},{};{}⟩ algorithm (ω₀ = {:.4})",
                    base.name(),
                    base.n0(),
                    base.n0(),
                    base.n0(),
                    base.b(),
                    base.omega0()
                ),
                Err(errs) => {
                    return Err(CliError::Verification(format!(
                        "{}: {} tensor violations (first: {})",
                        base.name(),
                        errs.len(),
                        errs[0]
                    )))
                }
            }
        }
        "export" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            println!("{}", serialize::to_json(&base));
        }
        "simulate" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let r: u32 = parse(args.get(2), "r")?;
            let m: usize = parse(args.get(3), "M")?;
            // Both paths run the identical engine on identical (preds,
            // order) data, so the stats — and this line — are byte-equal.
            let stats = if use_implicit(view, &base, r) {
                let v = IndexView::from_base(&base, r);
                let order = recursive_order(&v);
                let vg = ViewGraph::from_view(&v);
                AutoScheduler::new(&vg, m).run(&order, &mut Belady)
            } else {
                let g = build_cdag(&base, r);
                let order = recursive_order(&g);
                AutoScheduler::new(&g, m).run(&order, &mut Belady)
            };
            let n = mmio_cdag::index::pow(base.n0(), r);
            let bound = LowerBound::new(&base).sequential_io(n, m as u64);
            println!(
                "n = {n}, M = {m}: {} loads + {} stores = {} I/Os (Ω bound {:.0}, ratio {:.2})",
                stats.loads,
                stats.stores,
                stats.io(),
                bound,
                stats.io() as f64 / bound
            );
        }
        "certify" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let r: u32 = parse(args.get(2), "r")?;
            let m: u64 = parse(args.get(3), "M")?;
            // Rendered by the same function the serve tier uses, so a serve
            // `certify` response is byte-identical to this output.
            print!("{}", ops::certify_text(&base, r, m, view, &pool));
        }
        "routing" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let k: u32 = parse(args.get(2), "k")?;
            let g = build_cdag(&base, k);
            let routing = InOutRouting::new(&g).ok_or_else(|| {
                CliError::Verification(
                    "no n₀-capacity Hall matching (paper hypotheses fail)".to_string(),
                )
            })?;
            let stats = routing.verify_with(&pool);
            println!(
                "6a^k = {}: {} paths, max vertex hits {}, max meta hits {} → {}",
                routing.theorem2_bound(),
                stats.paths,
                stats.max_vertex_hits,
                stats.max_meta_hits,
                if stats.is_m_routing(routing.theorem2_bound()) {
                    "VERIFIED"
                } else {
                    "VIOLATED"
                }
            );
            // Optional third argument r: build the routing *class* once and
            // transport it into every copy of G_k inside G_r (Fact 1),
            // re-verifying each copy against the real G_r edges.
            if let Some(rarg) = args.get(3) {
                let r: u32 = rarg.parse().map_err(|_| "invalid r")?;
                if r < k {
                    return Err(CliError::Usage(format!("r = {r} must be ≥ k = {k}")));
                }
                let class = RoutingClass::build(&base, k, &pool)
                    .expect("Hall matching exists (verified above)");
                let tr = if use_implicit(view, &base, r) {
                    let gr = IndexView::from_base(&base, r);
                    verify_transported_view(&gr, &class, &pool)
                } else {
                    let gr = build_cdag(&base, r);
                    verify_transported(&gr, &class, &pool)
                };
                println!(
                    "transported into G_{r}: {} copies × {} paths, max hits {}/{} \
                     (bound {}), edge violations {}, uniform {} → {}",
                    tr.copies,
                    tr.paths_per_copy,
                    tr.max_vertex_hits,
                    tr.max_meta_hits,
                    tr.bound,
                    tr.edge_violations,
                    tr.uniform,
                    if tr.verified() {
                        "VERIFIED"
                    } else {
                        "VIOLATED"
                    }
                );
            }
        }
        "report" => {
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let r: u32 = parse(args.get(2), "r")?;
            let m: u64 = parse(args.get(3), "M")?;
            let routing_k = if base.a() >= 16 { 1 } else { 2 };
            let report = mmio_core::report::analyze(&base, r, m, routing_k);
            println!(
                "{}",
                serde_json::to_string_pretty(&report).expect("serializable")
            );
        }
        "analyze" => {
            let target = args.get(1).ok_or("missing algorithm (or 'all')")?;
            let json = args.iter().any(|a| a == "--json");
            let explicit_r: Option<u32> = match args.get(2).filter(|a| *a != "--json") {
                Some(a) => Some(a.parse().map_err(|_| "invalid r")?),
                None => None,
            };
            let bases = if target == "all" {
                all_base_graphs()
            } else {
                vec![resolve(target)?]
            };
            // Flatten the (algorithm, r) targets, fan the analyses out over
            // the pool, and consume results in target order — so the output
            // is byte-identical to the serial loop at any thread count.
            let mut work: Vec<(usize, u32)> = Vec::new();
            for (bi, base) in bases.iter().enumerate() {
                let ranks: Vec<u32> = match explicit_r {
                    Some(r) => vec![r],
                    // Default sweep; G_3 of the tensor-square bases is too
                    // large to lint interactively.
                    None => (1..=if base.b() > 30 { 2 } else { 3 }).collect(),
                };
                work.extend(ranks.into_iter().map(|r| (bi, r)));
            }
            let results = pool.map(work.len(), |i| {
                let (bi, r) = work[i];
                ops::analyze_target(&bases[bi], r)
            });
            let mut summaries = Vec::new();
            let mut total_errors = 0usize;
            let mut total_warnings = 0usize;
            for (&(bi, r), (report, summary)) in work.iter().zip(results) {
                total_errors += report.error_count();
                total_warnings += report.warning_count();
                if json {
                    summaries.push(summary);
                } else {
                    println!(
                        "{:<22} r={r}: {} error(s), {} warning(s)",
                        bases[bi].name(),
                        report.error_count(),
                        report.warning_count()
                    );
                    for d in &report.diagnostics {
                        println!("  {d}");
                    }
                }
            }
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&serde::Value::Array(summaries))
                        .expect("serializable")
                );
            } else {
                println!("total: {total_errors} error(s), {total_warnings} warning(s)");
            }
            if total_errors > 0 {
                return Ok(ExitCode::FAILURE);
            }
        }
        "check" => {
            let json = args.iter().any(|a| a == "--json");
            // Deliberately ignores the pool: the suite fixes its own thread
            // counts, so `mmio check` output is byte-identical at any
            // `--threads` value (golden-tested).
            let outcome = mmio_check::run_suite();
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&serde::Serialize::to_value(&outcome))
                        .expect("serializable")
                );
            } else {
                println!("recorded traces:");
                for t in &outcome.traces {
                    println!(
                        "  {:<28} races {}, duplicate claims {}, double fills {}",
                        t.name, t.races, t.duplicate_claims, t.double_fills
                    );
                }
                println!("bounded exploration:");
                for e in &outcome.explorations {
                    println!(
                        "  {:<32} {} states, {} schedules, {} output(s), {} deadlock(s), {} livelock(s) → {}",
                        e.name,
                        e.states,
                        e.schedules,
                        e.outputs,
                        e.deadlocks,
                        e.livelocks,
                        if e.serial_equal { "serial-equal" } else { "DIVERGES" }
                    );
                }
                println!("detector self-tests:");
                for s in &outcome.selftests {
                    println!(
                        "  {:<28} expects {} → {}",
                        s.name,
                        s.expected,
                        if s.fired { "fired" } else { "MISSED" }
                    );
                }
                println!("distributed-run audits: {}", outcome.distsim_audits);
                for d in &outcome.report.diagnostics {
                    println!("  {d}");
                }
                println!(
                    "check: {} ({} error(s), {} warning(s))",
                    if outcome.ok() { "PASS" } else { "FAIL" },
                    outcome.report.error_count(),
                    outcome.report.warning_count()
                );
            }
            if !outcome.ok() {
                return Ok(ExitCode::FAILURE);
            }
        }
        "cert" => {
            let json = args.iter().any(|a| a == "--json");
            let sub = args
                .get(1)
                .map(String::as_str)
                .ok_or("missing cert subcommand (emit|verify)")?;
            match sub {
                "emit" => {
                    let target = args.get(2).ok_or("missing algorithm (or 'all')")?;
                    let r: u32 = match args.get(3).filter(|a| !a.starts_with("--")) {
                        Some(a) => a.parse().map_err(|_| "invalid r")?,
                        None => 2,
                    };
                    let out_dir = match args.iter().position(|a| a == "--out") {
                        Some(i) => std::path::PathBuf::from(
                            args.get(i + 1).ok_or("missing value for --out")?,
                        ),
                        None => std::path::PathBuf::from("certs"),
                    };
                    let bases = if target == "all" {
                        all_base_graphs()
                    } else {
                        vec![resolve(target)?]
                    };
                    std::fs::create_dir_all(&out_dir)
                        .map_err(|e| CliError::io(out_dir.display(), e))?;
                    let mut written = Vec::new();
                    for base in &bases {
                        let implicit = use_implicit(view, base, r);
                        for (file, cert) in emit_certs_for(base, r, &pool, implicit) {
                            let path = out_dir.join(file);
                            std::fs::write(&path, cert.to_json())
                                .map_err(|e| CliError::io(path.display(), e))?;
                            written.push(path);
                        }
                    }
                    if json {
                        let v = serde::Value::Array(
                            written
                                .iter()
                                .map(|p| serde::Value::Str(p.display().to_string()))
                                .collect(),
                        );
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&v).expect("serializable")
                        );
                    } else {
                        for p in &written {
                            println!("wrote {}", p.display());
                        }
                        println!("{} certificate(s) → {}", written.len(), out_dir.display());
                    }
                }
                "verify" => {
                    let operands: Vec<&String> =
                        args[2..].iter().filter(|a| *a != "--json").collect();
                    let files = expand_cert_paths(&operands)?;
                    if files.is_empty() {
                        return Err(CliError::BadInput(
                            "no certificate files to verify".to_string(),
                        ));
                    }
                    let mut rejected = 0usize;
                    let mut entries = Vec::new();
                    for path in &files {
                        let text = std::fs::read_to_string(path)
                            .map_err(|e| CliError::io(path.display(), e))?;
                        let verdict = mmio_cert::verify_json(&text);
                        if !verdict.accepted {
                            rejected += 1;
                        }
                        if json {
                            entries.push(serde::Value::Object(vec![
                                (
                                    "file".to_string(),
                                    serde::Value::Str(path.display().to_string()),
                                ),
                                ("verdict".to_string(), serde::Serialize::to_value(&verdict)),
                            ]));
                        } else if verdict.accepted {
                            println!(
                                "{}: ACCEPTED ({} {})",
                                path.display(),
                                verdict.kind,
                                verdict.algo
                            );
                        } else {
                            println!("{}: REJECTED", path.display());
                            for rej in &verdict.rejections {
                                println!("  {}: {}", rej.code, rej.detail);
                            }
                        }
                    }
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&serde::Value::Array(entries))
                                .expect("serializable")
                        );
                    } else {
                        println!(
                            "cert verify: {}/{} accepted",
                            files.len() - rejected,
                            files.len()
                        );
                    }
                    if rejected > 0 {
                        return Ok(ExitCode::FAILURE);
                    }
                }
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown cert subcommand '{other}'"
                    )))
                }
            }
        }
        "serve" => {
            let flag_value = |name: &str| -> Option<&String> {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
            };
            let parse_flag = |name: &str, default: u64| -> Result<u64, CliError> {
                match flag_value(name) {
                    None => Ok(default),
                    Some(v) => v
                        .parse()
                        .map_err(|_| CliError::Usage(format!("invalid {name} value '{v}'"))),
                }
            };
            let socket = flag_value("--socket")
                .cloned()
                .ok_or("missing --socket PATH")?;
            let workers = parse_flag("--workers", 2)? as usize;
            let cfg = mmio_serve::EngineConfig {
                workers,
                queue_cap: parse_flag("--queue-cap", 64)? as usize,
                max_spawns: workers.saturating_mul(4),
                default_deadline: std::time::Duration::from_millis(parse_flag(
                    "--deadline-ms",
                    30_000,
                )?),
                cache_dir: flag_value("--cache").map(std::path::PathBuf::from),
                pool_threads: pool.threads(),
            };
            let hook: std::sync::Arc<dyn mmio_serve::FaultHook> =
                std::sync::Arc::new(mmio_serve::NoFaults);
            let (engine, recovery) =
                mmio_serve::Engine::start(cfg, hook).map_err(|e| CliError::io("serve cache", e))?;
            eprintln!(
                "mmio serve: {} snapshot(s) valid, {} quarantined, {} orphan(s) swept",
                recovery.valid,
                recovery.quarantined.len(),
                recovery.orphans_swept
            );
            for d in &recovery.quarantined {
                eprintln!("mmio serve: quarantined {d}");
            }
            let server = mmio_serve::Server::bind(&socket, std::sync::Arc::new(engine))
                .map_err(|e| CliError::io(&socket, e))?;
            eprintln!("mmio serve: listening on {socket}");
            server.run().map_err(|e| CliError::io(&socket, e))?;
        }
        "audit" => {
            let json = args.iter().any(|a| a == "--json");
            let baseline = args
                .iter()
                .position(|a| a == "--baseline")
                .map(|i| {
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| CliError::Usage("--baseline needs a FILE".to_string()))
                })
                .transpose()?
                .map(std::path::PathBuf::from);
            let cwd = std::env::current_dir().map_err(|e| CliError::io(".", e))?;
            let root = mmio_audit::find_workspace_root(&cwd)
                .ok_or_else(|| CliError::io(cwd.display(), "no workspace Cargo.toml above"))?;
            let opts = mmio_audit::AuditOptions { baseline };
            let outcome = mmio_audit::audit_workspace(&root, &opts)
                .map_err(|e| CliError::io(root.display(), e))?;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&outcome).expect("serializable")
                );
            } else {
                print!("{}", outcome.to_text());
            }
            if outcome.has_errors() {
                return Ok(ExitCode::FAILURE);
            }
        }
        "distsim" => {
            use mmio_parallel::distsim::{MachineModel, Topology};
            let base = resolve(args.get(1).ok_or("missing algorithm")?)?;
            let k: u32 = parse(args.get(2), "k")?;
            let json = args.iter().any(|a| a == "--json");
            let flag_value = |name: &str| -> Option<&String> {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
            };
            let p: u32 = match flag_value("--procs") {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("invalid --procs value '{v}'"))?,
                None => 4,
            };
            if p == 0 {
                return Err("--procs must be ≥ 1".into());
            }
            let mem: Option<usize> = match flag_value("--mem") {
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| format!("invalid --mem value '{v}'"))?,
                ),
                None => None,
            };
            let assign_name = flag_value("--assign")
                .map(String::as_str)
                .unwrap_or("cyclic");
            let machine = match flag_value("--topo") {
                None => None,
                Some(t) => Some(MachineModel::new(
                    Topology::parse(t, p).map_err(CliError::Usage)?,
                    1,
                    1,
                    1,
                )),
            };
            // Both views run the identical SoA engine on identical
            // (preds, order) data, so the output is byte-equal.
            let (outcome, m) = if use_implicit(view, &base, k) {
                let v = IndexView::from_base(&base, k);
                run_distsim(&v, p, mem, assign_name, machine, &pool)?
            } else {
                let g = build_cdag(&base, k);
                run_distsim(&g, p, mem, assign_name, machine, &pool)?
            };
            if json {
                let v = serde::Value::Object(vec![
                    (
                        "algo".to_string(),
                        serde::Value::Str(base.name().to_string()),
                    ),
                    ("r".to_string(), serde::Value::UInt(k as u64)),
                    ("procs".to_string(), serde::Value::UInt(p as u64)),
                    ("mem".to_string(), serde::Value::UInt(m as u64)),
                    (
                        "assign".to_string(),
                        serde::Value::Str(assign_name.to_string()),
                    ),
                    ("outcome".to_string(), serde::Serialize::to_value(&outcome)),
                ]);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&v).expect("serializable")
                );
            } else {
                println!(
                    "{} r={k} P={p} M={m} assign={assign_name}: {} words moved, \
                     critical path {}, local I/O max {} / total {}",
                    base.name(),
                    outcome.run.total_words,
                    outcome.run.critical_path_words,
                    outcome.run.max_local_io,
                    outcome.run.total_local_io
                );
                if let Some(c) = &outcome.contention {
                    println!(
                        "contended on {:?} (α={} β={} γ={}): makespan {} over {} round(s)",
                        c.machine.topo,
                        c.machine.alpha,
                        c.machine.beta,
                        c.machine.gamma,
                        c.makespan,
                        c.rounds.len()
                    );
                }
            }
        }
        "codes" => {
            for (crate_name, table) in mmio_analyze::codes::all_tables() {
                for (code, desc) in table {
                    println!("{code:<12} {crate_name:<14} {desc}");
                }
            }
        }
        _ => return Err(CliError::Usage(format!("unknown command '{cmd}'"))),
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                print_usage();
            }
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable_per_failure_class() {
        assert_eq!(CliError::Verification("v".into()).exit_code(), 1);
        assert_eq!(CliError::Usage("u".into()).exit_code(), 2);
        assert_eq!(CliError::io("p", "d").exit_code(), 3);
        assert_eq!(CliError::BadInput("b".into()).exit_code(), 4);
    }

    #[test]
    fn bare_string_errors_default_to_usage() {
        assert_eq!(CliError::from("missing r").exit_code(), 2);
        assert_eq!(CliError::from(String::from("invalid M")).exit_code(), 2);
    }

    #[test]
    fn resolve_classifies_each_failure() {
        // Registry hit.
        assert!(resolve("strassen").is_ok());
        // Unknown name: bad input, not I/O.
        assert_eq!(resolve("nonesuch").unwrap_err().exit_code(), 4);
        // Missing .json path: I/O.
        assert_eq!(
            resolve("/nonexistent/algo.json").unwrap_err().exit_code(),
            3
        );
        // Present but malformed .json: bad input.
        let p = std::env::temp_dir().join(format!("mmio_cli_badalgo_{}.json", std::process::id()));
        std::fs::write(&p, "{ not json").unwrap();
        let err = resolve(p.to_str().unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn expand_cert_paths_unreadable_dir_is_io_error() {
        let missing = "/nonexistent-cert-dir".to_string();
        // A path that does not exist is not a dir, so it passes through as
        // a file operand (read fails later, also as an I/O error)…
        let ok = expand_cert_paths(&[&missing]).unwrap();
        assert_eq!(ok.len(), 1);
        // …whereas a dir that exists but cannot be enumerated would be the
        // read_dir error path; simulate with a file posing as a dir.
        let p = std::env::temp_dir().join(format!("mmio_cli_asdir_{}", std::process::id()));
        std::fs::write(&p, "x").unwrap();
        let as_file = p.display().to_string();
        let through = expand_cert_paths(&[&as_file]).unwrap();
        assert_eq!(through, vec![p.clone()]);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn io_errors_render_path_and_detail() {
        let e = CliError::io("certs/out.json", "permission denied");
        assert_eq!(e.to_string(), "certs/out.json: permission denied");
    }
}
