//! Property-based equivalence of the two [`CdagView`] implementations:
//! random probes must see the identical graph through [`ExplicitView`]
//! (backed by a materialized `Cdag`) and [`IndexView`] (closed-form).
//!
//! The probes exercise every trait method the generic engines consume —
//! id/address round-trips, adjacency, input/output/rank classification,
//! copy structure, and the Fact-1 lift — across the whole algorithm
//! registry, so a divergence anywhere in the implicit arithmetic fails
//! here before it can corrupt a certificate.
//!
//! All observations go through a generic `V: CdagView` helper:
//! `IndexView`'s inherent `u32`-based accessors would otherwise shadow the
//! trait methods under test.

use mmio_algos::registry::all_base_graphs;
use mmio_cdag::build::build_cdag;
use mmio_cdag::{BaseGraph, CdagView, ExplicitView, IndexView, VertexId, VertexRef};
use proptest::prelude::*;

/// Registry bases with a depth cap keeping `G_r` small enough to
/// materialize inside a proptest case (wide tensor-square bases stop at 2).
fn cases() -> Vec<(BaseGraph, u32)> {
    all_base_graphs()
        .into_iter()
        .map(|b| {
            let max_r = if b.b() > 30 { 2 } else { 3 };
            (b, max_r)
        })
        .collect()
}

/// Strategy: (base index, r, probe fraction in thousandths of the id
/// space). The vendored proptest shim draws integers only, so fractions
/// are fixed-point.
fn probe() -> impl Strategy<Value = (usize, u32, u64)> {
    let n_bases = cases().len();
    (0..n_bases, 1u32..=3, 0u64..1000)
}

fn pick_vertex(n: usize, frac: u64) -> VertexId {
    VertexId(((n as u64 * frac / 1000) as usize).min(n - 1) as u32)
}

/// Everything the generic engines can observe about one vertex.
#[derive(Debug, PartialEq, Eq)]
struct VertexObs {
    vref: VertexRef,
    roundtrip: Option<VertexId>,
    entry_width: u64,
    preds: Vec<VertexId>,
    succs: Vec<VertexId>,
    is_input: bool,
    is_output: bool,
    rank: Option<u32>,
    copy_parent: Option<VertexId>,
}

fn observe<V: CdagView>(g: &V, v: VertexId) -> VertexObs {
    let vr = g.try_vref(v).expect("probe id in range");
    let (mut preds, mut succs) = (Vec::new(), Vec::new());
    assert!(g.preds_into(v, &mut preds));
    assert!(g.succs_into(v, &mut succs));
    VertexObs {
        vref: vr,
        roundtrip: g.try_id(vr),
        entry_width: g.entry_width(vr.layer, vr.level),
        preds,
        succs,
        is_input: g.is_input(v),
        is_output: g.is_output(v),
        rank: g.rank_of(v),
        copy_parent: g.copy_parent(v),
    }
}

fn shape<V: CdagView>(g: &V) -> (u32, usize, usize, usize) {
    (g.r(), g.a(), g.b(), g.n_vertices())
}

fn lift<V: CdagView, L: CdagView>(g: &V, local: &L, prefix: u64, v: VertexId) -> Option<VertexId> {
    g.lift_from(local, prefix, v)
}

fn n_of<V: CdagView>(g: &V) -> usize {
    g.n_vertices()
}

proptest! {
    #[test]
    fn views_agree_on_probes((bi, r, frac) in probe()) {
        let (base, max_r) = cases().swap_remove(bi);
        let r = r.min(max_r);
        let g = build_cdag(&base, r);
        let ev = ExplicitView(&g);
        let iv = IndexView::from_base(&base, r);

        prop_assert_eq!(shape(&ev), shape(&iv));
        let v = pick_vertex(n_of(&ev), frac);
        let eo = observe(&ev, v);
        prop_assert_eq!(eo.roundtrip, Some(v));
        prop_assert_eq!(eo, observe(&iv, v));
    }

    #[test]
    fn views_agree_on_fact1_lift((bi, r, frac) in probe(), k in 1u32..=2, pfrac in 0u64..1000) {
        let (base, max_r) = cases().swap_remove(bi);
        let r = r.min(max_r);
        let k = k.min(r);
        let g = build_cdag(&base, r);
        let gk = build_cdag(&base, k);
        let ev = ExplicitView(&g);
        let iv = IndexView::from_base(&base, r);
        let lk = IndexView::from_base(&base, k);

        let copies = mmio_cdag::index::pow(base.b(), r - k);
        let prefix = (copies * pfrac / 1000).min(copies - 1);
        let v = pick_vertex(gk.n_vertices(), frac);

        let lifted = lift(&ev, &gk, prefix, v);
        prop_assert!(lifted.is_some(), "every G_k vertex lifts into G_r");
        prop_assert_eq!(lift(&iv, &gk, prefix, v), lifted);
        prop_assert_eq!(lift(&iv, &lk, prefix, v), lifted);
        // Out-of-range prefixes are rejected by both.
        prop_assert_eq!(lift(&ev, &gk, copies, v), None);
        prop_assert_eq!(lift(&iv, &gk, copies, v), None);
    }
}

/// Exhaustive (non-random) sweep at small depth: every vertex of every
/// registry base agrees between views, including the copy-root table and
/// maximum in-degree the meta-vertex and scheduler machinery consume.
#[test]
fn full_sweep_small_depth() {
    for base in all_base_graphs() {
        let r = if base.b() > 30 { 1 } else { 2 };
        let g = build_cdag(&base, r);
        let ev = ExplicitView(&g);
        let iv = IndexView::from_base(&base, r);
        assert_eq!(shape(&ev), shape(&iv), "{}", base.name());
        for i in 0..n_of(&ev) as u32 {
            let v = VertexId(i);
            assert_eq!(
                observe(&ev, v),
                observe(&iv, v),
                "{} vertex {i}",
                base.name()
            );
        }
        fn roots<V: CdagView>(g: &V) -> Vec<u32> {
            g.copy_roots_table()
        }
        fn indeg<V: CdagView>(g: &V) -> usize {
            g.max_indegree()
        }
        assert_eq!(roots(&ev), roots(&iv), "{} copy roots", base.name());
        assert_eq!(indeg(&ev), indeg(&iv), "{} max indegree", base.name());
    }
}
