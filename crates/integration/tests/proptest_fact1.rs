//! Property tests for the Fact-1 isomorphism — the foundation the memoized
//! routing-transport engine stands on: a routing constructed once on a
//! standalone `G_k` is only valid inside every copy of `G_k` in `G_r` if
//! `local_to_global`/`global_to_local` are mutually inverse, land on the
//! middle `2(k+1)` levels, keep copies disjoint, and preserve edges.

use mmio_algos::laderman::laderman;
use mmio_algos::strassen::{strassen, winograd};
use mmio_cdag::build::build_cdag;
use mmio_cdag::fact1::Subcomputation;
use mmio_cdag::Layer;
use proptest::prelude::*;

proptest! {
    #[test]
    fn fact1_iso_roundtrips(
        algo in 0usize..3,
        r_raw in 1u32..4,
        k_raw in 0u32..4,
        prefix_raw in 0u64..1_000_000,
        vseed in 0usize..1_000_000,
    ) {
        let base = match algo {
            0 => strassen(),
            1 => winograd(),
            _ => laderman(), // n₀=3: exercises non-power-of-two digits
        };
        // laderman's G_3 is large; cap its depth to keep the sweep quick.
        let r = if algo == 2 { r_raw.min(2) } else { r_raw };
        let k = k_raw % (r + 1);
        let g = build_cdag(&base, r);
        let gk = build_cdag(&base, k);
        let count = Subcomputation::count(&g, k);
        let prefix = prefix_raw % count;
        let sub = Subcomputation::new(&g, k, prefix);

        // Round-trip every local vertex: encoding layers of both sides
        // (including the meta-vertex copy-chain levels above rank r-k) and
        // the decoding layer.
        for lv in gk.vertices() {
            let lref = gk.vref(lv);
            let global = sub.local_to_global(lref);
            prop_assert_eq!(sub.global_to_local(global).map(|vr| gk.id(vr)), Some(lv));
            // The image sits on the middle 2(k+1) levels of G_r.
            let vr = g.vref(global);
            prop_assert_eq!(vr.layer, lref.layer);
            match vr.layer {
                Layer::EncA | Layer::EncB => {
                    prop_assert_eq!(vr.level, r - k + lref.level);
                }
                Layer::Dec => prop_assert_eq!(vr.level, lref.level),
            }
            // Edges are preserved: every local predecessor maps to a global
            // predecessor of the image (transported paths walk real edges).
            for &lp in gk.preds(lv) {
                let gp = sub.local_to_global(gk.vref(lp));
                prop_assert!(
                    g.preds(global).contains(&gp),
                    "local edge lost in transport at case (algo={algo}, r={r}, k={k})"
                );
            }
        }

        // Copies are disjoint: a different prefix rejects this copy's
        // vertices.
        if count > 1 {
            let other = Subcomputation::new(&g, k, (prefix + 1) % count);
            let lv = mmio_cdag::VertexId((vseed % gk.n_vertices()) as u32);
            let global = sub.local_to_global(gk.vref(lv));
            prop_assert!(other.global_to_local(global).is_none());
        }

        // Inverse direction on a sampled global vertex of the copy.
        let vs = sub.vertices(&gk);
        let v = vs[vseed % vs.len()];
        let back = sub.global_to_local(v).expect("copy member");
        prop_assert_eq!(sub.local_to_global(back), v);
    }
}
