//! Property-based invariants across the workspace (proptest).

use mmio_algos::strassen::strassen;
use mmio_algos::Executor;
use mmio_cdag::build::build_cdag;
use mmio_cdag::index;
use mmio_matrix::classical::{multiply_blocked, multiply_naive};
use mmio_matrix::solve::{rank, solve};
use mmio_matrix::{Matrix, Rational};
use mmio_pebble::orders::{is_valid_compute_order, random_topo_order};
use mmio_pebble::policy::{Belady, Lru};
use mmio_pebble::sim::simulate;
use mmio_pebble::AutoScheduler;
use proptest::prelude::*;

fn rational() -> impl Strategy<Value = Rational> {
    (-20i64..=20, 1i64..=10).prop_map(|(n, d)| Rational::new(n, d))
}

fn small_matrix(n: usize) -> impl Strategy<Value = Matrix<i64>> {
    proptest::collection::vec(-9i64..=9, n * n).prop_map(move |data| Matrix::from_vec(n, n, data))
}

proptest! {
    #[test]
    fn rational_field_laws(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.recip(), Rational::ONE);
        }
    }

    #[test]
    fn pack_unpack_roundtrip(digits in proptest::collection::vec(0usize..7, 0..8)) {
        let packed = index::pack(&digits, 7);
        prop_assert_eq!(index::unpack(packed, 7, digits.len()), digits);
    }

    #[test]
    fn strassen_executor_matches_classical(a in small_matrix(4), b in small_matrix(4)) {
        let exec = Executor::new(strassen(), 1);
        prop_assert!(exec.multiply(&a, &b).exactly_equals(&multiply_naive(&a, &b)));
    }

    #[test]
    fn blocked_matches_naive(a in small_matrix(5), b in small_matrix(5), bs in 1usize..6) {
        prop_assert!(multiply_blocked(&a, &b, bs).exactly_equals(&multiply_naive(&a, &b)));
    }

    #[test]
    fn solve_solutions_satisfy_system(
        entries in proptest::collection::vec(-5i64..=5, 9),
        x0 in proptest::collection::vec(-5i64..=5, 3),
    ) {
        let a = Matrix::from_vec(3, 3, entries.into_iter().map(Rational::integer).collect());
        let rhs: Vec<Rational> = (0..3)
            .map(|i| (0..3).map(|j| a[(i, j)] * Rational::integer(x0[j])).sum())
            .collect();
        // Always consistent by construction; the solver must find *a*
        // solution satisfying the system (not necessarily x0).
        let x = solve(&a, &rhs).expect("consistent system");
        for i in 0..3 {
            let lhs: Rational = (0..3).map(|j| a[(i, j)] * x[j]).sum();
            prop_assert_eq!(lhs, rhs[i]);
        }
        prop_assert!(rank(&a) <= 3);
    }

    #[test]
    fn random_topo_orders_are_valid_and_schedulable(seed in 0u64..1000) {
        use rand::SeedableRng;
        let g = build_cdag(&strassen(), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let order = random_topo_order(&g, &mut rng);
        prop_assert!(is_valid_compute_order(&g, &order));
        let sched = AutoScheduler::new(&g, 8);
        let (stats, schedule) = sched.run_recorded(&order, &mut Lru::new(g.n_vertices()));
        let replay = simulate(&g, &schedule, 8).expect("recorded schedule valid");
        prop_assert_eq!(replay, stats);
    }

    #[test]
    fn belady_never_beaten_by_lru(seed in 0u64..200, m in 6usize..40) {
        use rand::SeedableRng;
        let g = build_cdag(&strassen(), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let order = random_topo_order(&g, &mut rng);
        let b = AutoScheduler::new(&g, m).run(&order, &mut Belady).io();
        let l = AutoScheduler::new(&g, m)
            .run(&order, &mut Lru::new(g.n_vertices()))
            .io();
        prop_assert!(b <= l, "belady {} > lru {}", b, l);
    }

    #[test]
    fn io_monotone_in_cache_size(seed in 0u64..100) {
        use rand::SeedableRng;
        let g = build_cdag(&strassen(), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let order = random_topo_order(&g, &mut rng);
        let mut prev = u64::MAX;
        for m in [6usize, 12, 24, 48, 96] {
            let io = AutoScheduler::new(&g, m).run(&order, &mut Belady).io();
            prop_assert!(io <= prev, "m={} io={} prev={}", m, io, prev);
            prev = io;
        }
    }
}
