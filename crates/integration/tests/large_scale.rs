//! Large-instance smoke tests, `#[ignore]`d by default (minutes of work;
//! run with `cargo test --release -- --ignored`).

use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_core::claim1::DecodingRouting;
use mmio_core::theorem1::{certify_with, CertifyParams, LowerBound};
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Belady;
use mmio_pebble::AutoScheduler;

#[test]
#[ignore = "large: ~1M-vertex CDAG"]
fn r7_cdag_builds_and_schedules() {
    let g = build_cdag(&strassen(), 7);
    assert_eq!(g.n(), 128);
    assert!(g.n_vertices() > 1_000_000);
    let order = recursive_order(&g);
    let io = AutoScheduler::new(&g, 256).run(&order, &mut Belady).io();
    let bound = LowerBound::new(&strassen()).sequential_io(g.n(), 256);
    assert!(io as f64 >= bound);
    assert!(
        (io as f64) < 100.0 * bound,
        "ratio blew up: {io} vs {bound}"
    );
}

#[test]
#[ignore = "large: 17M routing paths"]
fn claim1_k6_verifies() {
    let g = build_cdag(&strassen(), 6);
    let routing = DecodingRouting::new(&g).unwrap();
    let stats = routing.verify();
    assert!(stats.is_m_routing(routing.claim1_bound()));
}

#[test]
#[ignore = "large: full certificate at r=6"]
fn certificate_scales_to_r6() {
    let g = build_cdag(&strassen(), 6);
    let order = recursive_order(&g);
    let m = 32u64;
    let cert = certify_with(&g, m, &order, CertifyParams::SMALL);
    let measured = AutoScheduler::new(&g, m as usize)
        .run(&order, &mut Belady)
        .io();
    assert!(cert.analysis.certified_io > 0);
    assert!(cert.analysis.certified_io <= measured);
    // The certificate should cover a nontrivial fraction at scale.
    assert!(
        cert.analysis.certified_io * 10 >= measured,
        "certificate covers < 10%: {} vs {measured}",
        cert.analysis.certified_io
    );
}
