//! End-to-end pipeline: for every base graph satisfying the paper's
//! hypotheses — symbolic correctness, executable semantics, CDAG
//! semantics, routing theorems, and certified lower bounds all agree.

use mmio_algos::registry::{all_base_graphs, theorem1_base_graphs};
use mmio_algos::Executor;
use mmio_cdag::build::{build_cdag, build_checked};
use mmio_cdag::traversal::eval_outputs;
use mmio_cdag::MetaVertices;
use mmio_core::theorem1::{certify_with, CertifyParams, LowerBound};
use mmio_core::theorem2::InOutRouting;
use mmio_matrix::classical::multiply_naive;
use mmio_matrix::random::random_i64_matrix;
use mmio_matrix::Rational;
use mmio_pebble::orders::{is_valid_compute_order, recursive_order};
use mmio_pebble::policy::{Belady, Lru};
use mmio_pebble::sim::simulate;
use mmio_pebble::AutoScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_base_graph_is_symbolically_correct() {
    for base in all_base_graphs() {
        assert_eq!(base.verify_correctness(), Ok(()), "{}", base.name());
    }
}

#[test]
fn cdag_semantics_match_executor_and_classical() {
    let mut rng = StdRng::seed_from_u64(42);
    for base in all_base_graphs() {
        let r = if base.n0() >= 3 { 1 } else { 2 };
        let g = build_checked(&base, r);
        let n = g.n() as usize;
        let ai = random_i64_matrix(n, n, &mut rng);
        let bi = random_i64_matrix(n, n, &mut rng);
        // Some synthetic variants have rational coefficients: evaluate over
        // Rational to stay exact for every graph uniformly.
        let a = ai.map(Rational::integer);
        let b = bi.map(Rational::integer);
        let want = multiply_naive(&ai, &bi).map(Rational::integer);
        let via_graph = eval_outputs(&g, &a, &b);
        assert!(
            via_graph.exactly_equals(&want),
            "{} graph eval",
            base.name()
        );
        let via_exec = Executor::new(base.clone(), 1).multiply(&a, &b);
        assert!(via_exec.exactly_equals(&want), "{} executor", base.name());
    }
}

#[test]
fn routing_theorem_bound_holds_everywhere_it_must() {
    for base in theorem1_base_graphs() {
        let k = if base.a() >= 16 { 1 } else { 2 };
        let g = build_cdag(&base, k);
        let routing = InOutRouting::new(&g)
            .unwrap_or_else(|| panic!("{}: Hall matching must exist", base.name()));
        let stats = routing.verify();
        assert!(
            stats.is_m_routing(routing.theorem2_bound()),
            "{}: {} / {} > {}",
            base.name(),
            stats.max_vertex_hits,
            stats.max_meta_hits,
            routing.theorem2_bound()
        );
    }
}

#[test]
fn scheduler_schedules_replay_exactly_for_every_graph() {
    for base in theorem1_base_graphs() {
        let r = if base.a() >= 16 { 1 } else { 2 };
        let g = build_cdag(&base, r);
        let order = recursive_order(&g);
        assert!(is_valid_compute_order(&g, &order), "{}", base.name());
        let m = g.vertices().map(|v| g.preds(v).len()).max().unwrap().max(7) + 1;
        let sched = AutoScheduler::new(&g, m);
        let (stats, schedule) = sched.run_recorded(&order, &mut Lru::new(g.n_vertices()));
        let replayed = simulate(&g, &schedule, m).expect("valid schedule");
        assert_eq!(replayed, stats, "{}", base.name());
    }
}

#[test]
fn certified_lower_bound_below_measured_io_for_all_graphs() {
    for base in theorem1_base_graphs() {
        if base.a() >= 16 {
            continue; // keep runtime sane; covered at k=1 elsewhere
        }
        let g = build_cdag(&base, 3);
        let order = recursive_order(&g);
        let m = 8u64.max(g.vertices().map(|v| g.preds(v).len() as u64).max().unwrap() + 1);
        let cert = certify_with(&g, m, &order, CertifyParams::SMALL);
        let measured = AutoScheduler::new(&g, m as usize)
            .run(&order, &mut Belady)
            .io();
        assert!(
            cert.analysis.certified_io <= measured,
            "{}: certified {} > measured {}",
            base.name(),
            cert.analysis.certified_io,
            measured
        );
    }
}

#[test]
fn formula_and_measurement_shapes_agree() {
    // The measured I/O of the recursive schedule grows with n like the
    // formula predicts (factor ≈ b per recursion level at fixed M).
    let base = mmio_algos::strassen::strassen();
    let lb = LowerBound::new(&base);
    let mut measured = Vec::new();
    for r in 3..=5u32 {
        let g = build_cdag(&base, r);
        let order = recursive_order(&g);
        measured.push((
            g.n(),
            AutoScheduler::new(&g, 16).run(&order, &mut Belady).io(),
        ));
    }
    for w in measured.windows(2) {
        let growth = w[1].1 as f64 / w[0].1 as f64;
        let formula_growth = lb.sequential_io(w[1].0, 16) / lb.sequential_io(w[0].0, 16);
        assert!(
            (growth / formula_growth - 1.0).abs() < 0.45,
            "growth {growth:.2} vs formula {formula_growth:.2}"
        );
    }
}

#[test]
fn meta_vertices_consistent_with_base_level_copying() {
    for base in all_base_graphs() {
        let g = build_cdag(&base, 2);
        let meta = MetaVertices::compute(&g);
        assert_eq!(
            meta.has_multiple_copying(&g),
            base.has_multiple_copying(),
            "{}",
            base.name()
        );
    }
}
