//! The full pipeline is invariant under base-graph equivalence
//! transformations: permuted, rescaled, and transpose-dual variants all
//! verify, route, and certify.

use mmio_algos::strassen::strassen;
use mmio_algos::transform::variant_family;
use mmio_cdag::build::build_cdag;
use mmio_cdag::serialize;
use mmio_core::theorem1::{certify_with, CertifyParams};
use mmio_core::theorem2::InOutRouting;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Lru;
use mmio_pebble::AutoScheduler;

#[test]
fn variants_route_and_certify() {
    for variant in variant_family(&strassen()) {
        assert_eq!(variant.verify_correctness(), Ok(()), "{}", variant.name());
        let g = build_cdag(&variant, 2);
        if let Some(routing) = InOutRouting::new(&g) {
            let stats = routing.verify();
            assert!(
                stats.is_m_routing(routing.theorem2_bound()),
                "{}: routing bound violated",
                variant.name()
            );
        }
        let g3 = build_cdag(&variant, 3);
        let order = recursive_order(&g3);
        let cert = certify_with(&g3, 8, &order, CertifyParams::SMALL);
        let measured = AutoScheduler::new(&g3, 8)
            .run(&order, &mut Lru::new(g3.n_vertices()))
            .io();
        assert!(
            cert.analysis.certified_io <= measured,
            "{}: unsound certificate",
            variant.name()
        );
    }
}

#[test]
fn variants_roundtrip_through_json() {
    for variant in variant_family(&strassen()) {
        let json = serialize::to_json(&variant);
        let back =
            serialize::from_json(&json).unwrap_or_else(|e| panic!("{}: {e}", variant.name()));
        assert_eq!(back.b(), variant.b());
        assert_eq!(back.verify_correctness(), Ok(()));
    }
}

#[test]
fn io_invariant_under_product_permutation() {
    // Permuting products relabels the CDAG but preserves its I/O under the
    // matching permuted schedule; with the canonical recursive schedule the
    // counts may differ slightly (different eviction patterns) but must
    // stay within a tight band.
    use mmio_algos::transform::permute_products;
    let base = strassen();
    let g = build_cdag(&base, 4);
    let order = recursive_order(&g);
    let io_base = AutoScheduler::new(&g, 16)
        .run(&order, &mut Lru::new(g.n_vertices()))
        .io();
    let perm: Vec<usize> = (0..7).rev().collect();
    let variant = permute_products(&base, &perm);
    let gv = build_cdag(&variant, 4);
    let order_v = recursive_order(&gv);
    let io_variant = AutoScheduler::new(&gv, 16)
        .run(&order_v, &mut Lru::new(gv.n_vertices()))
        .io();
    let ratio = io_base as f64 / io_variant as f64;
    assert!(
        (0.95..1.05).contains(&ratio),
        "permutation changed I/O by {ratio:.3}"
    );
}
