//! Tightness of Theorem 1: the measured I/O of the recursive schedule
//! *scales* like the lower-bound formula — log-log regression slopes match
//! the predicted exponents.

use mmio_algos::strassen::strassen;
use mmio_cdag::build::build_cdag;
use mmio_pebble::orders::recursive_order;
use mmio_pebble::policy::Belady;
use mmio_pebble::AutoScheduler;

/// Least-squares slope of y against x.
fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[test]
fn io_scales_as_n_to_omega0_at_fixed_m() {
    let base = strassen();
    let m = 16usize;
    let mut points = Vec::new();
    for r in 3..=6u32 {
        let g = build_cdag(&base, r);
        let order = recursive_order(&g);
        let io = AutoScheduler::new(&g, m).run(&order, &mut Belady).io();
        points.push(((g.n() as f64).ln(), (io as f64).ln()));
    }
    let s = slope(&points);
    let omega0 = base.omega0();
    assert!(
        (s - omega0).abs() < 0.35,
        "n-slope {s:.3} should be ≈ ω₀ = {omega0:.3}"
    );
}

#[test]
fn io_scales_as_m_to_one_minus_half_omega0_at_fixed_n() {
    // (n/√M)^ω₀·M = n^ω₀ · M^{1-ω₀/2}: predicted M-exponent ≈ −0.404.
    let base = strassen();
    let g = build_cdag(&base, 6);
    let order = recursive_order(&g);
    let mut points = Vec::new();
    for m in [16usize, 64, 256, 1024] {
        let io = AutoScheduler::new(&g, m).run(&order, &mut Belady).io();
        points.push(((m as f64).ln(), (io as f64).ln()));
    }
    let s = slope(&points);
    let predicted = 1.0 - base.omega0() / 2.0;
    assert!(
        (s - predicted).abs() < 0.25,
        "M-slope {s:.3} should be ≈ {predicted:.3}"
    );
}

#[test]
fn classical_io_scales_as_cube_at_fixed_m() {
    use mmio_algos::classical::classical;
    let base = classical(2);
    let m = 16usize;
    let mut points = Vec::new();
    for r in 3..=5u32 {
        let g = build_cdag(&base, r);
        let order = recursive_order(&g);
        let io = AutoScheduler::new(&g, m).run(&order, &mut Belady).io();
        points.push(((g.n() as f64).ln(), (io as f64).ln()));
    }
    let s = slope(&points);
    assert!(
        (s - 3.0).abs() < 0.35,
        "classical n-slope {s:.3} should be ≈ 3"
    );
}
