//! The Hopcroft–Kerr family end to end: the paper cites [11] as an
//! algorithm the edge-expansion extension [4] can handle; here the full
//! path-routing pipeline runs on our squarized ⟨12,12,12;1331⟩ build of it.

use mmio_algos::rect::{hopcroft_kerr_square, rect_2x2x3};
use mmio_cdag::build::build_cdag;
use mmio_cdag::connectivity::classify;
use mmio_core::claim1::DecodingRouting;
use mmio_core::theorem2::InOutRouting;

#[test]
fn hk_square_classification() {
    let base = hopcroft_kerr_square();
    let props = classify(&base);
    assert!(props.is_fast);
    assert!((props.omega0 - 2.89495).abs() < 1e-3);
    assert!(props.lemma1_condition);
}

#[test]
fn hk_square_routing_theorem_holds() {
    let base = hopcroft_kerr_square();
    let g = build_cdag(&base, 1);
    // 2·144 inputs, 1331 products, 144 outputs.
    assert_eq!(g.inputs().count(), 288);
    assert_eq!(g.products().count(), 1331);
    let Some(routing) = InOutRouting::new(&g) else {
        // The squarized graph may duplicate nontrivial combinations
        // (single-use violation through the direct-sum structure); the
        // Hall matching must still exist for the theorem to apply — if it
        // doesn't, that's a finding worth failing loudly on.
        panic!("no n0-capacity Hall matching for Hopcroft–Kerr square");
    };
    let stats = routing.verify();
    assert_eq!(stats.paths, 2 * 144 * 144);
    assert!(
        stats.is_m_routing(routing.theorem2_bound()),
        "{} / {} vs {}",
        stats.max_vertex_hits,
        stats.max_meta_hits,
        routing.theorem2_bound()
    );
}

#[test]
fn hk_square_claim1_when_connected() {
    let base = hopcroft_kerr_square();
    let g = build_cdag(&base, 1);
    if let Some(routing) = DecodingRouting::new(&g) {
        let stats = routing.verify();
        assert!(stats.is_m_routing(routing.claim1_bound()));
    }
    // Disconnected decoding is also a legitimate outcome for the direct-sum
    // construction; either way the Theorem 2 test above is the load-bearing
    // one.
}

#[test]
fn hk_rect_pieces_verified_exactly() {
    let hk = rect_2x2x3();
    assert_eq!(hk.verify_correctness(), Ok(()));
    let r = hk.rotate();
    assert_eq!(r.verify_correctness(), Ok(()));
    let r2 = r.rotate();
    assert_eq!(r2.verify_correctness(), Ok(()));
}
