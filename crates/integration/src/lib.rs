//! # mmio-integration
//!
//! Cross-crate integration tests for the `mmio` workspace live in this
//! crate's `tests/` directory (the crate itself is empty): end-to-end
//! pipelines from base-graph definition through CDAG semantics, routing
//! verification, scheduling, and lower-bound certification, plus
//! property-based invariants.

#![forbid(unsafe_code)]
