//! The audit driver: discovers the workspace, builds the model and call
//! graph, runs all three pass families, discharges findings against
//! `// audit: safe —` justifications, applies an optional baseline, and
//! renders the outcome (human text or JSON).

use crate::baseline::Baseline;
use crate::config;
use crate::finding::{key_of, Finding};
use crate::graph::{self, CallGraph};
use crate::parse::Model;
use crate::registry::DocFile;
use crate::{hygiene, panics, registry};
use mmio_analyze::{codes, Report, Severity};
use serde::{Serialize, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Options for one audit run.
#[derive(Debug, Default)]
pub struct AuditOptions {
    /// Baseline file to diff against (suppresses known findings).
    pub baseline: Option<PathBuf>,
}

/// Model/graph size statistics (snapshot-tested against the real
/// workspace so silent model regressions are caught).
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    pub files: usize,
    pub fns: usize,
    pub edges: usize,
    pub sites: usize,
}

/// The result of an audit run.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Findings that gate CI (not suppressed by the baseline).
    pub findings: Vec<Finding>,
    /// Findings silenced by a baseline key.
    pub suppressed: Vec<Finding>,
    /// Baseline keys that no longer match — fixed, prune them.
    pub fixed_baseline: Vec<String>,
    pub stats: Stats,
}

impl AuditOutcome {
    /// Whether the run should fail (any non-suppressed error).
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// The findings as a [`mmio_analyze::Report`] — the shared
    /// diagnostics currency.
    pub fn report(&self) -> Report {
        let mut r = Report::new();
        for f in &self.findings {
            let d = f.to_diagnostic();
            r.diagnostics.push(d);
        }
        r
    }

    /// Renders human-readable text, one line per finding plus witness
    /// chains, ending with a summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{} [{}] {}:{}: {}\n",
                f.severity, f.code, f.file, f.line, f.message
            ));
            for (depth, link) in f.chain.iter().enumerate() {
                out.push_str(&format!("    {}{}\n", "  ".repeat(depth), link));
            }
        }
        let errors = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        let warnings = self.findings.len() - errors;
        out.push_str(&format!(
            "audit: {} error(s), {} warning(s), {} suppressed, {} fixed baseline key(s); \
             {} files, {} fns, {} edges, {} sites\n",
            errors,
            warnings,
            self.suppressed.len(),
            self.fixed_baseline.len(),
            self.stats.files,
            self.stats.fns,
            self.stats.edges,
            self.stats.sites
        ));
        out
    }
}

impl Serialize for AuditOutcome {
    fn to_value(&self) -> Value {
        let errors = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        Value::Object(vec![
            (
                "summary".to_string(),
                Value::Object(vec![
                    ("errors".to_string(), Value::UInt(errors as u64)),
                    (
                        "warnings".to_string(),
                        Value::UInt((self.findings.len() - errors) as u64),
                    ),
                    (
                        "suppressed".to_string(),
                        Value::UInt(self.suppressed.len() as u64),
                    ),
                    ("files".to_string(), Value::UInt(self.stats.files as u64)),
                    ("fns".to_string(), Value::UInt(self.stats.fns as u64)),
                    ("edges".to_string(), Value::UInt(self.stats.edges as u64)),
                    ("sites".to_string(), Value::UInt(self.stats.sites as u64)),
                ]),
            ),
            ("findings".to_string(), self.findings.to_value()),
            ("suppressed".to_string(), self.suppressed.to_value()),
            (
                "fixed_baseline".to_string(),
                Value::Array(
                    self.fixed_baseline
                        .iter()
                        .map(|k| Value::Str(k.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Audits the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`).
pub fn audit_workspace(root: &Path, opts: &AuditOptions) -> io::Result<AuditOutcome> {
    let (model, docs) = load_workspace(root)?;
    let graph = graph::build(&model);
    let mut outcome = audit_model(&model, &graph, &docs, config::TRUST_ROOTS);
    if let Some(path) = &opts.baseline {
        let text = fs::read_to_string(path)?;
        let baseline =
            Baseline::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let applied = baseline.apply(std::mem::take(&mut outcome.findings));
        outcome.findings = applied.new;
        outcome.suppressed = applied.suppressed;
        outcome.fixed_baseline = applied.fixed;
    }
    Ok(outcome)
}

/// Runs all passes over an already-built model (fixture tests enter
/// here with their own trust roots).
pub fn audit_model(
    model: &Model,
    graph: &CallGraph,
    docs: &[DocFile],
    roots: &[config::TrustRoot],
) -> AuditOutcome {
    let mut findings = Vec::new();
    findings.extend(panics::run(model, graph, roots));
    findings.extend(registry::run(model, docs));
    findings.extend(hygiene::run(model, graph));
    // Conservative resolution can derive the same fact along several
    // edges (e.g. two trait impls of one method); report each once.
    let mut seen = std::collections::HashSet::new();
    findings.retain(|f| seen.insert((f.code, f.file.clone(), f.line, f.message.clone())));
    let findings = discharge(model, graph, findings);
    AuditOutcome {
        findings,
        suppressed: Vec::new(),
        fixed_baseline: Vec::new(),
        stats: Stats {
            files: model.files.len(),
            fns: model.fns.len(),
            edges: graph.edges.len(),
            sites: graph.sites.len(),
        },
    }
}

/// Central justification discharge.
///
/// A `// audit: safe — reason` comment (same line as the site, or the
/// line directly above) silences any finding at that location — except
/// L005/L006, which *are* the justification lints. Afterwards, every
/// unused justification becomes a finding itself: `MMIO-L006` (stale)
/// if some panic site exists at its location but was not flagged —
/// the justification outlived its reason — or `MMIO-L005` (orphaned)
/// if no site is there at all.
fn discharge(model: &Model, graph: &CallGraph, findings: Vec<Finding>) -> Vec<Finding> {
    let justs: Vec<_> = model
        .justifications
        .iter()
        .filter(|j| !model.files[j.file as usize].is_test_file)
        .collect();
    let mut used = vec![false; justs.len()];
    let mut out = Vec::new();
    for f in findings {
        if f.code == codes::AUDIT_JUSTIFICATION_ORPHANED
            || f.code == codes::AUDIT_JUSTIFICATION_STALE
        {
            out.push(f);
            continue;
        }
        // Same-line justifications bind tighter than line-above ones, so
        // two adjacent annotated sites each consume their own comment.
        let hit = justs
            .iter()
            .position(|j| model.files[j.file as usize].rel_path == f.file && j.line == f.line)
            .or_else(|| {
                justs.iter().position(|j| {
                    model.files[j.file as usize].rel_path == f.file && j.line + 1 == f.line
                })
            });
        match hit {
            Some(i) => used[i] = true,
            None => out.push(f),
        }
    }
    for (i, j) in justs.iter().enumerate() {
        if used[i] {
            continue;
        }
        let file = &model.files[j.file as usize];
        let site_here = graph
            .sites
            .iter()
            .any(|s| s.file == j.file && (s.line == j.line || s.line == j.line + 1));
        let (code, what) = if site_here {
            (
                codes::AUDIT_JUSTIFICATION_STALE,
                "justifies a site no audit pass flags — the justification is stale; remove it",
            )
        } else {
            (
                codes::AUDIT_JUSTIFICATION_ORPHANED,
                "has no panic site on its line or the line below — orphaned; remove it",
            )
        };
        out.push(Finding {
            code,
            severity: Severity::Error,
            file: file.rel_path.clone(),
            line: j.line,
            message: format!("`// audit: safe — {}` {}", j.reason, what),
            chain: Vec::new(),
            key: key_of(code, &file.rel_path, &j.reason, "justification"),
        });
    }
    out
}

/// Loads every auditable crate and doc/corpus file under `root`.
pub fn load_workspace(root: &Path) -> io::Result<(Model, Vec<DocFile>)> {
    let mut model = Model::default();
    let mut docs = Vec::new();
    // Root-level docs.
    for name in ["DESIGN.md", "README.md"] {
        let p = root.join(name);
        if let Ok(text) = fs::read_to_string(&p) {
            docs.push(DocFile {
                rel_path: name.to_string(),
                text,
                is_test_corpus: false,
                is_design: name == "DESIGN.md",
            });
        }
    }
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let manifest = fs::read_to_string(dir.join("Cargo.toml"))?;
        let crate_name = package_name(&manifest).unwrap_or_else(|| {
            dir.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        });
        model.add_crate_deps(&crate_name, declared_deps(&manifest));
        let mut paths = Vec::new();
        collect_files(&dir, &mut paths)?;
        paths.sort();
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            if config::path_excluded(&rel) {
                continue;
            }
            let Ok(text) = fs::read_to_string(&p) else {
                continue; // non-UTF8 corpus blobs are out of scope
            };
            if rel.ends_with(".rs") {
                model.add_file(&crate_name, &rel, &text);
            } else if rel.contains("/tests/") {
                docs.push(DocFile {
                    rel_path: rel,
                    text,
                    is_test_corpus: true,
                    is_design: false,
                });
            }
        }
    }
    Ok((model, docs))
}

/// Extracts the workspace crates listed under `[dependencies]` (not
/// dev-dependencies — test code is outside the graph anyway, and
/// dev-only links must not widen the production call graph).
fn declared_deps(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_deps = t == "[dependencies]";
        } else if in_deps {
            if let Some(key) = t.split('=').next() {
                let key = key.trim();
                if key.starts_with("mmio-") {
                    deps.push(key.to_string());
                }
            }
        }
    }
    deps
}

/// Extracts `name = "…"` from a `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
        } else if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Recursively collects `.rs` sources and test corpus files under the
/// crate's `src/`, `tests/`, and `benches/` directories.
fn collect_files(crate_dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for sub in ["src", "tests", "benches"] {
        let d = crate_dir.join(sub);
        if d.is_dir() {
            walk(&d, out)?;
        }
    }
    Ok(())
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk(&p, out)?;
        } else {
            out.push(p);
        }
    }
    Ok(())
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses() {
        let m = "[package]\nname = \"mmio-cert\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(m), Some("mmio-cert".to_string()));
        assert_eq!(package_name("[workspace]\n"), None);
    }

    #[test]
    fn justification_discharges_and_orphans_fire() {
        let mut m = Model::default();
        m.add_file(
            "demo",
            "crates/demo/src/lib.rs",
            r#"
pub fn root(x: Option<u32>) -> u32 {
    // audit: safe — input validated by caller
    x.unwrap()
}
// audit: safe — nothing here
pub fn clean() {}
"#,
        );
        let g = graph::build(&m);
        let roots = [config::TrustRoot {
            crate_name: "demo",
            type_name: None,
            fn_name: "root",
            why: "test",
        }];
        let out = audit_model(&m, &g, &[], &roots);
        assert!(
            out.findings.iter().all(|f| f.code != "MMIO-L001"),
            "justified unwrap must be discharged: {:?}",
            out.findings
        );
        assert!(
            out.findings.iter().any(|f| f.code == "MMIO-L005"),
            "orphaned justification must fire: {:?}",
            out.findings
        );
    }

    #[test]
    fn stale_justification_fires_when_site_is_unreachable() {
        let mut m = Model::default();
        m.add_file(
            "demo",
            "crates/demo/src/lib.rs",
            r#"
pub fn root() {}
pub fn unreached(x: Option<u32>) -> u32 {
    // audit: safe — was on the trust path once
    x.unwrap()
}
"#,
        );
        let g = graph::build(&m);
        let roots = [config::TrustRoot {
            crate_name: "demo",
            type_name: None,
            fn_name: "root",
            why: "test",
        }];
        let out = audit_model(&m, &g, &[], &roots);
        assert!(
            out.findings.iter().any(|f| f.code == "MMIO-L006"),
            "{:?}",
            out.findings
        );
    }
}
