#![forbid(unsafe_code)]
//! # mmio-audit — whole-workspace static soundness auditor
//!
//! The repo makes two external promises that types alone cannot state:
//! certificate verification (`mmio-cert`) never panics on adversarial
//! input, and the `mmio-serve` request path always answers with a typed
//! response. This crate *proves* those promises statically, on every CI
//! run, with `MMIO-Lxxx` findings flowing through the same
//! [`mmio_analyze`] diagnostics machinery as every other pass.
//!
//! Three pass families (see `DESIGN.md` §14):
//!
//! 1. **Panic reachability** ([`panics`]) — a conservative call graph
//!    ([`graph`]) over a hand-rolled token model ([`lex`], [`parse`];
//!    no proc-macro dependencies) proves the configured trust roots
//!    ([`config::TRUST_ROOTS`]) cannot reach `unwrap`/`expect`/panic
//!    macros/indexing outside `catch_unwind` isolation. Reachable
//!    sites get shortest-chain witnesses; discharge is only via
//!    `// audit: safe — reason` comments, which are themselves audited
//!    for staleness.
//! 2. **Registry lifecycle** ([`registry`]) — every `MMIO-*` code is
//!    emitted by exactly one crate, registered, documented in
//!    DESIGN.md, and asserted by a test or corpus.
//! 3. **Determinism & hygiene** ([`hygiene`]) — no hash-order
//!    iteration feeding rendered output, no wall-clock in certificate
//!    payloads, `#![forbid(unsafe_code)]` in every crate root, and no
//!    audited-feature leakage into default builds.
//!
//! Entry points: [`audit_workspace`] (filesystem) and [`audit_model`]
//! (pre-built model — used by the fixture tests). The `mmio audit`
//! subcommand and the blocking CI job sit on top of these.

pub mod baseline;
pub mod config;
pub mod finding;
pub mod graph;
pub mod hygiene;
pub mod lex;
pub mod panics;
pub mod parse;
pub mod registry;
pub mod run;

pub use baseline::Baseline;
pub use finding::Finding;
pub use run::{
    audit_model, audit_workspace, find_workspace_root, AuditOptions, AuditOutcome, Stats,
};
