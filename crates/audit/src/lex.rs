//! A line-tracking token scanner for Rust source.
//!
//! The auditor needs far less than a full Rust grammar: identifiers,
//! punctuation, literal boundaries, and comments (justification comments
//! are part of the audit surface, so comments are *kept*, not skipped).
//! The scanner is deliberately lossless about the things the passes match
//! on — `ident (`, `. ident (`, `ident !`, postfix `[`, `#[cfg(...)]`,
//! `"MMIO-X000"` literals — and lossy about everything else (all literal
//! kinds collapse to one token carrying their source text).
//!
//! Handles the lexical edge cases that would otherwise corrupt a token
//! stream: nested block comments, raw strings with arbitrary `#` fences,
//! raw identifiers (`r#fn`), byte/char literals, lifetimes vs. char
//! literals, and multi-character operators (`->`, `=>`, `::`, shifts and
//! compound assignments) so that `-` in `->` is never mistaken for
//! arithmetic.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (Rust keywords are not distinguished here;
    /// the parser checks the text).
    Ident(String),
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Any literal — string, raw string, byte string, char, or number —
    /// carrying its raw source text (quotes and prefixes included).
    Lit(String),
    /// A punctuation token, possibly multi-character (`::`, `->`, `+=`).
    Punct(&'static str),
    /// A line comment, with its full text (no trailing newline).
    LineComment(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Spanned {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The literal's *string contents* if this is a plain string literal
    /// (`"…"`), with the quotes stripped and no unescaping (the audit
    /// matches exact substrings like `MMIO-A001`, never escapes).
    pub fn str_contents(&self) -> Option<&str> {
        match &self.tok {
            Tok::Lit(s) if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') => {
                Some(&s[1..s.len() - 1])
            }
            _ => None,
        }
    }

    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(q) if *q == p)
    }

    /// Whether this token is the exact identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == name)
    }
}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Scans `src` into a token stream. Never fails: unterminated constructs
/// consume to end-of-input (the audit must not abort on odd-but-compiling
/// source, and fixture files are never compiled at all).
pub fn lex(src: &str) -> Vec<Spanned> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.push(Spanned {
                    tok: Tok::LineComment(text),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (start, l) = (i, line);
                i = scan_string(b, i + 1, &mut line);
                out.push(lit(src, start, i, l));
            }
            b'r' | b'b' if starts_literal(b, i) => {
                let (start, l) = (i, line);
                i = scan_raw_or_byte(b, i, &mut line);
                out.push(lit(src, start, i, l));
            }
            b'r' if b.get(i + 1) == Some(&b'#') => {
                // Raw identifier `r#fn`: strip the prefix, keep the name.
                let start = i + 2;
                i = start;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                });
            }
            b'\'' => {
                let (tok, next) = scan_quote(src, i, &mut line);
                out.push(Spanned { tok, line });
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (start, l) = (i, line);
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `1..2` range: stop before `..`.
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(lit(src, start, i, l));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.push(Spanned {
                    tok: Tok::Ident(text),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let p = PUNCTS
                    .iter()
                    .find(|p| rest.starts_with(**p))
                    .copied()
                    .unwrap_or_else(|| single_punct(c));
                i += p.len().max(1);
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    line,
                });
            }
        }
    }
    out
}

fn lit(src: &str, start: usize, end: usize, line: u32) -> Spanned {
    Spanned {
        tok: Tok::Lit(src[start..end.min(src.len())].to_string()),
        line,
    }
}

/// Maps a single byte to its static punctuation string (unknown bytes
/// collapse to `"?"` — the passes never match on it).
fn single_punct(c: u8) -> &'static str {
    match c {
        b'(' => "(",
        b')' => ")",
        b'[' => "[",
        b']' => "]",
        b'{' => "{",
        b'}' => "}",
        b'<' => "<",
        b'>' => ">",
        b',' => ",",
        b';' => ";",
        b':' => ":",
        b'.' => ".",
        b'#' => "#",
        b'!' => "!",
        b'?' => "?",
        b'=' => "=",
        b'+' => "+",
        b'-' => "-",
        b'*' => "*",
        b'/' => "/",
        b'%' => "%",
        b'&' => "&",
        b'|' => "|",
        b'^' => "^",
        b'@' => "@",
        b'$' => "$",
        b'~' => "~",
        _ => "?",
    }
}

/// Consumes a double-quoted string body starting *after* the opening
/// quote; returns the index after the closing quote.
fn scan_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Whether position `i` starts a raw string (`r"`, `r#…#"`), byte string
/// (`b"`, `br"`, `br#…#"`), or byte char (`b'x'`). A raw *identifier*
/// (`r#fn`) is excluded: after the `#` fence run there must be a quote.
fn starts_literal(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => fenced_quote_follows(b, i + 1),
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => fenced_quote_follows(b, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// Whether a run of `#` fences followed by `"` starts at `j`.
fn fenced_quote_follows(b: &[u8], mut j: usize) -> bool {
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Consumes a raw/byte string (or byte char) starting at its prefix;
/// returns the index after it.
fn scan_raw_or_byte(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let raw = b[i] == b'r' || (b[i] == b'b' && b.get(i + 1) == Some(&b'r'));
    // Skip the prefix letters.
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    if raw {
        let mut fences = 0usize;
        while b.get(i) == Some(&b'#') {
            fences += 1;
            i += 1;
        }
        if b.get(i) == Some(&b'"') {
            i += 1;
        }
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
                i += 1;
            } else if b[i] == b'"'
                && b[i + 1..].len() >= fences
                && b[i + 1..i + 1 + fences].iter().all(|c| *c == b'#')
            {
                return i + 1 + fences;
            } else {
                i += 1;
            }
        }
        i
    } else if b.get(i) == Some(&b'\'') {
        // Byte char `b'x'`.
        i += 1;
        if b.get(i) == Some(&b'\\') {
            i += 2;
        } else {
            i += 1;
        }
        if b.get(i) == Some(&b'\'') {
            i += 1;
        }
        i
    } else {
        // Plain byte string `b"..."`.
        if b.get(i) == Some(&b'"') {
            i += 1;
        }
        scan_string(b, i, line)
    }
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
/// Returns the token and the index after it; `i` points at the `'`.
fn scan_quote(src: &str, i: usize, line: &mut u32) -> (Tok, usize) {
    let b = src.as_bytes();
    let next = b.get(i + 1).copied();
    let done = |end: usize| {
        (
            Tok::Lit(src[i..end.min(src.len())].to_string()),
            end.min(src.len()),
        )
    };
    match next {
        Some(b'\\') => {
            // Escaped char literal: skip to the closing quote.
            let mut j = i + 2;
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            done(j + 1)
        }
        Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
            if b.get(i + 2) == Some(&b'\'') {
                // 'x' — a one-character char literal.
                done(i + 3)
            } else {
                // 'a followed by more ident chars (or not a quote):
                // lifetime. Consume the identifier part.
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                (Tok::Lifetime, j)
            }
        }
        Some(b'\'') => done(i + 2), // degenerate `''`
        Some(b'\n') => {
            *line += 1;
            done(i + 2)
        }
        Some(_) => {
            // Punctuation char literal like '(' — must close next.
            if b.get(i + 2) == Some(&b'\'') {
                done(i + 3)
            } else {
                done(i + 2)
            }
        }
        None => done(i + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|s| s.tok).collect()
    }

    fn lits(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Lit(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_calls() {
        let t = kinds("fn foo() { bar(1); }");
        assert_eq!(t[0], Tok::Ident("fn".into()));
        assert_eq!(t[1], Tok::Ident("foo".into()));
        assert!(t.contains(&Tok::Ident("bar".into())));
    }

    #[test]
    fn arrow_is_not_arithmetic() {
        let t = kinds("fn f() -> u32 { 1 - 2 }");
        assert!(t.contains(&Tok::Punct("->")));
        assert!(t.contains(&Tok::Punct("-")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        assert_eq!(t.iter().filter(|k| **k == Tok::Lifetime).count(), 2);
        let lit_count = t.iter().filter(|k| matches!(k, Tok::Lit(_))).count();
        assert_eq!(lit_count, 2);
    }

    #[test]
    fn raw_strings_with_fences_and_brackets() {
        let t = kinds(r##"let s = r#"a [0] "quoted" b"#; x[0]"##);
        // The bracket inside the raw string must not appear; the trailing
        // index must.
        let brackets = t.iter().filter(|k| **k == Tok::Punct("[")).count();
        assert_eq!(brackets, 1);
    }

    #[test]
    fn raw_identifiers_do_not_eat_the_file() {
        let t = kinds("let r#fn = 1; call(r#fn); x[0]");
        assert!(t.contains(&Tok::Ident("fn".into())));
        assert!(t.contains(&Tok::Punct("[")));
    }

    #[test]
    fn string_contents_are_preserved() {
        let l = lits(r#"const C: &str = "MMIO-A001";"#);
        assert_eq!(l, vec![r#""MMIO-A001""#.to_string()]);
        let toks = lex(r#"let x = "MMIO-L020";"#);
        let lit = toks.iter().find(|t| matches!(t.tok, Tok::Lit(_))).unwrap();
        assert_eq!(lit.str_contents(), Some("MMIO-L020"));
    }

    #[test]
    fn nested_block_comments_and_line_tracking() {
        let toks = lex("/* a /* b */ c */\nfn g() {}\n// tail");
        assert_eq!(toks[0].line, 2);
        assert!(matches!(toks.last().unwrap().tok, Tok::LineComment(_)));
        assert_eq!(toks.last().unwrap().line, 3);
    }

    #[test]
    fn byte_literals() {
        let t = kinds(r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert_eq!(t.iter().filter(|k| matches!(k, Tok::Lit(_))).count(), 3);
    }

    #[test]
    fn compound_assignment_ops() {
        let t = kinds("x += 1; y <<= 2; z -= 3;");
        assert!(t.contains(&Tok::Punct("+=")));
        assert!(t.contains(&Tok::Punct("<<=")));
        assert!(t.contains(&Tok::Punct("-=")));
    }
}
